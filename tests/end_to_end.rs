//! End-to-end integration tests: every policy through the full stack,
//! determinism, and report-level invariants.

use osoffload::system::{PolicyKind, SimReport, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn run(profile: Profile, policy: PolicyKind, latency: u64, seed: u64) -> SimReport {
    Simulation::new(
        SystemConfig::builder()
            .profile(profile)
            .policy(policy)
            .migration_latency(latency)
            .instructions(300_000)
            .warmup(150_000)
            .seed(seed)
            .build(),
    )
    .run()
}

fn assert_report_sane(r: &SimReport) {
    assert!(
        r.instructions >= 300_000,
        "short measurement: {}",
        r.instructions
    );
    assert!(r.cycles > 0);
    assert!(
        r.throughput > 0.0 && r.throughput < 2.0,
        "tput {}",
        r.throughput
    );
    for (label, v) in [
        ("os_share", r.os_share),
        ("l1d", r.l1d_hit_rate),
        ("l1i", r.l1i_hit_rate),
        ("l2u", r.l2_user_hit_rate),
        ("l2o", r.l2_os_hit_rate),
        ("l2m", r.l2_mean_hit_rate),
        ("busy", r.os_core_busy_frac),
    ] {
        assert!((0.0..=1.0).contains(&v), "{label} out of range: {v}");
    }
    assert_eq!(
        r.queue.requests, r.offloads,
        "every offload goes through the queue"
    );
    // The cycle breakdown's base component equals retired instructions.
    assert_eq!(r.cycle_breakdown.base, r.instructions);
}

#[test]
fn every_policy_runs_end_to_end() {
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::AlwaysOffload,
        PolicyKind::HardwarePredictor { threshold: 500 },
        PolicyKind::HardwarePredictorDirectMapped { threshold: 500 },
        PolicyKind::HardwarePredictorSized {
            threshold: 500,
            entries: 64,
        },
        PolicyKind::HardwarePredictorDmSized {
            threshold: 500,
            entries: 256,
        },
        PolicyKind::DynamicInstrumentation {
            threshold: 500,
            cost: 120,
        },
        PolicyKind::StaticInstrumentation { stub_cost: 25 },
        PolicyKind::Oracle { threshold: 500 },
    ];
    for policy in policies {
        let r = run(Profile::apache(), policy, 1_000, 1);
        assert_report_sane(&r);
        if !matches!(policy, PolicyKind::Baseline) {
            assert!(
                r.offloads + r.local_invocations > 0,
                "{policy:?}: no invocations seen"
            );
        }
    }
}

#[test]
fn every_profile_runs_end_to_end() {
    for profile in Profile::all_server()
        .into_iter()
        .chain(Profile::all_compute())
    {
        let r = run(
            profile,
            PolicyKind::HardwarePredictor { threshold: 1_000 },
            1_000,
            2,
        );
        assert_report_sane(&r);
    }
}

#[test]
fn identical_seeds_give_identical_reports() {
    let a = run(
        Profile::derby(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        99,
    );
    let b = run(
        Profile::derby(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        99,
    );
    assert_eq!(a, b, "simulation must be bit-for-bit deterministic");
}

#[test]
fn different_seeds_vary_but_agree_qualitatively() {
    let a = run(Profile::apache(), PolicyKind::Baseline, 0, 1);
    let b = run(Profile::apache(), PolicyKind::Baseline, 0, 2);
    assert_ne!(a.cycles, b.cycles);
    // Throughputs agree within a factor-level tolerance.
    let ratio = a.throughput / b.throughput;
    assert!(
        (0.7..1.4).contains(&ratio),
        "seed sensitivity too high: {ratio}"
    );
}

#[test]
fn oracle_never_worse_than_predictor_on_decisions() {
    // The oracle off-loads exactly the invocations that exceed N; the
    // predictor approximates it. Their off-load counts must be close.
    let oracle = run(
        Profile::apache(),
        PolicyKind::Oracle { threshold: 1_000 },
        1_000,
        5,
    );
    let hi = run(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 1_000 },
        1_000,
        5,
    );
    let (o, h) = (oracle.offloads as f64, hi.offloads.max(1) as f64);
    assert!(
        (0.5..2.0).contains(&(o / h)),
        "oracle {o} vs predictor {h} offloads diverge"
    );
}

#[test]
fn always_offload_equals_zero_threshold_intent() {
    let always = run(Profile::apache(), PolicyKind::AlwaysOffload, 1_000, 3);
    assert_eq!(always.local_invocations, 0);
    assert!(always.offloads > 0);
    assert!(always.os_core_busy_frac > 0.0);
}

#[test]
fn migration_latency_monotonically_hurts() {
    let fast = run(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 100 },
        0,
        4,
    );
    let mid = run(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 100 },
        1_000,
        4,
    );
    let slow = run(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 100 },
        5_000,
        4,
    );
    assert!(
        fast.throughput >= mid.throughput && mid.throughput >= slow.throughput,
        "latency must monotonically reduce throughput: {} {} {}",
        fast.throughput,
        mid.throughput,
        slow.throughput
    );
}

#[test]
fn baseline_topology_has_no_os_core_activity() {
    let r = run(Profile::specjbb(), PolicyKind::Baseline, 0, 6);
    assert_eq!(r.offloads, 0);
    assert_eq!(r.os_core_busy_frac, 0.0);
    assert_eq!(r.queue.requests, 0);
    assert_eq!(r.l2_os_hit_rate, 0.0);
}

#[test]
fn spill_fill_profiles_run_end_to_end() {
    let mut profile = Profile::apache();
    profile.include_spill_fill = true;
    let r = run(
        profile,
        PolicyKind::HardwarePredictor { threshold: 100 },
        100,
        7,
    );
    assert_report_sane(&r);
    // Spill/fill traps flood the invocation count.
    assert!(r.offloads + r.local_invocations > 100);
}
