//! Replays every archived fuzz repro on plain `cargo test`.
//!
//! `fuzz/corpus/` holds the shrunk, self-contained failing cases the
//! differential fuzzer has found (see `FUZZING.md`). Once the bug
//! behind an archive is fixed, the archive stays in the corpus and this
//! test keeps it fixed: each entry is replayed through **all five**
//! oracles — differential, predictor, invariants, telemetry and alloc —
//! and must pass every one.
//!
//! Like `tests/alloc_audit.rs`, the test installs a counting
//! `#[global_allocator]` so the alloc oracle actually counts instead of
//! passing vacuously. Integration tests are separate binaries, so the
//! shim stays contained here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;

use osoffload::sim::alloc_audit;
use osoffload_fuzz::corpus;

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_audit::note_alloc();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_audit::note_alloc();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

#[test]
fn corpus_is_not_empty() {
    let paths = corpus::list(&corpus_dir()).expect("corpus directory must be readable");
    assert!(
        !paths.is_empty(),
        "fuzz/corpus must hold at least one archived repro; \
         run `cargo run -p osoffload-fuzz` to populate it"
    );
}

#[test]
fn every_archived_repro_passes_every_oracle() {
    let dir = corpus_dir();
    let paths = corpus::list(&dir).expect("corpus directory must be readable");
    let mut failing: Vec<String> = Vec::new();
    for path in &paths {
        let entry = match corpus::load(path) {
            Ok(entry) => entry,
            Err(e) => {
                failing.push(format!("{}: unreadable archive: {e}", path.display()));
                continue;
            }
        };
        for failure in corpus::replay(&entry) {
            failing.push(format!(
                "{}: {failure} (replay: {})",
                path.display(),
                entry.replay_command()
            ));
        }
    }
    assert!(
        failing.is_empty(),
        "{} archived repro(s) regressed:\n{}",
        failing.len(),
        failing.join("\n")
    );
}
