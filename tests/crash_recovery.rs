//! Crash-safety integration tests: write-ahead journaling, resume after
//! every possible crash point (including torn writes), deterministic
//! fault-plan replay, and watchdog timeouts.

use osoffload::runner::{
    run_plan, run_plan_with, ExperimentPlan, FaultConfig, FaultPlan, Outcome, RunnerOptions,
};
use osoffload::system::experiments::{single_config, Scale};
use osoffload::system::PolicyKind;
use osoffload::workload::Profile;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tiny() -> Scale {
    Scale {
        instructions: 60_000,
        warmup: 20_000,
        seed: 0xD0_0D,
        compute_profiles: 1,
    }
}

/// Builds a small mixed grid with split-derived per-point seeds.
fn seeded_plan() -> ExperimentPlan {
    let scale = tiny();
    let mut plan = ExperimentPlan::new("crash", 0xFEED);
    for profile in [Profile::apache(), Profile::specjbb()] {
        for threshold in [100u64, 1_000] {
            plan.push(
                format!("{}/N={threshold}", profile.name),
                single_config(
                    profile.clone(),
                    PolicyKind::HardwarePredictor { threshold },
                    1_000,
                    1,
                    scale,
                ),
            );
        }
    }
    plan
}

fn temp_journal(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "osoffload_crash_{tag}_{}_{}.journal",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Canonical mode zeroes the wall-clock fields, so whole archives (not
/// just stable rows) can be compared byte for byte.
fn canonical(workers: usize) -> RunnerOptions {
    RunnerOptions {
        workers,
        quiet: true,
        canonical: true,
        backoff_ms: 1,
        ..RunnerOptions::default()
    }
}

/// The crash-safety contract, exhaustively: truncate the journal at
/// every record boundary, at every torn mid-line cut, and with a
/// garbage tail — every resume must finish with an archive
/// byte-identical to the uninterrupted run.
#[test]
fn resume_is_byte_identical_for_every_truncation() {
    let plan = seeded_plan();
    let journal = temp_journal("trunc");
    let full = run_plan(
        &plan,
        &RunnerOptions {
            journal: Some(journal.clone()),
            ..canonical(2)
        },
    );
    assert_eq!(full.failures().count(), 0);
    let expected = full.to_json();
    let intact = std::fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = intact.split_inclusive('\n').collect();
    let records = lines.len() - 1;
    assert_eq!(records, 4, "one journal record per point");

    for keep in 0..=records {
        // Clean cut after `keep` whole records…
        let mut variants = vec![lines[..1 + keep].concat()];
        // …torn mid-line cuts through the next record…
        if let Some(next) = lines.get(1 + keep) {
            for frac in [1, next.len() / 2, next.len() - 1] {
                variants.push(format!("{}{}", lines[..1 + keep].concat(), &next[..frac]));
            }
        }
        // …and a garbage tail after the good prefix.
        variants.push(format!("{}...corrupt...\n", lines[..1 + keep].concat()));
        for (v, text) in variants.iter().enumerate() {
            std::fs::write(&journal, text).expect("truncate");
            let resumed = run_plan(
                &plan,
                &RunnerOptions {
                    resume: Some(journal.clone()),
                    ..canonical(2)
                },
            );
            assert_eq!(
                resumed.to_json(),
                expected,
                "resume after keep={keep} variant={v} must be byte-identical"
            );
        }
    }
    let _ = std::fs::remove_file(&journal);
}

/// `--resume` with no existing journal starts a fresh one — the flag is
/// safe to pass unconditionally — and a journaled failed row survives
/// resume verbatim too.
#[test]
fn resume_from_scratch_and_failed_rows_round_trip() {
    let plan = seeded_plan();
    let journal = temp_journal("fresh");
    let eval = |p: &osoffload::runner::Point| {
        if p.index == 2 {
            panic!("synthetic failure at {}", p.id);
        }
        osoffload::system::Simulation::new(p.config.clone()).run()
    };
    let first = run_plan_with(
        &plan,
        &RunnerOptions {
            resume: Some(journal.clone()),
            ..canonical(2)
        },
        eval,
    );
    assert_eq!(first.failures().count(), 1);
    let expected = first.to_json();
    assert!(journal.exists(), "--resume created a fresh journal");

    // Keep header + 2 records (one may be the failed row, depending on
    // scheduling) and resume: identical bytes, failed row included.
    let intact = std::fs::read_to_string(&journal).expect("read");
    let lines: Vec<&str> = intact.split_inclusive('\n').collect();
    std::fs::write(&journal, lines[..3].concat()).expect("truncate");
    let resumed = run_plan_with(
        &plan,
        &RunnerOptions {
            resume: Some(journal.clone()),
            ..canonical(2)
        },
        eval,
    );
    assert_eq!(resumed.to_json(), expected);
    assert!(expected.contains("\"status\":\"failed\""));
    let _ = std::fs::remove_file(&journal);
}

/// Journal restore rebuilds every report field for field — including
/// `cycle_breakdown` and the per-OS-core arrays, which a resume must
/// carry losslessly rather than default to zeroes.
#[test]
fn restored_reports_round_trip_cycle_breakdown_and_per_core_arrays() {
    let plan = seeded_plan();
    let journal = temp_journal("roundtrip");
    let full = run_plan(
        &plan,
        &RunnerOptions {
            journal: Some(journal.clone()),
            ..canonical(1)
        },
    );
    assert_eq!(full.failures().count(), 0);
    let loaded = osoffload::runner::journal::load(&journal).expect("journal loads");
    assert_eq!(loaded.rows.len(), plan.len());
    for restored in &loaded.rows {
        let fresh = &full.rows[restored.index];
        let (Outcome::Ok(a), Outcome::Ok(b)) = (&restored.outcome, &fresh.outcome) else {
            panic!("expected ok rows on both sides");
        };
        assert!(
            a.cycle_breakdown.base > 0 && a.cycle_breakdown.migration > 0,
            "the fixture must exercise the breakdown"
        );
        assert_eq!(a.cycle_breakdown, b.cycle_breakdown);
        assert_eq!(a.os_core_busy_cycles, b.os_core_busy_cycles);
        // Float fields are archived at six decimals; the utilisation
        // array round-trips exactly at that (serialised) precision.
        let six = |xs: &[f64]| xs.iter().map(|x| format!("{x:.6}")).collect::<Vec<_>>();
        assert_eq!(six(&a.os_core_utilisation), six(&b.os_core_utilisation));
        assert_eq!(a.to_json(), b.to_json(), "every field round-trips");
    }
    let _ = std::fs::remove_file(&journal);
}

/// `--resume-retry-failed` re-attempts journaled failed rows on resume
/// instead of restoring the failure verbatim; once the cause is fixed,
/// the resumed archive equals an uninterrupted healthy run's.
#[test]
fn resume_retry_failed_reattempts_failed_rows() {
    let plan = seeded_plan();
    let journal = temp_journal("retry");
    let failing = |p: &osoffload::runner::Point| {
        if p.index == 2 {
            panic!("synthetic failure at {}", p.id);
        }
        osoffload::system::Simulation::new(p.config.clone()).run()
    };
    let first = run_plan_with(
        &plan,
        &RunnerOptions {
            resume: Some(journal.clone()),
            ..canonical(2)
        },
        failing,
    );
    assert_eq!(first.failures().count(), 1);

    // A plain resume restores the failure verbatim…
    let plain = run_plan(
        &plan,
        &RunnerOptions {
            resume: Some(journal.clone()),
            ..canonical(2)
        },
    );
    assert_eq!(plain.failures().count(), 1);

    // …while --resume-retry-failed re-evaluates the point (here with the
    // healthy default evaluator), and the re-run row is re-journaled.
    let retried = run_plan(
        &plan,
        &RunnerOptions {
            resume: Some(journal.clone()),
            resume_retry_failed: true,
            ..canonical(2)
        },
    );
    assert_eq!(retried.failures().count(), 0);
    let clean = run_plan(&plan, &canonical(2));
    assert_eq!(retried.to_json(), clean.to_json());

    // The fresh row is durable: a later plain resume restores it.
    let after = run_plan(
        &plan,
        &RunnerOptions {
            resume: Some(journal.clone()),
            ..canonical(2)
        },
    );
    assert_eq!(after.to_json(), clean.to_json());
    let _ = std::fs::remove_file(&journal);
}

/// A resume must refuse a journal that belongs to a different campaign
/// rather than silently mixing results.
#[test]
fn resume_refuses_a_mismatched_journal() {
    let plan = seeded_plan();
    let journal = temp_journal("mismatch");
    run_plan(
        &plan,
        &RunnerOptions {
            journal: Some(journal.clone()),
            ..canonical(1)
        },
    );
    let mut other = ExperimentPlan::new("crash", 0xBEEF); // different master seed
    let scale = tiny();
    other.push(
        "p0".to_string(),
        single_config(
            Profile::apache(),
            PolicyKind::HardwarePredictor { threshold: 100 },
            1_000,
            1,
            scale,
        ),
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_plan(
            &other,
            &RunnerOptions {
                resume: Some(journal.clone()),
                ..canonical(1)
            },
        )
    }));
    assert!(outcome.is_err(), "mismatched journal must be rejected");
    let _ = std::fs::remove_file(&journal);
}

/// The same fault plan replayed over the same campaign injects the same
/// failures and — given enough retries — changes nothing about the
/// results relative to a fault-free run.
#[test]
fn fault_plan_replay_is_deterministic_and_recoverable() {
    let plan = seeded_plan();
    let clean = run_plan(&plan, &canonical(2));
    let fault_cfg = FaultConfig {
        panic_pct: 100,
        max_panics: 2,
        delay_pct: 50,
        max_delay_ms: 2,
        io_pct: 0,
        max_io_failures: 1,
    };
    let fault_plan = FaultPlan::derive(0xFEED, plan.len(), &fault_cfg);
    assert!(fault_plan.injected_total() > 0);
    let opts = RunnerOptions {
        retries: fault_plan.max_panics(),
        fault_plan: Some(fault_plan.clone()),
        ..canonical(2)
    };
    let a = run_plan(&plan, &opts);
    let b = run_plan(&plan, &opts);
    assert_eq!(a.to_json(), b.to_json(), "replay must be bit-identical");
    assert_eq!(a.failures().count(), 0, "retry budget covers every panic");
    // The attempt bookkeeping differs (that is the point of the fault
    // plan), but every simulation result must be untouched by recovery.
    let clean_rows: Vec<String> = clean.rows.iter().map(|r| r.stable_json()).collect();
    let recovered_rows: Vec<String> = a.rows.iter().map(|r| r.stable_json()).collect();
    assert_eq!(
        clean_rows, recovered_rows,
        "recovered campaign equals the fault-free campaign row for row"
    );
    // Exhausting the retry budget instead surfaces typed failures.
    let starved = run_plan(
        &plan,
        &RunnerOptions {
            retries: 0,
            fault_plan: Some(fault_plan),
            ..canonical(2)
        },
    );
    assert_eq!(starved.failures().count(), plan.len());
    assert!(starved.to_json().contains("fault-injected panic"));
}

/// The worker watchdog cancels a hung simulation through the epoch
/// poll in `Simulation::account` and records a typed timeout row.
#[test]
fn watchdog_times_out_a_real_simulation() {
    let scale = Scale {
        instructions: 200_000_000, // far more than 1 ms of simulation
        warmup: 0,
        seed: 1,
        compute_profiles: 1,
    };
    let mut plan = ExperimentPlan::new("hang", 1);
    plan.push(
        "hung".to_string(),
        single_config(
            Profile::apache(),
            PolicyKind::HardwarePredictor { threshold: 500 },
            1_000,
            1,
            scale,
        ),
    );
    let sweep = run_plan(
        &plan,
        &RunnerOptions {
            deadline_ms: Some(1),
            ..canonical(1)
        },
    );
    assert_eq!(sweep.timeouts(), 1);
    match &sweep.rows[0].outcome {
        Outcome::TimedOut {
            deadline_ms,
            attempts,
        } => {
            assert_eq!(*deadline_ms, 1);
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
    let json = sweep.to_json();
    assert!(json.contains("\"status\":\"timeout\""), "{json}");
    assert!(json.contains("\"timeouts\":1"), "{json}");
}
