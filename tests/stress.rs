//! Failure-injection and pathological-input stress tests: the simulator
//! must stay numerically sane and deterministic under extreme
//! configurations, not just the paper's design points.

use osoffload::system::{PolicyKind, Simulation, SystemConfig};
use osoffload::workload::{Profile, SyscallId};

fn run(profile: Profile, policy: PolicyKind, latency: u64) -> osoffload::system::SimReport {
    Simulation::new(
        SystemConfig::builder()
            .profile(profile)
            .policy(policy)
            .migration_latency(latency)
            .instructions(150_000)
            .warmup(50_000)
            .seed(0x57E55)
            .build(),
    )
    .run()
}

fn assert_sane(r: &osoffload::system::SimReport) {
    assert!(r.throughput > 0.0 && r.throughput.is_finite());
    assert!(r.cycles > 0);
    assert!((0.0..=1.0).contains(&r.os_share));
    assert!((0.0..=1.0).contains(&r.os_core_busy_frac));
    assert!((0.0..=1.0).contains(&r.user_cores_busy_frac));
}

/// A profile that traps almost continuously (interrupt storm).
fn interrupt_storm() -> Profile {
    let mut p = Profile::apache();
    p.name = "interrupt-storm";
    p.syscall_mix = vec![
        (SyscallId::IrqNetwork, 0.4),
        (SyscallId::IrqDisk, 0.3),
        (SyscallId::IrqTimer, 0.3),
    ];
    p.user_burst_mean = 300.0;
    p
}

/// A profile whose every invocation is ultra-short.
fn all_short() -> Profile {
    let mut p = Profile::apache();
    p.name = "all-short";
    p.syscall_mix = vec![
        (SyscallId::GetPid, 0.4),
        (SyscallId::TlbRefill, 0.4),
        (SyscallId::Lseek, 0.2),
    ];
    p.user_burst_mean = 500.0;
    p
}

/// A profile whose every invocation is very long.
fn all_long() -> Profile {
    let mut p = Profile::derby();
    p.name = "all-long";
    p.syscall_mix = vec![(SyscallId::Fork, 0.7), (SyscallId::Execve, 0.3)];
    p.user_burst_mean = 5_000.0;
    p
}

#[test]
fn interrupt_storm_runs_and_defeats_the_predictor_gracefully() {
    let r = run(
        interrupt_storm(),
        PolicyKind::HardwarePredictor { threshold: 1_000 },
        1_000,
    );
    assert_sane(&r);
    // Interrupt AStates are residual register noise; exact prediction
    // should be near zero — but the run must complete and stay sane.
    let p = r.predictor.expect("predictor stats");
    assert!(
        p.exact < 0.30,
        "interrupt AStates should be unpredictable: {}",
        p.exact
    );
}

#[test]
fn all_short_workload_never_offloads_above_threshold() {
    let r = run(
        all_short(),
        PolicyKind::HardwarePredictor { threshold: 1_000 },
        1_000,
    );
    assert_sane(&r);
    // Everything is far below N = 1,000: after warm-up no off-loads
    // should happen (a handful of cold global predictions may slip by).
    assert!(
        (r.offloads as f64) < 0.05 * (r.offloads + r.local_invocations) as f64,
        "{} of {} invocations off-loaded",
        r.offloads,
        r.offloads + r.local_invocations
    );
}

#[test]
fn all_long_workload_offloads_almost_everything() {
    let r = run(
        all_long(),
        PolicyKind::HardwarePredictor { threshold: 1_000 },
        1_000,
    );
    assert_sane(&r);
    assert!(
        (r.local_invocations as f64) < 0.2 * (r.offloads + r.local_invocations).max(1) as f64,
        "{} of {} stayed local",
        r.local_invocations,
        r.offloads + r.local_invocations
    );
}

#[test]
fn single_entry_predictor_still_works() {
    // A 1-entry CAM thrashes constantly but must neither crash nor
    // poison the decisions beyond the global fallback's quality.
    let r = run(
        Profile::apache(),
        PolicyKind::HardwarePredictorSized {
            threshold: 500,
            entries: 1,
        },
        1_000,
    );
    assert_sane(&r);
    assert!(r.offloads + r.local_invocations > 0);
}

#[test]
fn zero_latency_and_huge_latency_extremes() {
    let fast = run(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 100 },
        0,
    );
    assert_sane(&fast);
    let slow = run(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 100 },
        1_000_000,
    );
    assert_sane(&slow);
    assert!(slow.throughput < fast.throughput);
}

#[test]
fn saturated_os_core_under_always_offload_and_eight_user_cores() {
    let cfg = SystemConfig::builder()
        .profile(Profile::apache())
        .policy(PolicyKind::AlwaysOffload)
        .migration_latency(100)
        .user_cores(8)
        .instructions(200_000)
        .warmup(50_000)
        .seed(1)
        .build();
    let r = Simulation::new(cfg).run();
    assert_sane(&r);
    // 16 threads hammering one OS core: the queue must show saturation.
    assert!(r.queue.stalled > 0);
    assert!(
        r.queue.mean_delay > 1_000.0,
        "queue delay = {}",
        r.queue.mean_delay
    );
}

#[test]
fn pathological_profiles_are_deterministic_too() {
    let a = run(
        interrupt_storm(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        500,
    );
    let b = run(
        interrupt_storm(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        500,
    );
    assert_eq!(a, b);
}

#[test]
fn extreme_os_core_slowdown_still_progresses() {
    let cfg = SystemConfig::builder()
        .profile(Profile::apache())
        .policy(PolicyKind::HardwarePredictor { threshold: 100 })
        .migration_latency(100)
        .os_core_slowdown_milli(10_000) // 10x slower OS core
        .instructions(120_000)
        .warmup(30_000)
        .seed(2)
        .build();
    let r = Simulation::new(cfg).run();
    assert_sane(&r);
    assert!(r.offloads > 0);
}

#[test]
fn warmupless_runs_are_valid() {
    let cfg = SystemConfig::builder()
        .profile(Profile::mcf())
        .policy(PolicyKind::HardwarePredictor { threshold: 500 })
        .migration_latency(500)
        .instructions(100_000)
        .warmup(0)
        .seed(3)
        .build();
    let r = Simulation::new(cfg).run();
    assert_sane(&r);
}
