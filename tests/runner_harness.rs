//! Integration tests for the parallel experiment harness: worker-count
//! determinism, parity with the sequential drivers, and fault isolation.

use osoffload::runner::{run_driver, run_plan_with, ExperimentPlan, Outcome, RunnerOptions};
use osoffload::system::experiments::{self, fig4_grid_with, single_config, Scale};
use osoffload::system::PolicyKind;
use osoffload::workload::Profile;

fn tiny() -> Scale {
    Scale {
        instructions: 60_000,
        warmup: 20_000,
        seed: 0xD0_0D,
        compute_profiles: 1,
    }
}

fn quiet(workers: usize) -> RunnerOptions {
    RunnerOptions {
        workers,
        quiet: true,
        ..RunnerOptions::default()
    }
}

/// Builds a small mixed grid with split-derived per-point seeds.
fn seeded_plan() -> ExperimentPlan {
    let scale = tiny();
    let mut plan = ExperimentPlan::new("det", 0xFEED);
    for profile in [Profile::apache(), Profile::specjbb()] {
        for threshold in [100u64, 1_000] {
            plan.push(
                format!("{}/N={threshold}", profile.name),
                single_config(
                    profile.clone(),
                    PolicyKind::HardwarePredictor { threshold },
                    1_000,
                    1,
                    scale,
                ),
            );
        }
    }
    plan
}

/// A sweep of real simulations produces byte-identical deterministic
/// rows whether one worker runs it or four do.
#[test]
fn sweep_rows_identical_across_worker_counts() {
    let sequential = osoffload::runner::run_plan(&seeded_plan(), &quiet(1));
    let parallel = osoffload::runner::run_plan(&seeded_plan(), &quiet(4));
    assert_eq!(sequential.workers, 1);
    assert_eq!(parallel.workers, 4);
    let a: Vec<String> = sequential.rows.iter().map(|r| r.stable_json()).collect();
    let b: Vec<String> = parallel.rows.iter().map(|r| r.stable_json()).collect();
    assert_eq!(a, b, "rows must not depend on worker count or scheduling");
    // The derived seeds are a pure function of master seed + plan order.
    let seeds: Vec<u64> = seeded_plan()
        .points()
        .iter()
        .map(|p| p.config.seed)
        .collect();
    assert_eq!(
        seeds,
        seeded_plan()
            .points()
            .iter()
            .map(|p| p.config.seed)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        seeds.iter().collect::<std::collections::HashSet<_>>().len(),
        seeds.len()
    );
}

/// The record/replay bridge reproduces the sequential driver's rows
/// exactly — same grid, same seeds, same floating-point results.
#[test]
fn parallel_fig4_matches_sequential_fig4() {
    let scale = tiny();
    let lats = [100u64];
    let thrs = [100u64, 10_000];
    let sequential = experiments::fig4_with_grid(scale, &lats, &thrs);
    let (parallel, sweep) = run_driver("fig4-parity", scale.seed, &quiet(4), |ev| {
        fig4_grid_with(scale, &lats, &thrs, ev)
    });
    assert!(sweep.failures().next().is_none());
    assert_eq!(
        sweep.rows.len(),
        12,
        "4 baselines + 4 groups x 1 lat x 2 thresholds"
    );
    assert_eq!(parallel.as_deref(), Some(&sequential[..]));
}

/// A point that panics is recorded as failed with its configuration and
/// panic message; every other point still completes and the results
/// document reflects both.
#[test]
fn panicking_point_does_not_kill_the_sweep() {
    let plan = seeded_plan();
    let sweep = run_plan_with(&plan, &quiet(3), |p| {
        if p.index == 1 {
            panic!("injected: simulated OOM at {}", p.id);
        }
        osoffload::system::Simulation::new(p.config.clone()).run()
    });
    assert_eq!(sweep.rows.len(), 4);
    assert_eq!(sweep.failures().count(), 1);
    assert_eq!(sweep.rows.iter().filter(|r| r.is_ok()).count(), 3);
    match &sweep.rows[1].outcome {
        Outcome::Failed { panic, attempts } => {
            assert!(panic.contains("injected: simulated OOM"), "{panic}");
            assert_eq!(*attempts, 1);
        }
        other => panic!("point 1 should have failed, got {other:?}"),
    }
    let json = sweep.to_json();
    assert!(json.contains("\"failed\":1"));
    assert!(json.contains("\"status\":\"failed\""));
    assert!(json.contains("\"status\":\"ok\""));
    // The failed row still records which configuration it was.
    assert!(sweep.rows[1].config_json.contains("\"profile\":\"apache\""));
}
