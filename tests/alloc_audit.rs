//! Proves the measured simulation region is allocation-free.
//!
//! The simulator marks its measured region (everything after warm-up and
//! statistics reset) with `alloc_audit::region_enter`/`region_exit`.
//! This test installs a counting `#[global_allocator]` that reports every
//! `alloc`/`realloc` to the audit hook, runs a representative simulation,
//! and requires **zero** in-region allocations: all buffers must be sized
//! at construction time and the batched instruction loop must never touch
//! the heap.
//!
//! The shim lives here — not in `osoffload-sim`, which forbids unsafe
//! code — because a global allocator is process-wide and needs `unsafe`.
//! Integration tests are separate binaries, so the shim cannot leak into
//! any other test or production build.

use std::alloc::{GlobalAlloc, Layout, System};

use osoffload::sim::alloc_audit;
use osoffload::system::{OffloadMechanism, PolicyKind, Simulation, SystemConfig};
use osoffload::workload::Profile;

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_audit::note_alloc();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_audit::note_alloc();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn run_and_count(cfg: SystemConfig) -> u64 {
    let _ = alloc_audit::take_region_allocs();
    let report = Simulation::new(cfg).run();
    assert!(report.throughput() > 0.0, "simulation must make progress");
    alloc_audit::take_region_allocs()
}

#[test]
fn measured_region_is_allocation_free() {
    // Exercise every hot-path branch in one sweep: local execution,
    // thread-migration off-load through the predictor, the remote-call
    // mechanism, and resource adaptation. Phase-change configs are
    // excluded by design: rebuilding the workload mix at a phase
    // boundary is construction work, not inner-loop work.
    let cases = [
        (
            "baseline_local",
            SystemConfig::builder()
                .profile(Profile::apache())
                .policy(PolicyKind::Baseline)
                .instructions(120_000)
                .warmup(40_000)
                .seed(0xF1605)
                .build(),
        ),
        (
            "predictor_offload",
            SystemConfig::builder()
                .profile(Profile::apache())
                .policy(PolicyKind::HardwarePredictor { threshold: 500 })
                .migration_latency(1_000)
                .instructions(120_000)
                .warmup(40_000)
                .seed(0xF1605)
                .build(),
        ),
        (
            "remote_call",
            SystemConfig::builder()
                .profile(Profile::derby())
                .policy(PolicyKind::HardwarePredictor { threshold: 100 })
                .migration_latency(1_000)
                .mechanism(OffloadMechanism::RemoteCall)
                .instructions(120_000)
                .warmup(40_000)
                .seed(0xBEE5)
                .build(),
        ),
        (
            "resource_adaptation",
            SystemConfig::builder()
                .profile(Profile::specjbb())
                .policy(PolicyKind::HardwarePredictor { threshold: 500 })
                .migration_latency(1_000)
                .resource_adaptation(600)
                .instructions(120_000)
                .warmup(40_000)
                .seed(0xBEE5)
                .build(),
        ),
    ];
    for (name, cfg) in cases {
        let allocs = run_and_count(cfg);
        assert_eq!(
            allocs, 0,
            "config {name}: measured region allocated {allocs} times"
        );
    }
}

#[test]
fn lane_measured_region_is_allocation_free() {
    use osoffload::system::run_lanes;
    // A pack of tape-compatible configurations (shared seed/profile,
    // different thresholds and latencies) at every supported width. The
    // lane stepper materialises the shared tape past the deepest
    // reachable position before entering its single audited region, so
    // replay at any width must never touch the heap mid-measurement.
    let member = |threshold: u64, latency: u64| {
        SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold })
            .migration_latency(latency)
            .instructions(60_000)
            .warmup(20_000)
            .seed(0xF1605)
            .build()
    };
    let variants = [
        member(100, 1_000),
        member(500, 1_000),
        member(1_000, 5_000),
        member(5_000, 100),
    ];
    for width in [1usize, 2, 4, 8] {
        let configs: Vec<SystemConfig> = (0..width)
            .map(|i| variants[i % variants.len()].clone())
            .collect();
        let _ = alloc_audit::take_region_allocs();
        let reports = run_lanes(&configs, width).expect("pack configs are valid");
        assert!(
            reports.iter().all(|r| r.throughput() > 0.0),
            "lanes must make progress"
        );
        let allocs = alloc_audit::take_region_allocs();
        assert_eq!(
            allocs, 0,
            "width {width}: lane measured region allocated {allocs} times"
        );
    }
}
