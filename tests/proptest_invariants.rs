//! Property-based invariants across the whole stack.

use osoffload::core::{AState, CamPredictor, RunLengthPredictor};
use osoffload::mem::{Access, Address, CoreId, MemConfig, MemorySystem};
use osoffload::sim::{Cycle, Instret};
use osoffload::system::OsCoreQueue;
use osoffload::workload::{Profile, Region, Segment, ThreadWorkload};
use proptest::prelude::*;

fn small_mem(cores: usize) -> MemorySystem {
    let mut cfg = MemConfig::paper_baseline(cores);
    cfg.l1i = osoffload::mem::CacheGeometry::new(2048, 2);
    cfg.l1d = osoffload::mem::CacheGeometry::new(2048, 2);
    cfg.l2 = osoffload::mem::CacheGeometry::new(8192, 4);
    MemorySystem::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MESI + directory + inclusion invariants hold under arbitrary
    /// interleavings of reads/writes/fetches from multiple cores.
    #[test]
    fn coherence_invariants_hold_under_random_traffic(
        ops in prop::collection::vec((0usize..3, 0u64..3, 0u64..64), 1..400)
    ) {
        let mut mem = small_mem(3);
        for (kind, core, line) in ops {
            let addr = Address::new(line * 64);
            let access = match kind {
                0 => Access::read(addr),
                1 => Access::write(addr),
                _ => Access::fetch(addr),
            };
            let outcome = mem.access(CoreId::new(core as usize), access);
            prop_assert!(outcome.latency >= Cycle::new(1));
        }
        mem.check_invariants();
    }

    /// The same access sequence always produces the same latencies.
    #[test]
    fn memory_system_is_deterministic(
        ops in prop::collection::vec((0u64..2, 0u64..2, 0u64..32), 1..200)
    ) {
        let runs: Vec<Vec<u64>> = (0..2).map(|_| {
            let mut mem = small_mem(2);
            ops.iter().map(|&(w, core, line)| {
                let addr = Address::new(line * 64);
                let access = if w == 1 { Access::write(addr) } else { Access::read(addr) };
                mem.access(CoreId::new(core as usize), access).latency.as_u64()
            }).collect()
        }).collect();
        prop_assert_eq!(&runs[0], &runs[1]);
    }

    /// The predictor never forgets its capacity bound, and training on a
    /// stable per-AState length converges to local predictions of it.
    #[test]
    fn predictor_converges_and_stays_bounded(
        pairs in prop::collection::vec((0u64..40, 100u64..5_000), 10..300)
    ) {
        let mut p = CamPredictor::new(32);
        for &(a, len) in &pairs {
            let astate = AState::from(a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let pred = p.predict(astate);
            p.learn(astate, pred, len);
            prop_assert!(p.resident() <= 32);
        }
        // Re-teaching one AState a constant length converges in 3 visits.
        let a = AState::from(0xABCDu64);
        for _ in 0..3 {
            let pred = p.predict(a);
            p.learn(a, pred, 777);
        }
        prop_assert_eq!(p.predict(a).length, 777);
    }

    /// OS-core queue: service starts never precede arrivals, never
    /// overlap, and stall counting is consistent.
    #[test]
    fn queue_is_causal_and_non_overlapping(
        jobs in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..100)
    ) {
        let mut q = OsCoreQueue::new();
        let mut arrival = Cycle::ZERO;
        let mut last_end = Cycle::ZERO;
        for &(gap, service) in &jobs {
            arrival += gap;
            let start = q.acquire(arrival);
            prop_assert!(start >= arrival, "service before arrival");
            prop_assert!(start >= last_end, "overlapping service");
            let end = start + service;
            q.release(end);
            q.add_busy(end - start);
            last_end = end;
        }
        prop_assert_eq!(q.requests(), jobs.len() as u64);
        prop_assert!(q.stalled() <= q.requests());
        let total_service: u64 = jobs.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(q.busy(), Cycle::new(total_service));
    }

    /// Workload streams conserve the user/OS alternation and keep all
    /// addresses inside the thread's regions.
    #[test]
    fn workload_streams_are_well_formed(seed in 0u64..1_000, thread in 0usize..4) {
        let mut wl = ThreadWorkload::new(Profile::derby(), thread, seed);
        let space = *wl.address_space();
        for i in 0..60 {
            match wl.next_segment() {
                Segment::User { len } => {
                    prop_assert!(i % 2 == 0, "user segment out of order");
                    prop_assert!(len >= 1);
                    let spec = wl.user_instr();
                    prop_assert!(space.contains(Region::UserCode, spec.pc));
                }
                Segment::Os(inv) => {
                    prop_assert!(i % 2 == 1, "OS segment out of order");
                    prop_assert!(inv.actual_len >= 1);
                    let spec = wl.os_instr(&inv, 0);
                    prop_assert!(space.contains(Region::KernelCode, spec.pc));
                }
            }
        }
    }

    /// Instret/Cycle arithmetic is consistent with u64 arithmetic.
    #[test]
    fn newtype_arithmetic_matches_raw(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        prop_assert_eq!((Cycle::new(a) + b).as_u64(), a + b);
        prop_assert_eq!(Cycle::new(a).saturating_sub(Cycle::new(b)).as_u64(), a.saturating_sub(b));
        prop_assert_eq!((Instret::new(a) + Instret::new(b)).as_u64(), a + b);
        prop_assert_eq!(Cycle::new(a).max(Cycle::new(b)).as_u64(), a.max(b));
    }
}
