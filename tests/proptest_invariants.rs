//! Property-style invariants across the whole stack, driven by seeded
//! `Rng64` case generation (dependency-free, bit-reproducible).

use osoffload::core::{AState, CamPredictor, RunLengthPredictor};
use osoffload::mem::{Access, Address, CoreId, MemConfig, MemorySystem};
use osoffload::sim::{Cycle, Instret, Rng64};
use osoffload::system::OsCoreQueue;
use osoffload::workload::{Profile, Region, Segment, ThreadWorkload};

const CASES: u64 = 64;

fn small_mem(cores: usize) -> MemorySystem {
    let mut cfg = MemConfig::paper_baseline(cores);
    cfg.l1i = osoffload::mem::CacheGeometry::new(2048, 2);
    cfg.l1d = osoffload::mem::CacheGeometry::new(2048, 2);
    cfg.l2 = osoffload::mem::CacheGeometry::new(8192, 4);
    MemorySystem::new(cfg)
}

/// MESI + directory + inclusion invariants hold under arbitrary
/// interleavings of reads/writes/fetches from multiple cores.
#[test]
fn coherence_invariants_hold_under_random_traffic() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xC0E4_0000 + case);
        let mut mem = small_mem(3);
        for _ in 0..g.gen_range(1..400) {
            let kind = g.gen_range(0..3);
            let core = g.gen_range(0..3) as usize;
            let addr = Address::new(g.gen_range(0..64) * 64);
            let access = match kind {
                0 => Access::read(addr),
                1 => Access::write(addr),
                _ => Access::fetch(addr),
            };
            let outcome = mem.access(CoreId::new(core), access);
            assert!(outcome.latency >= Cycle::new(1));
        }
        mem.check_invariants();
    }
}

/// The same access sequence always produces the same latencies.
#[test]
fn memory_system_is_deterministic() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xDE7E_0000 + case);
        let n = g.gen_range(1..200) as usize;
        let ops: Vec<(u64, usize, u64)> = (0..n)
            .map(|_| {
                (
                    g.gen_range(0..2),
                    g.gen_range(0..2) as usize,
                    g.gen_range(0..32),
                )
            })
            .collect();
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut mem = small_mem(2);
                ops.iter()
                    .map(|&(w, core, line)| {
                        let addr = Address::new(line * 64);
                        let access = if w == 1 {
                            Access::write(addr)
                        } else {
                            Access::read(addr)
                        };
                        mem.access(CoreId::new(core), access).latency.as_u64()
                    })
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}

/// The predictor never forgets its capacity bound, and training on a
/// stable per-AState length converges to local predictions of it.
#[test]
fn predictor_converges_and_stays_bounded() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x9BED_0000 + case);
        let mut p = CamPredictor::new(32);
        for _ in 0..g.gen_range(10..300) {
            let a = g.gen_range(0..40);
            let len = g.gen_range(100..5_000);
            let astate = AState::from(a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let pred = p.predict(astate);
            p.learn(astate, pred, len);
            assert!(p.resident() <= 32);
        }
        // Re-teaching one AState a constant length converges in 3 visits.
        let a = AState::from(0xABCDu64);
        for _ in 0..3 {
            let pred = p.predict(a);
            p.learn(a, pred, 777);
        }
        assert_eq!(p.predict(a).length, 777);
    }
}

/// OS-core queue: service starts never precede arrivals, never overlap,
/// and stall counting is consistent.
#[test]
fn queue_is_causal_and_non_overlapping() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x05C0_0000 + case);
        let n = g.gen_range(1..100) as usize;
        let jobs: Vec<(u64, u64)> = (0..n)
            .map(|_| (g.gen_range(0..10_000), g.gen_range(1..5_000)))
            .collect();
        let mut q = OsCoreQueue::new();
        let mut arrival = Cycle::ZERO;
        let mut last_end = Cycle::ZERO;
        for &(gap, service) in &jobs {
            arrival += gap;
            let start = q.acquire(arrival);
            assert!(start >= arrival, "service before arrival");
            assert!(start >= last_end, "overlapping service");
            let end = start + service;
            q.release(end);
            q.add_busy(end - start);
            last_end = end;
        }
        assert_eq!(q.requests(), jobs.len() as u64);
        assert!(q.stalled() <= q.requests());
        let total_service: u64 = jobs.iter().map(|&(_, s)| s).sum();
        assert_eq!(q.busy(), Cycle::new(total_service));
    }
}

/// Workload streams conserve the user/OS alternation and keep all
/// addresses inside the thread's regions.
#[test]
fn workload_streams_are_well_formed() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x3011_0000 + case);
        let seed = g.gen_range(0..1_000);
        let thread = g.gen_range(0..4) as usize;
        let mut wl = ThreadWorkload::new(Profile::derby(), thread, seed);
        let space = *wl.address_space();
        for i in 0..60 {
            match wl.next_segment() {
                Segment::User { len } => {
                    assert!(i % 2 == 0, "user segment out of order");
                    assert!(len >= 1);
                    let spec = wl.user_instr();
                    assert!(space.contains(Region::UserCode, spec.pc));
                }
                Segment::Os(inv) => {
                    assert!(i % 2 == 1, "OS segment out of order");
                    assert!(inv.actual_len >= 1);
                    let spec = wl.os_instr(&inv, 0);
                    assert!(space.contains(Region::KernelCode, spec.pc));
                }
            }
        }
    }
}

/// Instret/Cycle arithmetic is consistent with u64 arithmetic.
#[test]
fn newtype_arithmetic_matches_raw() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xA217_0000 + case);
        let a = g.gen_range(0..1 << 40);
        let b = g.gen_range(0..1 << 40);
        assert_eq!((Cycle::new(a) + b).as_u64(), a + b);
        assert_eq!(
            Cycle::new(a).saturating_sub(Cycle::new(b)).as_u64(),
            a.saturating_sub(b)
        );
        assert_eq!((Instret::new(a) + Instret::new(b)).as_u64(), a + b);
        assert_eq!(Cycle::new(a).max(Cycle::new(b)).as_u64(), a.max(b));
    }
}
