//! Bit-identity of the batched stepper against the retained
//! per-instruction reference stepper.
//!
//! The hot-path overhaul (batched burst execution, indexed CAM and TLB
//! front-ends, L1 repeat-hit memo) is a pure refactoring: every report
//! must come out **bit-identical** to the pre-optimisation simulator.
//! The reference stepper — the verbatim per-instruction loop, compiled
//! only under the `reference-stepper` feature — is the oracle. This
//! suite runs one configuration shaped like each of the repo's eleven
//! experiment kinds (fig1, fig3, fig4, fig5, table3, scalability,
//! sensitivity, predictor accuracy, half-L2, mechanism ablation, tuner
//! trace) through both steppers, across three seeds, and requires
//! `SimReport` equality — which covers every cycle count, cache/TLB/
//! predictor statistic, queue report, and trace-derived metric.

use osoffload::core::TunerConfig;
use osoffload::mem::MemConfig;
use osoffload::obs::TelemetryMode;
use osoffload::system::{OffloadMechanism, PolicyKind, Simulation, SystemConfig};
use osoffload::workload::Profile;

const SEEDS: [u64; 3] = [0xF1605, 0xB17_1DE7, 42];
const INSTRUCTIONS: u64 = 60_000;
const WARMUP: u64 = 30_000;

fn base(profile: Profile, policy: PolicyKind, latency: u64, seed: u64) -> SystemConfig {
    SystemConfig::builder()
        .profile(profile)
        .policy(policy)
        .migration_latency(latency)
        .instructions(INSTRUCTIONS)
        .warmup(WARMUP)
        .seed(seed)
        .build()
}

/// One configuration per experiment kind, exercising every hot-path
/// branch: local execution, thread-migration and remote-call off-load,
/// resource adaptation, dynamic/static instrumentation, the oracle and
/// direct-mapped predictor front-ends, multi-core topologies, shrunken
/// caches, and the epoch-driven threshold tuner.
fn configs(seed: u64) -> Vec<(&'static str, SystemConfig)> {
    let hi = |n| PolicyKind::HardwarePredictor { threshold: n };
    vec![
        // fig1: local-only baseline characterisation.
        (
            "fig1_baseline",
            base(Profile::apache(), PolicyKind::Baseline, 0, seed),
        ),
        // fig3: binary decision accuracy at a fixed threshold.
        ("fig3_binary", base(Profile::derby(), hi(500), 1_000, seed)),
        // fig4: the headline threshold x latency sweep point.
        (
            "fig4_point",
            base(Profile::apache(), hi(1_000), 1_000, seed),
        ),
        // fig5: dynamic instrumentation alternative.
        (
            "fig5_instrumentation",
            base(
                Profile::specjbb(),
                PolicyKind::DynamicInstrumentation {
                    threshold: 500,
                    cost: 120,
                },
                1_000,
                seed,
            ),
        ),
        // table3: OS-core utilisation under always-offload pressure.
        (
            "table3_utilization",
            base(Profile::derby(), PolicyKind::AlwaysOffload, 100, seed),
        ),
        // scalability: several user cores sharing one OS core.
        (
            "scalability_4core",
            SystemConfig::builder()
                .profile(Profile::specjbb())
                .policy(hi(100))
                .migration_latency(1_000)
                .user_cores(2)
                .instructions(INSTRUCTIONS)
                .warmup(WARMUP)
                .seed(seed)
                .build(),
        ),
        // sensitivity: resource adaptation (Li & John) instead of migration.
        (
            "sensitivity_resource_adaptation",
            SystemConfig::builder()
                .profile(Profile::apache())
                .policy(hi(500))
                .migration_latency(1_000)
                .resource_adaptation(600)
                .instructions(INSTRUCTIONS)
                .warmup(WARMUP)
                .seed(seed)
                .build(),
        ),
        // predictor accuracy: the direct-mapped organisation.
        (
            "predictor_direct_mapped",
            base(
                Profile::mcf(),
                PolicyKind::HardwarePredictorDirectMapped { threshold: 500 },
                1_000,
                seed,
            ),
        ),
        // half-L2: shrunken per-core L2 with full telemetry armed.
        (
            "half_l2_telemetry",
            SystemConfig::builder()
                .profile(Profile::apache())
                .policy(hi(100))
                .migration_latency(500)
                .mem_override(MemConfig::half_l2_variant(2))
                .telemetry(TelemetryMode::Full)
                .instructions(INSTRUCTIONS)
                .warmup(WARMUP)
                .seed(seed)
                .build(),
        ),
        // mechanism ablation: RPC-style remote call, slowed OS core.
        (
            "mechanism_remote_call",
            SystemConfig::builder()
                .profile(Profile::derby())
                .policy(hi(100))
                .migration_latency(1_000)
                .mechanism(OffloadMechanism::RemoteCall)
                .os_core_slowdown_milli(1_500)
                .instructions(INSTRUCTIONS)
                .warmup(WARMUP)
                .seed(seed)
                .build(),
        ),
        // tuner trace: epoch-driven dynamic threshold estimation.
        (
            "tuner_trace",
            SystemConfig::builder()
                .profile(Profile::specjbb())
                .policy(hi(1_000))
                .migration_latency(1_000)
                .tuner(TunerConfig::scaled_down(25_000_000 / 1_500))
                .instructions(INSTRUCTIONS)
                .warmup(WARMUP)
                .seed(seed)
                .build(),
        ),
    ]
}

/// The lane engine against the scalar stepper, over the same
/// eleven-configuration x three-seed matrix. Scalar references are
/// computed once per (configuration, seed); the lane side re-runs the
/// whole matrix at widths 1, 4 and 8, chunked into mixed-shape packs by
/// `run_lanes`, and every report must be bit-identical.
#[test]
fn lane_stepper_is_bit_identical_to_scalar() {
    use osoffload::system::run_lanes;
    for seed in SEEDS {
        let named = configs(seed);
        let scalar: Vec<_> = named
            .iter()
            .map(|(_, cfg)| Simulation::new(cfg.clone()).run())
            .collect();
        let pack: Vec<SystemConfig> = named.iter().map(|(_, cfg)| cfg.clone()).collect();
        for lanes in [1usize, 4, 8] {
            let reports = run_lanes(&pack, lanes).expect("matrix configs are valid");
            for (((name, _), lane), reference) in named.iter().zip(&reports).zip(&scalar) {
                assert_eq!(
                    lane, reference,
                    "config {name} (seed {seed:#x}, lanes {lanes}): \
                     lane report diverged from scalar"
                );
            }
        }
    }
}

#[test]
fn batched_stepper_is_bit_identical_to_reference() {
    for seed in SEEDS {
        for (name, cfg) in configs(seed) {
            let batched = Simulation::new(cfg.clone()).run();
            let reference = Simulation::new(cfg).run_reference();
            assert_eq!(
                batched, reference,
                "config {name} (seed {seed:#x}): batched stepper diverged from reference"
            );
        }
    }
}
