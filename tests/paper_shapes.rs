//! Qualitative reproduction tests: every trend the paper's evaluation
//! reports must hold in this implementation. These are the assertions
//! EXPERIMENTS.md summarises; they run at a reduced scale with generous
//! tolerances so CI stays fast while the shapes remain stable.

use osoffload::system::experiments::{
    fig3, fig4_with_grid, run_single, scalability, table3, Scale,
};
use osoffload::system::PolicyKind;
use osoffload::workload::Profile;

fn scale() -> Scale {
    Scale {
        instructions: 900_000,
        warmup: 700_000,
        seed: 0x5EED,
        compute_profiles: 1,
    }
}

fn normalized(profile: Profile, policy: PolicyKind, latency: u64) -> f64 {
    let s = scale();
    let base = run_single(profile.clone(), PolicyKind::Baseline, 0, 1, s);
    run_single(profile, policy, latency, 1, s).normalized_to(&base)
}

fn hi(n: u64) -> PolicyKind {
    PolicyKind::HardwarePredictor { threshold: n }
}

// ----- Figure 4 trends (§V-A) ----------------------------------------

#[test]
fn offloading_latency_is_the_dominant_factor() {
    // "Performance is clearly maximized with the lowest off-loading
    // overhead possible."
    let aggressive = normalized(Profile::apache(), hi(100), 100);
    let conservative = normalized(Profile::apache(), hi(100), 5_000);
    assert!(
        aggressive > conservative,
        "aggressive {aggressive:.3} must beat conservative {conservative:.3}"
    );
}

#[test]
fn offloading_short_sequences_is_required() {
    // "Maximum performance occurs when off-loading OS invocations as
    // short as 100 instructions long": N = 100 beats N = 10,000.
    let small_n = normalized(Profile::apache(), hi(100), 100);
    let large_n = normalized(Profile::apache(), hi(10_000), 100);
    assert!(
        small_n > large_n,
        "N=100 ({small_n:.3}) must beat N=10,000 ({large_n:.3})"
    );
}

#[test]
fn offloading_everything_is_worse_than_a_small_threshold() {
    // "Even with a zero overhead off-loading latency, moving from N=100
    // to N=0 substantially reduces performance" — coherence traffic.
    for latency in [1_000u64, 5_000] {
        let n0 = normalized(Profile::apache(), hi(0), latency);
        let n100 = normalized(Profile::apache(), hi(100), latency);
        assert!(
            n0 <= n100 + 0.01,
            "latency {latency}: N=0 ({n0:.3}) must not beat N=100 ({n100:.3})"
        );
    }
}

#[test]
fn specjbb_never_profits_at_conservative_latency() {
    // "If the core migration implementation is not efficient, it is
    // possible that off-loading may never be beneficial (see SPECjbb)."
    for n in [100u64, 1_000, 5_000] {
        let v = normalized(Profile::specjbb(), hi(n), 5_000);
        assert!(
            v < 1.03,
            "SPECjbb at 5,000-cycle latency, N={n}: {v:.3} should be ~<=1"
        );
    }
}

#[test]
fn specjbb_profits_at_aggressive_latency() {
    let v = normalized(Profile::specjbb(), hi(100), 100);
    assert!(v > 1.05, "SPECjbb at 100-cycle latency: {v:.3}");
}

#[test]
fn apache_gains_double_digits_at_aggressive_latency() {
    // The paper's headline benefit region.
    let v = normalized(Profile::apache(), hi(100), 100);
    assert!(v > 1.10, "apache aggressive gain too small: {v:.3}");
}

#[test]
fn compute_workloads_are_insensitive() {
    let v = normalized(Profile::mcf(), hi(1_000), 1_000);
    assert!(
        (0.9..1.15).contains(&v),
        "compute should be near 1.0, got {v:.3}"
    );
}

#[test]
fn fig4_driver_matches_direct_runs() {
    let s = scale();
    let cells = fig4_with_grid(s, &[100], &[100]);
    let apache = cells
        .iter()
        .find(|c| c.workload == "apache")
        .expect("apache cell");
    let direct = normalized(Profile::apache(), hi(100), 100);
    assert!(
        (apache.normalized_ipc - direct).abs() < 1e-9,
        "driver {:.4} vs direct {direct:.4}",
        apache.normalized_ipc
    );
}

// ----- Figure 3 / §III-A: prediction quality ---------------------------

#[test]
fn binary_decision_accuracy_is_high_for_servers() {
    let rows = fig3(scale());
    for row in rows.iter().filter(|r| r.workload != "compute") {
        for p in &row.points {
            assert!(
                p.accuracy > 0.70,
                "{} at N={}: binary accuracy {:.3}",
                row.workload,
                p.threshold,
                p.accuracy
            );
        }
    }
}

#[test]
fn predictor_accuracy_matches_paper_band() {
    let s = Scale {
        instructions: 2_000_000,
        warmup: 1_500_000,
        ..scale()
    };
    let r = run_single(Profile::apache(), hi(1_000), 1_000, 1, s);
    let p = r.predictor.expect("predictor stats");
    // Paper (all-benchmark average): 73.6% exact, 98.4% within ±5%.
    // Our apache lands in the same band at steady state.
    assert!(p.exact > 0.55, "exact = {:.3}", p.exact);
    assert!(p.within_5pct > 0.75, "close = {:.3}", p.within_5pct);
    // "Our mispredictions tend to underestimate OS run-lengths."
    assert!(
        p.underestimates > 0.5 * (1.0 - p.exact),
        "underestimates {:.3} should dominate the {:.3} misses",
        p.underestimates,
        1.0 - p.exact
    );
}

// ----- Table III -------------------------------------------------------

#[test]
fn os_core_utilization_falls_with_threshold_and_orders_workloads() {
    let rows = table3(scale());
    for row in &rows {
        let utils: Vec<f64> = row.utilization.iter().map(|&(_, u)| u).collect();
        for w in utils.windows(2) {
            assert!(
                w[0] >= w[1] - 0.02,
                "{}: utilisation should fall with N: {utils:?}",
                row.workload
            );
        }
    }
    let at = |name: &str| {
        rows.iter()
            .find(|r| r.workload == name)
            .unwrap()
            .utilization[0]
            .1
    };
    assert!(
        at("apache") > at("derby"),
        "apache must use the OS core more than derby"
    );
}

// ----- §V-C scalability -------------------------------------------------

#[test]
fn queue_delay_explodes_with_user_core_count() {
    let rows = scalability(scale());
    assert!(rows[1].mean_queue_delay > rows[0].mean_queue_delay);
    assert!(
        rows[2].mean_queue_delay > 2.0 * rows[1].mean_queue_delay,
        "4:1 ({:.0}) must be far worse than 2:1 ({:.0})",
        rows[2].mean_queue_delay,
        rows[1].mean_queue_delay
    );
    // Scaling efficiency decays.
    assert!(rows[2].scaling_efficiency < rows[1].scaling_efficiency);
    assert!(rows[1].scaling_efficiency < 1.01);
}

// ----- Figure 5: policy comparison --------------------------------------

#[test]
fn hardware_beats_software_instrumentation() {
    let s = scale();
    let base = run_single(Profile::apache(), PolicyKind::Baseline, 0, 1, s);
    for latency in [5_000u64, 100] {
        let hi_v = run_single(Profile::apache(), hi(100), latency, 1, s).normalized_to(&base);
        let di_v = run_single(
            Profile::apache(),
            PolicyKind::DynamicInstrumentation {
                threshold: 100,
                cost: 120,
            },
            latency,
            1,
            s,
        )
        .normalized_to(&base);
        let si_v = run_single(
            Profile::apache(),
            PolicyKind::StaticInstrumentation { stub_cost: 25 },
            latency,
            1,
            s,
        )
        .normalized_to(&base);
        assert!(
            hi_v >= di_v,
            "lat {latency}: HI {hi_v:.3} must be >= DI {di_v:.3}"
        );
        assert!(
            hi_v > si_v,
            "lat {latency}: HI {hi_v:.3} must beat SI {si_v:.3}"
        );
    }
}

// ----- §III-B: phase-change adaptation -----------------------------------

#[test]
fn tuner_adapts_across_a_program_phase_change() {
    use osoffload::core::TunerConfig;
    use osoffload::system::{Simulation, SystemConfig};

    // Phase 1: apache behaviour; phase 2 (from 1.2 M instructions):
    // derby behaviour — far fewer, longer invocations, so a different N
    // pays off. The estimator must keep re-sampling and survive the
    // shift ("if phase changes are frequent … the epoch length can be
    // gradually increased", §III-B).
    let cfg = SystemConfig::builder()
        .profile(Profile::apache())
        .phase(1_200_000, Profile::derby())
        .policy(PolicyKind::HardwarePredictor { threshold: 1_000 })
        .migration_latency(1_000)
        .instructions(2_400_000)
        .warmup(300_000)
        .seed(0xAB)
        .tuner(TunerConfig::scaled_down(1_000)) // 25K-insn samples
        .build();
    let (report, trace) = Simulation::new(cfg).run_with_tuner_trace();
    assert!(
        trace.len() > 10,
        "tuner must keep sampling: {} events",
        trace.len()
    );
    assert!(report.final_threshold.is_some());
    // The run completes and the tuner stayed on its grid throughout.
    let grid = [0u64, 100, 500, 1_000, 5_000, 10_000];
    assert!(trace.iter().all(|e| grid.contains(&e.threshold)));
    // Adaptation happened at least once over the two phases.
    assert!(
        trace.iter().any(|e| e.adopted),
        "no threshold adoption across a phase change"
    );
}

// ----- §V-C extension: SMT OS core ---------------------------------------

#[test]
fn smt_contexts_collapse_os_core_queueing() {
    use osoffload::system::{Simulation, SystemConfig};
    let run = |contexts: usize| {
        Simulation::new(
            SystemConfig::builder()
                .profile(Profile::specjbb())
                .policy(hi(100))
                .migration_latency(1_000)
                .user_cores(4)
                .os_core_contexts(contexts)
                .instructions(600_000)
                .warmup(300_000)
                .seed(0x51)
                .build(),
        )
        .run()
    };
    let non_smt = run(1);
    let smt4 = run(4);
    assert!(
        smt4.queue.mean_delay < non_smt.queue.mean_delay / 5.0,
        "4 contexts must collapse queueing: {:.0} -> {:.0}",
        non_smt.queue.mean_delay,
        smt4.queue.mean_delay
    );
    assert!(smt4.throughput > non_smt.throughput);
}

// ----- §VI-A: branch-predictor interference ------------------------------

#[test]
fn offloading_restores_user_branch_accuracy() {
    // Gloy et al. (cited in §VI-A): OS execution pollutes user branch
    // prediction. Off-loading gives each stream its own table.
    let s = scale();
    let base = run_single(Profile::apache(), PolicyKind::Baseline, 0, 1, s);
    let offl = run_single(Profile::apache(), hi(100), 100, 1, s);
    assert!(
        offl.user_branch_accuracy > base.user_branch_accuracy,
        "offload should improve user branch accuracy: {:.4} -> {:.4}",
        base.user_branch_accuracy,
        offl.user_branch_accuracy
    );
}
