//! # osoffload
//!
//! A complete Rust reproduction of *"Improving Server Performance on
//! Multi-Cores via Selective Off-loading of OS Functionality"* (Nellans,
//! Sudan, Brunvand, Balasubramonian — WIOSCA 2010).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`sim`] — simulation kernel (cycles, deterministic RNG, statistics);
//! * [`mem`] — memory hierarchy (caches, MESI directory, interconnect, DRAM);
//! * [`cpu`] — in-order core model (architected state, TLB, branch prediction);
//! * [`workload`] — synthetic server/compute workload models and syscall catalog;
//! * [`core`] — **the paper's contribution**: the OS run-length predictor,
//!   off-loading decision policies, and the dynamic threshold tuner;
//! * [`system`] — the assembled CMP with migration and queueing, plus
//!   experiment drivers for every figure and table in the paper;
//! * [`obs`] — telemetry substrate: structured spans, epoch-sampled
//!   metric time series, and Chrome-trace export;
//! * [`energy`] — energy/EDP scoring of finished runs (the paper's
//!   stated future work), including the heterogeneous-OS-core case.
//!
//! # Quickstart
//!
//! ```
//! use osoffload::system::{SystemConfig, Simulation};
//! use osoffload::system::PolicyKind;
//! use osoffload::workload::Profile;
//!
//! // Simulate Apache with the paper's hardware predictor (HI policy),
//! // a 1,000-cycle one-way migration latency and N = 500.
//! let config = SystemConfig::builder()
//!     .profile(Profile::apache())
//!     .policy(PolicyKind::HardwarePredictor { threshold: 500 })
//!     .migration_latency(1_000)
//!     .instructions(200_000)
//!     .seed(42)
//!     .build();
//! let report = Simulation::new(config).run();
//! assert!(report.throughput() > 0.0);
//! ```

pub use osoffload_core as core;
pub use osoffload_cpu as cpu;
pub use osoffload_energy as energy;
pub use osoffload_mem as mem;
pub use osoffload_obs as obs;
pub use osoffload_runner as runner;
pub use osoffload_sim as sim;
pub use osoffload_system as system;
pub use osoffload_workload as workload;
