//! Parallel plan executor: scoped worker threads pulling points off a
//! shared index, with per-point panic isolation and optional retry.

use crate::plan::{ExperimentPlan, Point};
use crate::progress::Progress;
use crate::report::config_json;
use osoffload_system::{SimReport, Simulation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Knobs of a sweep execution.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads; `0` = one per available hardware thread, capped
    /// at the number of points.
    pub workers: usize,
    /// How many times a panicking point is re-evaluated before being
    /// recorded as failed.
    pub retries: u32,
    /// Suppresses the stderr progress reporter.
    pub quiet: bool,
    /// Directory the JSON results file is written into.
    pub out_dir: PathBuf,
    /// Records full telemetry for every point and writes per-point
    /// trace/metrics files (see [`crate::report::write_runner_telemetry`]).
    pub telemetry: bool,
    /// Where telemetry files go; defaults to `<out_dir>/telemetry`.
    pub trace_out: Option<PathBuf>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            workers: 0,
            retries: 0,
            quiet: false,
            out_dir: PathBuf::from("results"),
            telemetry: false,
            trace_out: None,
        }
    }
}

impl RunnerOptions {
    /// Splits recognised runner flags out of an argument list, returning
    /// the parsed options and the untouched remainder.
    ///
    /// Recognised: `--workers=N` (or `-jN`), `--retries=N`, `--quiet`,
    /// `--out=DIR`, `--telemetry`, and `--trace-out=DIR` (implies
    /// `--telemetry`). Malformed values abort with a message on stderr.
    pub fn parse_flags(args: &[String]) -> (RunnerOptions, Vec<String>) {
        let mut opts = RunnerOptions::default();
        let mut rest = Vec::new();
        let parse_num = |flag: &str, v: &str| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {flag}: {v:?}");
                std::process::exit(2);
            })
        };
        for arg in args {
            if let Some(v) = arg.strip_prefix("--workers=") {
                opts.workers = parse_num("--workers", v);
            } else if let Some(v) = arg.strip_prefix("-j") {
                opts.workers = parse_num("-j", v);
            } else if let Some(v) = arg.strip_prefix("--retries=") {
                opts.retries = parse_num("--retries", v) as u32;
            } else if arg == "--quiet" {
                opts.quiet = true;
            } else if let Some(v) = arg.strip_prefix("--out=") {
                opts.out_dir = PathBuf::from(v);
            } else if arg == "--telemetry" {
                opts.telemetry = true;
            } else if let Some(v) = arg.strip_prefix("--trace-out=") {
                opts.telemetry = true;
                opts.trace_out = Some(PathBuf::from(v));
            } else {
                rest.push(arg.clone());
            }
        }
        (opts, rest)
    }

    fn effective_workers(&self, points: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.clamp(1, points.max(1))
    }

    /// The directory per-point telemetry files are written into.
    pub fn telemetry_dir(&self) -> PathBuf {
        self.trace_out
            .clone()
            .unwrap_or_else(|| self.out_dir.join("telemetry"))
    }
}

/// What happened to one point.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The evaluation completed.
    Ok(Box<SimReport>),
    /// Every attempt panicked; the sweep carried on without it.
    Failed {
        /// The final panic's message.
        panic: String,
        /// Evaluations attempted (1 + retries).
        attempts: u32,
    },
}

/// One row of a sweep's results.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Plan-order index.
    pub index: usize,
    /// The point's identifier.
    pub id: String,
    /// The seed the run used.
    pub seed: u64,
    /// JSON rendering of the point's configuration (stable key order).
    pub config_json: String,
    /// Report or failure.
    pub outcome: Outcome,
    /// Wall-clock milliseconds the evaluation took (non-deterministic).
    pub wall_ms: f64,
    /// Milliseconds after sweep start the evaluation began
    /// (non-deterministic; self-profiling timeline).
    pub start_ms: f64,
    /// Which worker ran it (non-deterministic).
    pub worker: usize,
    /// Evaluations performed, counting retries (1 = first try worked).
    pub attempts: u32,
}

impl PointResult {
    /// Whether the point completed.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, Outcome::Ok(_))
    }

    /// The deterministic portion of the row as JSON: everything except
    /// `wall_ms` and `worker`. Two sweeps of the same plan agree on this
    /// string for every row, whatever their worker counts.
    pub fn stable_json(&self) -> String {
        let mut o = format!(
            "{{\"index\":{},\"id\":\"{}\",\"seed\":{},\"config\":{}",
            self.index,
            crate::report::json_escape(&self.id),
            self.seed,
            self.config_json
        );
        match &self.outcome {
            Outcome::Ok(r) => {
                o.push_str(",\"status\":\"ok\",\"report\":");
                o.push_str(&r.to_json());
            }
            Outcome::Failed { panic, attempts } => {
                o.push_str(&format!(
                    ",\"status\":\"failed\",\"panic\":\"{}\",\"attempts\":{}",
                    crate::report::json_escape(panic),
                    attempts
                ));
            }
        }
        o.push('}');
        o
    }

    /// The full row as JSON, adding the non-deterministic `wall_ms`,
    /// `start_ms`, `worker`, and `attempts` fields to
    /// [`stable_json`](Self::stable_json).
    pub fn row_json(&self) -> String {
        let stable = self.stable_json();
        format!(
            "{},\"wall_ms\":{:.3},\"start_ms\":{:.3},\"worker\":{},\"attempts\":{}}}",
            &stable[..stable.len() - 1],
            self.wall_ms,
            self.start_ms,
            self.worker,
            self.attempts
        )
    }
}

/// The outcome of executing a whole plan.
#[derive(Debug)]
pub struct SweepResult {
    /// Plan name.
    pub name: String,
    /// Plan master seed.
    pub master_seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Per-point rows, in plan order.
    pub rows: Vec<PointResult>,
}

/// Self-profiling summary of one worker thread's share of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// Worker index.
    pub worker: usize,
    /// Points this worker evaluated.
    pub points: usize,
    /// Milliseconds the worker spent evaluating points.
    pub busy_ms: f64,
    /// Extra evaluations due to retries.
    pub retries: u64,
    /// `busy_ms` over the sweep's wall-clock time.
    pub utilization: f64,
}

impl SweepResult {
    /// The rows whose evaluation failed.
    pub fn failures(&self) -> impl Iterator<Item = &PointResult> {
        self.rows.iter().filter(|r| !r.is_ok())
    }

    /// Per-worker self-profiling: how the sweep's wall-clock time was
    /// spent (derived from the per-point timings).
    pub fn worker_profiles(&self) -> Vec<WorkerProfile> {
        let mut profiles: Vec<WorkerProfile> = (0..self.workers)
            .map(|worker| WorkerProfile {
                worker,
                points: 0,
                busy_ms: 0.0,
                retries: 0,
                utilization: 0.0,
            })
            .collect();
        for row in &self.rows {
            if let Some(p) = profiles.get_mut(row.worker) {
                p.points += 1;
                p.busy_ms += row.wall_ms;
                p.retries += u64::from(row.attempts.saturating_sub(1));
            }
        }
        if self.wall_ms > 0.0 {
            for p in &mut profiles {
                p.utilization = (p.busy_ms / self.wall_ms).min(1.0);
            }
        }
        profiles
    }

    /// Total queue wait: time points spent claimed-but-idle is not
    /// tracked separately, so this reports the complement of busy time —
    /// worker-milliseconds not spent evaluating.
    pub fn idle_ms(&self) -> f64 {
        let busy: f64 = self.rows.iter().map(|r| r.wall_ms).sum();
        (self.wall_ms * self.workers as f64 - busy).max(0.0)
    }

    /// The reports in plan order, or `None` if any point failed.
    pub fn reports(&self) -> Option<Vec<&SimReport>> {
        self.rows
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Ok(rep) => Some(rep.as_ref()),
                Outcome::Failed { .. } => None,
            })
            .collect()
    }

    /// The whole sweep as one JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| r.row_json()).collect();
        format!(
            "{{\"experiment\":\"{}\",\"master_seed\":{},\"workers\":{},\"points\":{},\"failed\":{},\"wall_ms\":{:.3},\"rows\":[{}]}}",
            crate::report::json_escape(&self.name),
            self.master_seed,
            self.workers,
            self.rows.len(),
            self.failures().count(),
            self.wall_ms,
            rows.join(",")
        )
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Makes a point id safe to use as a file-name stem.
pub(crate) fn sanitize_id(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Executes `plan` with the default evaluator (simulate the point's
/// configuration).
///
/// With `opts.telemetry` set, every point runs under full telemetry and
/// writes `<telemetry_dir>/<plan>/<id>.{trace.json,metrics.csv,metrics.json}`.
/// Telemetry is observational, so the result rows stay bit-identical to a
/// non-telemetry sweep of the same plan.
pub fn run_plan(plan: &ExperimentPlan, opts: &RunnerOptions) -> SweepResult {
    if !opts.telemetry {
        return run_plan_with(plan, opts, |p| Simulation::new(p.config.clone()).run());
    }
    let dir = opts.telemetry_dir().join(plan.name());
    run_plan_with(plan, opts, |p| {
        let mut cfg = p.config.clone();
        cfg.telemetry = osoffload_obs::TelemetryMode::Full;
        let (report, telemetry) = Simulation::new(cfg).run_with_telemetry();
        if let Err(e) = telemetry.write_files(&dir, &sanitize_id(&p.id)) {
            eprintln!("telemetry write failed for {}: {e}", p.id);
        }
        report
    })
}

/// Executes `plan` with a caller-supplied evaluator.
///
/// Points are claimed from a shared atomic index by `opts.workers`
/// scoped threads. A panicking evaluation is caught, retried up to
/// `opts.retries` times, and finally recorded as
/// [`Outcome::Failed`] — one bad point never aborts the sweep. Rows
/// come back in plan order.
pub fn run_plan_with(
    plan: &ExperimentPlan,
    opts: &RunnerOptions,
    eval: impl Fn(&Point) -> SimReport + Sync,
) -> SweepResult {
    let points = plan.points();
    let n = points.len();
    let workers = opts.effective_workers(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let progress = Progress::new(plan.name(), n, opts.quiet);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let slots = &slots;
            let progress = &progress;
            let eval = &eval;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let point = &points[i];
                let point_start = Instant::now();
                let start_ms = point_start.duration_since(start).as_secs_f64() * 1e3;
                let mut attempts = 0u32;
                let outcome = loop {
                    attempts += 1;
                    match catch_unwind(AssertUnwindSafe(|| eval(point))) {
                        Ok(report) => break Outcome::Ok(Box::new(report)),
                        Err(payload) => {
                            if attempts > opts.retries {
                                break Outcome::Failed {
                                    panic: panic_message(payload),
                                    attempts,
                                };
                            }
                        }
                    }
                };
                let result = PointResult {
                    index: i,
                    id: point.id.clone(),
                    seed: point.config.seed,
                    config_json: config_json(&point.config),
                    outcome,
                    wall_ms: point_start.elapsed().as_secs_f64() * 1e3,
                    start_ms,
                    worker,
                    attempts,
                };
                let ok = result.is_ok();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
                progress.point_done(&point.id, ok);
            });
        }
    });

    SweepResult {
        name: plan.name().to_string(),
        master_seed: plan.master_seed(),
        workers,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        rows: slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed point stores a result")
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExperimentPlan;
    use osoffload_system::{PolicyKind, SystemConfig};
    use osoffload_workload::Profile;

    fn plan(n: usize) -> ExperimentPlan {
        let mut plan = ExperimentPlan::new("unit", 9);
        for i in 0..n {
            plan.push(
                format!("p{i}"),
                SystemConfig::builder()
                    .profile(Profile::apache())
                    .policy(PolicyKind::AlwaysOffload)
                    .instructions(1_000)
                    .build(),
            );
        }
        plan
    }

    /// A cheap deterministic pseudo-report: the fields under test are a
    /// function of the point's seed only.
    fn fake_report(point: &crate::plan::Point) -> SimReport {
        let mut r = crate::driver::placeholder_report();
        r.profile = point.config.profile.name.to_string();
        r.instructions = point.config.seed;
        r.throughput = (point.config.seed % 1_000) as f64 / 1_000.0 + 1.0;
        r
    }

    #[test]
    fn rows_are_identical_across_worker_counts() {
        let plan = plan(12);
        let quiet = RunnerOptions {
            quiet: true,
            ..RunnerOptions::default()
        };
        let one = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 1,
                ..quiet.clone()
            },
            fake_report,
        );
        let four = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 4,
                ..quiet
            },
            fake_report,
        );
        assert_eq!(one.workers, 1);
        assert_eq!(four.workers, 4);
        let a: Vec<String> = one.rows.iter().map(|r| r.stable_json()).collect();
        let b: Vec<String> = four.rows.iter().map(|r| r.stable_json()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn panicking_point_is_isolated() {
        let plan = plan(6);
        let opts = RunnerOptions {
            workers: 3,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, |p| {
            if p.index == 4 {
                panic!("injected fault at {}", p.id);
            }
            fake_report(p)
        });
        assert_eq!(sweep.rows.len(), 6);
        assert_eq!(sweep.failures().count(), 1);
        let failed = &sweep.rows[4];
        assert!(!failed.is_ok());
        match &failed.outcome {
            Outcome::Failed { panic, attempts } => {
                assert!(panic.contains("injected fault at p4"), "{panic}");
                assert_eq!(*attempts, 1);
            }
            Outcome::Ok(_) => unreachable!(),
        }
        assert!(sweep.reports().is_none());
        assert!(sweep.to_json().contains("\"status\":\"failed\""));
    }

    #[test]
    fn retries_rerun_panicking_points() {
        let plan = plan(3);
        let opts = RunnerOptions {
            workers: 1,
            retries: 2,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, |p| {
            if p.index == 1 {
                panic!("always fails");
            }
            fake_report(p)
        });
        match &sweep.rows[1].outcome {
            Outcome::Failed { attempts, .. } => assert_eq!(*attempts, 3, "1 try + 2 retries"),
            Outcome::Ok(_) => unreachable!(),
        }
    }

    #[test]
    fn flag_parsing_splits_runner_options() {
        let args: Vec<String> = [
            "quick",
            "--workers=3",
            "--quiet",
            "--retries=1",
            "--out=tmp",
            "--telemetry",
            "--trace-out=tmp/traces",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (opts, rest) = RunnerOptions::parse_flags(&args);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.retries, 1);
        assert!(opts.quiet);
        assert_eq!(opts.out_dir, std::path::PathBuf::from("tmp"));
        assert!(opts.telemetry);
        assert_eq!(opts.telemetry_dir(), std::path::PathBuf::from("tmp/traces"));
        assert_eq!(rest, vec!["quick".to_string()]);
    }

    #[test]
    fn trace_out_implies_telemetry_and_defaults_under_out_dir() {
        let args: Vec<String> = vec!["--trace-out=x".to_string()];
        let (opts, _) = RunnerOptions::parse_flags(&args);
        assert!(opts.telemetry);
        let plain = RunnerOptions::default();
        assert!(!plain.telemetry);
        assert_eq!(
            plain.telemetry_dir(),
            std::path::PathBuf::from("results/telemetry")
        );
    }

    #[test]
    fn worker_profiles_account_for_every_row() {
        let plan = plan(8);
        let opts = RunnerOptions {
            workers: 2,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, fake_report);
        let profiles = sweep.worker_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles.iter().map(|p| p.points).sum::<usize>(), 8);
        for p in &profiles {
            assert!((0.0..=1.0).contains(&p.utilization));
            assert_eq!(p.retries, 0);
        }
        assert!(sweep.idle_ms() >= 0.0);
        // Rows carry the timeline fields.
        assert!(sweep.rows.iter().all(|r| r.attempts == 1));
        assert!(sweep.rows.iter().all(|r| r.start_ms >= 0.0));
        assert!(sweep.to_json().contains("\"start_ms\":"));
        assert!(sweep.to_json().contains("\"attempts\":1"));
    }

    #[test]
    fn sanitize_id_keeps_safe_chars_only() {
        assert_eq!(sanitize_id("0001/apache N=500"), "0001_apache_N_500");
        assert_eq!(sanitize_id("plain-id_0.1"), "plain-id_0.1");
    }
}
