//! Parallel plan executor: scoped worker threads pulling points off a
//! shared index, with per-point panic isolation, watchdog deadlines,
//! retry with deterministic backoff, fault injection, and a write-ahead
//! results journal for crash-safe resume.

use crate::fault::{FaultConfig, FaultPlan, InjectedPanic, PointFaults};
use crate::journal::{self, Journal, JournalHeader};
use crate::plan::{ExperimentPlan, Point};
use crate::progress::Progress;
use crate::report::config_json;
use osoffload_sim::{CancelToken, Cancelled, Rng64};
use osoffload_system::{SimReport, Simulation};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of a sweep execution.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads; `0` = one per available hardware thread, capped
    /// at the number of points.
    pub workers: usize,
    /// How many times a panicking or timed-out point is re-evaluated
    /// before being recorded as failed.
    pub retries: u32,
    /// Suppresses the stderr progress reporter.
    pub quiet: bool,
    /// Directory the JSON results file is written into.
    pub out_dir: PathBuf,
    /// Records full telemetry for every point and writes per-point
    /// trace/metrics files (see [`crate::report::write_runner_telemetry`]).
    pub telemetry: bool,
    /// Where telemetry files go; defaults to `<out_dir>/telemetry`.
    pub trace_out: Option<PathBuf>,
    /// Write-ahead journal path: every completed point is appended as
    /// one fsynced line before it is acknowledged.
    pub journal: Option<PathBuf>,
    /// Resume path: journaled points are restored verbatim and skipped;
    /// new completions append to the same file. A missing file starts a
    /// fresh journal there, so the flag is safe on the first run too.
    pub resume: Option<PathBuf>,
    /// With `resume`: re-attempt journaled failed/timed-out rows
    /// instead of carrying them forward into the resumed archive.
    pub resume_retry_failed: bool,
    /// Runs every point with the cycle-attribution profiler and writes
    /// `<profile_dir>/<plan>/<id>.{collapsed,attribution.txt}`.
    /// Profiling is observational, so result rows stay bit-identical
    /// to an unprofiled sweep of the same plan.
    pub profile: bool,
    /// Per-point soft deadline in milliseconds; a worker watchdog
    /// cancels attempts that exceed it and the point is recorded as
    /// [`Outcome::TimedOut`]. `None` disables the watchdog entirely.
    pub deadline_ms: Option<u64>,
    /// Base retry backoff in milliseconds (doubled per retry, with
    /// deterministic jitter — see [`backoff_delay_ms`]). `0` restores
    /// immediate re-runs.
    pub backoff_ms: u64,
    /// Zeroes the non-deterministic row fields (`wall_ms`, `start_ms`,
    /// `worker`, `attempt_ms`) so two runs of the same plan produce
    /// byte-identical archives — the mode the crash-recovery proofs use.
    pub canonical: bool,
    /// Derives a [`FaultPlan`] from this seed (default rates) and
    /// injects it into the sweep — chaos testing from the CLI.
    pub fault_seed: Option<u64>,
    /// An explicit fault plan (takes precedence over `fault_seed`).
    pub fault_plan: Option<FaultPlan>,
    /// Lane-pack width for the lane-parallel sweep engine: `0` = auto
    /// (currently 4), `1` forces the scalar per-point path, `N > 1`
    /// packs up to N tape-compatible points per [`LaneStepper`] run.
    /// Reports are bit-identical either way; telemetry, profiling,
    /// fault-injection, and deadline sweeps always take the scalar
    /// path.
    ///
    /// [`LaneStepper`]: osoffload_system::LaneStepper
    pub lanes: usize,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            workers: 0,
            retries: 0,
            quiet: false,
            out_dir: PathBuf::from("results"),
            telemetry: false,
            trace_out: None,
            journal: None,
            resume: None,
            resume_retry_failed: false,
            profile: false,
            deadline_ms: None,
            backoff_ms: 25,
            canonical: false,
            fault_seed: None,
            fault_plan: None,
            lanes: 0,
        }
    }
}

impl RunnerOptions {
    /// Splits recognised runner flags out of an argument list, returning
    /// the parsed options and the untouched remainder.
    ///
    /// Recognised: `--workers=N` (or `-jN`), `--retries=N`, `--quiet`,
    /// `--out=DIR`, `--telemetry`, `--trace-out=DIR` (implies
    /// `--telemetry`), `--profile`, `--journal=FILE`, `--resume=FILE`,
    /// `--resume-retry-failed`, `--deadline-ms=N`, `--backoff-ms=N`,
    /// `--canonical`, `--inject-faults=SEED`, and `--lanes=N` (0 =
    /// auto). Malformed values abort with a message on stderr.
    pub fn parse_flags(args: &[String]) -> (RunnerOptions, Vec<String>) {
        let mut opts = RunnerOptions::default();
        let mut rest = Vec::new();
        let parse_num = |flag: &str, v: &str| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {flag}: {v:?}");
                std::process::exit(2);
            })
        };
        let parse_u64 = |flag: &str, v: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {flag}: {v:?}");
                std::process::exit(2);
            })
        };
        for arg in args {
            if let Some(v) = arg.strip_prefix("--workers=") {
                opts.workers = parse_num("--workers", v);
            } else if let Some(v) = arg.strip_prefix("-j") {
                opts.workers = parse_num("-j", v);
            } else if let Some(v) = arg.strip_prefix("--retries=") {
                opts.retries = parse_num("--retries", v) as u32;
            } else if arg == "--quiet" {
                opts.quiet = true;
            } else if let Some(v) = arg.strip_prefix("--out=") {
                opts.out_dir = PathBuf::from(v);
            } else if arg == "--telemetry" {
                opts.telemetry = true;
            } else if let Some(v) = arg.strip_prefix("--trace-out=") {
                opts.telemetry = true;
                opts.trace_out = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("--journal=") {
                opts.journal = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("--resume=") {
                opts.resume = Some(PathBuf::from(v));
            } else if arg == "--resume-retry-failed" {
                opts.resume_retry_failed = true;
            } else if arg == "--profile" {
                opts.profile = true;
            } else if let Some(v) = arg.strip_prefix("--deadline-ms=") {
                opts.deadline_ms = Some(parse_u64("--deadline-ms", v));
            } else if let Some(v) = arg.strip_prefix("--backoff-ms=") {
                opts.backoff_ms = parse_u64("--backoff-ms", v);
            } else if arg == "--canonical" {
                opts.canonical = true;
            } else if let Some(v) = arg.strip_prefix("--inject-faults=") {
                opts.fault_seed = Some(parse_u64("--inject-faults", v));
            } else if let Some(v) = arg.strip_prefix("--lanes=") {
                opts.lanes = parse_num("--lanes", v);
            } else {
                rest.push(arg.clone());
            }
        }
        (opts, rest)
    }

    fn effective_workers(&self, points: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.clamp(1, points.max(1))
    }

    /// The directory per-point telemetry files are written into.
    pub fn telemetry_dir(&self) -> PathBuf {
        self.trace_out
            .clone()
            .unwrap_or_else(|| self.out_dir.join("telemetry"))
    }

    /// The directory per-point cycle-attribution profiles are written
    /// into.
    pub fn profile_dir(&self) -> PathBuf {
        self.out_dir.join("profile")
    }
}

/// What happened to one point.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The evaluation completed.
    Ok(Box<SimReport>),
    /// Every attempt panicked; the sweep carried on without it.
    Failed {
        /// The final panic's message.
        panic: String,
        /// Evaluations attempted (1 + retries).
        attempts: u32,
    },
    /// Every attempt exceeded the watchdog deadline; the sweep carried
    /// on without it.
    TimedOut {
        /// The soft deadline that expired, in milliseconds.
        deadline_ms: u64,
        /// Evaluations attempted (1 + retries).
        attempts: u32,
    },
}

/// One row of a sweep's results.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Plan-order index.
    pub index: usize,
    /// The point's identifier.
    pub id: String,
    /// The seed the run used.
    pub seed: u64,
    /// JSON rendering of the point's configuration (stable key order).
    pub config_json: String,
    /// Report or failure.
    pub outcome: Outcome,
    /// Wall-clock milliseconds the evaluation took (non-deterministic).
    pub wall_ms: f64,
    /// Milliseconds after sweep start the evaluation began
    /// (non-deterministic; self-profiling timeline).
    pub start_ms: f64,
    /// Which worker ran it (non-deterministic).
    pub worker: usize,
    /// Evaluations performed, counting retries (1 = first try worked).
    pub attempts: u32,
    /// Wall-clock milliseconds of each attempt, oldest first
    /// (non-deterministic; lets failed points be diagnosed from the
    /// archive alone).
    pub attempt_ms: Vec<f64>,
    /// Faults the active [`FaultPlan`] scheduled for this point (0
    /// without fault injection).
    pub injected_faults: u32,
    /// When the row was restored from a results journal, the verbatim
    /// stable-row text as originally archived. [`stable_json`]
    /// (Self::stable_json) returns it unchanged, which is what makes a
    /// resumed archive byte-identical to an uninterrupted one.
    pub restored: Option<String>,
}

impl PointResult {
    /// Whether the point completed.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, Outcome::Ok(_))
    }

    /// FNV-1a digest of the point's configuration JSON, archived with
    /// failed rows so any failure is reproducible from the archive
    /// alone.
    pub fn config_digest(&self) -> String {
        format!("{:016x}", journal::fnv1a64(self.config_json.as_bytes()))
    }

    /// The deterministic portion of the row as JSON: everything except
    /// the wall-clock timings and worker assignment. Two sweeps of the
    /// same plan (and fault plan) agree on this string for every row,
    /// whatever their worker counts.
    pub fn stable_json(&self) -> String {
        if let Some(verbatim) = &self.restored {
            return verbatim.clone();
        }
        let mut o = format!(
            "{{\"index\":{},\"id\":\"{}\",\"seed\":{},\"config\":{}",
            self.index,
            crate::report::json_escape(&self.id),
            self.seed,
            self.config_json
        );
        match &self.outcome {
            Outcome::Ok(r) => {
                o.push_str(",\"status\":\"ok\",\"report\":");
                o.push_str(&r.to_json());
            }
            Outcome::Failed { panic, attempts } => {
                o.push_str(&format!(
                    ",\"status\":\"failed\",\"panic\":\"{}\",\"attempts\":{},\"config_digest\":\"{}\"",
                    crate::report::json_escape(panic),
                    attempts,
                    self.config_digest()
                ));
            }
            Outcome::TimedOut {
                deadline_ms,
                attempts,
            } => {
                o.push_str(&format!(
                    ",\"status\":\"timeout\",\"deadline_ms\":{},\"attempts\":{},\"config_digest\":\"{}\"",
                    deadline_ms,
                    attempts,
                    self.config_digest()
                ));
            }
        }
        o.push('}');
        o
    }

    /// The full row as JSON, adding the non-deterministic `wall_ms`,
    /// `start_ms`, `worker`, `attempts`, `injected_faults`, and
    /// `attempt_ms` fields to [`stable_json`](Self::stable_json).
    pub fn row_json(&self) -> String {
        let stable = self.stable_json();
        let attempt_ms: Vec<String> = self
            .attempt_ms
            .iter()
            .map(|ms| format!("{ms:.3}"))
            .collect();
        format!(
            "{},\"wall_ms\":{:.3},\"start_ms\":{:.3},\"worker\":{},\"attempts\":{},\
             \"injected_faults\":{},\"attempt_ms\":[{}]}}",
            &stable[..stable.len() - 1],
            self.wall_ms,
            self.start_ms,
            self.worker,
            self.attempts,
            self.injected_faults,
            attempt_ms.join(",")
        )
    }
}

/// The outcome of executing a whole plan.
#[derive(Debug)]
pub struct SweepResult {
    /// Plan name.
    pub name: String,
    /// Plan master seed.
    pub master_seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Per-point rows, in plan order.
    pub rows: Vec<PointResult>,
}

/// Self-profiling summary of one worker thread's share of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// Worker index.
    pub worker: usize,
    /// Points this worker evaluated.
    pub points: usize,
    /// Milliseconds the worker spent evaluating points.
    pub busy_ms: f64,
    /// Extra evaluations due to retries.
    pub retries: u64,
    /// Points this worker recorded as timed out.
    pub timeouts: u64,
    /// `busy_ms` over the sweep's wall-clock time.
    pub utilization: f64,
}

impl SweepResult {
    /// The rows whose evaluation failed (panicked or timed out).
    pub fn failures(&self) -> impl Iterator<Item = &PointResult> {
        self.rows.iter().filter(|r| !r.is_ok())
    }

    /// The rows recorded as timed out by the worker watchdog.
    pub fn timeouts(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::TimedOut { .. }))
            .count()
    }

    /// Total fault-plan injections scheduled across the sweep.
    pub fn injected_faults(&self) -> u64 {
        self.rows.iter().map(|r| u64::from(r.injected_faults)).sum()
    }

    /// Per-worker self-profiling: how the sweep's wall-clock time was
    /// spent (derived from the per-point timings).
    pub fn worker_profiles(&self) -> Vec<WorkerProfile> {
        let mut profiles: Vec<WorkerProfile> = (0..self.workers)
            .map(|worker| WorkerProfile {
                worker,
                points: 0,
                busy_ms: 0.0,
                retries: 0,
                timeouts: 0,
                utilization: 0.0,
            })
            .collect();
        for row in &self.rows {
            if let Some(p) = profiles.get_mut(row.worker) {
                p.points += 1;
                p.busy_ms += row.wall_ms;
                p.retries += u64::from(row.attempts.saturating_sub(1));
                p.timeouts += u64::from(matches!(row.outcome, Outcome::TimedOut { .. }));
            }
        }
        if self.wall_ms > 0.0 {
            for p in &mut profiles {
                p.utilization = (p.busy_ms / self.wall_ms).min(1.0);
            }
        }
        profiles
    }

    /// Total queue wait: time points spent claimed-but-idle is not
    /// tracked separately, so this reports the complement of busy time —
    /// worker-milliseconds not spent evaluating.
    pub fn idle_ms(&self) -> f64 {
        let busy: f64 = self.rows.iter().map(|r| r.wall_ms).sum();
        (self.wall_ms * self.workers as f64 - busy).max(0.0)
    }

    /// The reports in plan order, or `None` if any point failed.
    pub fn reports(&self) -> Option<Vec<&SimReport>> {
        self.rows
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Ok(rep) => Some(rep.as_ref()),
                Outcome::Failed { .. } | Outcome::TimedOut { .. } => None,
            })
            .collect()
    }

    /// The whole sweep as one JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| r.row_json()).collect();
        format!(
            "{{\"experiment\":\"{}\",\"master_seed\":{},\"workers\":{},\"points\":{},\"failed\":{},\"timeouts\":{},\"wall_ms\":{:.3},\"rows\":[{}]}}",
            crate::report::json_escape(&self.name),
            self.master_seed,
            self.workers,
            self.rows.len(),
            self.failures().count(),
            self.timeouts(),
            self.wall_ms,
            rows.join(",")
        )
    }
}

/// The deterministic backoff before retry `retry` (1-based): `base_ms ×
/// 2^(retry-1)`, capped at two seconds, scaled by a jitter factor in
/// `[0.5, 1.5)` drawn from the point's seed and the retry number. Pure,
/// so a replayed campaign sleeps the identical schedule.
pub fn backoff_delay_ms(base_ms: u64, retry: u32, seed: u64) -> u64 {
    if base_ms == 0 || retry == 0 {
        return 0;
    }
    let exp = base_ms
        .saturating_mul(1u64 << u64::from((retry - 1).min(16)))
        .min(2_000);
    let mut rng = Rng64::seed_from(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(retry)));
    let jitter = 0.5 + rng.next_f64();
    ((exp as f64) * jitter) as u64
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        p.message()
    } else if payload.downcast_ref::<Cancelled>().is_some() {
        "cancelled by the worker watchdog".to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Silences the default panic printer for the payloads the runner
/// itself schedules (injected faults, watchdog cancellations), which
/// would otherwise spam stderr on every planned recovery. Genuine
/// panics keep the previous hook's full output. Installed once per
/// process, only when fault injection or a deadline is active.
fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_some()
                || info.payload().downcast_ref::<Cancelled>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// Makes a point id safe to use as a file-name stem.
pub(crate) fn sanitize_id(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Pads and aligns its contents to a 64-byte cache line. The executor's
/// hot shared state — the claim index, the watchdog arm slots, the
/// shutdown flags — is declared together, so without padding it lands
/// on one or two lines and every `fetch_add` on the claim index
/// invalidates the line a sibling worker (or the watchdog poller) is
/// reading: classic false sharing. Padded, each counter owns its line.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Per-completion callback for [`ExecHooks`]: the finished row, plus
/// `true` when it was served without evaluation (prefilled or
/// journal-restored) and `false` when freshly computed this run.
pub type PointCallback<'a> = &'a (dyn Fn(&PointResult, bool) + Sync);

/// Embedding hooks for [`run_plan_hooked`]: rows the caller already
/// has (e.g. `osoffload serve`'s digest-keyed cache hits) plus a
/// per-completion callback, so a scheduling layer can observe hit/miss
/// per point while the sweep runs.
#[derive(Default)]
pub struct ExecHooks<'a> {
    /// Rows to install before any worker starts, indexed by plan
    /// position (`prefill[i]` fills point `i`; `None` entries and
    /// entries beyond the plan length are ignored). A prefilled point
    /// is never evaluated — exactly like a journal-restored one.
    pub prefill: Vec<Option<PointResult>>,
    /// Called once per row as it becomes final, from whichever thread
    /// produced it.
    pub on_point: Option<PointCallback<'a>>,
}

impl std::fmt::Debug for ExecHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecHooks")
            .field(
                "prefill",
                &self.prefill.iter().filter(|p| p.is_some()).count(),
            )
            .field("on_point", &self.on_point.is_some())
            .finish()
    }
}

impl ExecHooks<'_> {
    fn has_prefill(&self) -> bool {
        self.prefill.iter().any(Option::is_some)
    }
}

/// Per-attempt context handed to [`run_plan_ctx`] evaluators.
#[derive(Debug, Clone)]
pub struct EvalCtx {
    /// The attempt number (1 = first try).
    pub attempt: u32,
    /// Cancellation token the worker watchdog raises when the attempt
    /// outlives its deadline; install it into the simulation (see
    /// [`Simulation::with_cancel`]) so hung points can be reclaimed.
    pub cancel: CancelToken,
}

/// Executes `plan` with the default evaluator (simulate the point's
/// configuration).
///
/// With `opts.telemetry` set, every point runs under full telemetry and
/// writes `<telemetry_dir>/<plan>/<id>.{trace.json,metrics.csv,metrics.json}`.
/// With `opts.profile` set, every point additionally runs the
/// cycle-attribution profiler and writes
/// `<profile_dir>/<plan>/<id>.{collapsed,attribution.txt}`. Both layers
/// are observational, so the result rows stay bit-identical to a plain
/// sweep of the same plan.
pub fn run_plan(plan: &ExperimentPlan, opts: &RunnerOptions) -> SweepResult {
    run_plan_hooked(plan, opts, ExecHooks::default())
}

/// [`run_plan`] with embedding hooks: `hooks.prefill` rows are
/// installed before any worker starts (those points are never
/// evaluated), and `hooks.on_point` observes every row as it becomes
/// final. Prefilled sweeps take the scalar path — lane packs would
/// straddle already-served points — but rows are bit-identical either
/// way, so a cached archive still compares bytes-equal to a lane run.
pub fn run_plan_hooked(
    plan: &ExperimentPlan,
    opts: &RunnerOptions,
    hooks: ExecHooks<'_>,
) -> SweepResult {
    // The cancellation token is only installed when a watchdog can
    // raise it, keeping deadline-free runs on the token-free path.
    let armed = opts.deadline_ms.is_some();
    if !hooks.has_prefill() && crate::lane_exec::eligible(opts) {
        // Lane path: points are served from lane packs (see
        // `lane_exec`), each report bit-identical to the scalar
        // evaluation below.
        let width = crate::lane_exec::effective_lanes(opts);
        let packs = crate::lane_exec::LanePacks::build(plan.points(), width);
        let points = plan.points();
        return run_plan_ctx_hooked(plan, opts, hooks, move |p, _ctx| packs.eval(points, p));
    }
    if !opts.telemetry && !opts.profile {
        return run_plan_ctx_hooked(plan, opts, hooks, |p, ctx| {
            let sim = Simulation::new(p.config.clone());
            let sim = if armed {
                sim.with_cancel(ctx.cancel.clone())
            } else {
                sim
            };
            sim.run()
        });
    }
    let telemetry_dir = opts.telemetry_dir().join(plan.name());
    let profile_dir = opts.profile_dir().join(plan.name());
    run_plan_ctx_hooked(plan, opts, hooks, |p, ctx| {
        let mut cfg = p.config.clone();
        if opts.telemetry {
            cfg.telemetry = osoffload_obs::TelemetryMode::Full;
        }
        cfg.profiling = opts.profile;
        let sim = Simulation::new(cfg);
        let sim = if armed {
            sim.with_cancel(ctx.cancel.clone())
        } else {
            sim
        };
        let (report, telemetry, profile) = sim.run_full_observed();
        if opts.telemetry {
            if let Err(e) = telemetry.write_files(&telemetry_dir, &sanitize_id(&p.id)) {
                eprintln!("telemetry write failed for {}: {e}", p.id);
            }
        }
        if opts.profile {
            if let Err(e) =
                crate::report::write_profile(&profile, &profile_dir, &sanitize_id(&p.id))
            {
                eprintln!("profile write failed for {}: {e}", p.id);
            }
        }
        report
    })
}

/// Executes `plan` with a caller-supplied evaluator that ignores the
/// attempt context. See [`run_plan_ctx`] for the full semantics.
pub fn run_plan_with(
    plan: &ExperimentPlan,
    opts: &RunnerOptions,
    eval: impl Fn(&Point) -> SimReport + Sync,
) -> SweepResult {
    run_plan_ctx(plan, opts, move |p, _ctx| eval(p))
}

/// Executes `plan` with a caller-supplied evaluator.
///
/// Points are claimed from a shared atomic index by `opts.workers`
/// scoped threads. A panicking evaluation is caught, retried up to
/// `opts.retries` times (with exponential backoff and deterministic
/// jitter between attempts), and finally recorded as
/// [`Outcome::Failed`] — one bad point never aborts the sweep. Rows
/// come back in plan order.
///
/// With `opts.deadline_ms` set, a watchdog thread raises each attempt's
/// [`EvalCtx::cancel`] token once the deadline passes; an attempt that
/// unwinds with [`Cancelled`] counts against the retry budget and is
/// finally recorded as [`Outcome::TimedOut`].
///
/// With `opts.journal`/`opts.resume` set, every completed point is
/// appended to a write-ahead journal as one fsynced line before it is
/// acknowledged, and journaled points of an interrupted sweep are
/// restored verbatim instead of re-evaluated.
///
/// With a fault plan active (`opts.fault_plan`/`opts.fault_seed`), the
/// scheduled panics, delays, and journal-write errors are injected at
/// the scheduled attempts — deterministically, so a crashed campaign
/// and its resume see the identical failure sequence.
pub fn run_plan_ctx(
    plan: &ExperimentPlan,
    opts: &RunnerOptions,
    eval: impl Fn(&Point, &EvalCtx) -> SimReport + Sync,
) -> SweepResult {
    run_plan_ctx_hooked(plan, opts, ExecHooks::default(), eval)
}

/// [`run_plan_ctx`] with embedding hooks (see [`ExecHooks`] and
/// [`run_plan_hooked`]). Journal restore wins over a prefilled row for
/// the same point; either way the point is served, not evaluated.
pub fn run_plan_ctx_hooked(
    plan: &ExperimentPlan,
    opts: &RunnerOptions,
    hooks: ExecHooks<'_>,
    eval: impl Fn(&Point, &EvalCtx) -> SimReport + Sync,
) -> SweepResult {
    let points = plan.points();
    let n = points.len();
    let workers = opts.effective_workers(n);
    let deadline = opts.deadline_ms;

    let fault_plan: Option<FaultPlan> = opts.fault_plan.clone().or_else(|| {
        opts.fault_seed
            .map(|seed| FaultPlan::derive(seed, n, &FaultConfig::default()))
    });
    if fault_plan.is_some() || deadline.is_some() {
        install_quiet_panic_hook();
    }
    if let (Some(fp), false) = (&fault_plan, opts.quiet) {
        eprintln!("[{}] {}", plan.name(), fp.describe());
    }

    let header = JournalHeader {
        experiment: plan.name().to_string(),
        master_seed: plan.master_seed(),
        points: n,
    };
    let slots: Vec<Mutex<Option<PointResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut restored_ok = 0usize;
    let mut restored_failed = 0usize;
    let journal_writer: Option<Journal> = if let Some(path) = &opts.resume {
        if path.exists() {
            let loaded = journal::load(path)
                .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", path.display()));
            assert_eq!(
                (
                    loaded.header.experiment.as_str(),
                    loaded.header.master_seed,
                    loaded.header.points
                ),
                (plan.name(), plan.master_seed(), n),
                "journal {} belongs to a different campaign",
                path.display()
            );
            for row in loaded.rows {
                assert!(row.index < n, "journal row index out of range");
                assert_eq!(
                    row.config_json,
                    config_json(&points[row.index].config),
                    "journal row {} does not match the plan's configuration",
                    row.index
                );
                if row.is_ok() {
                    restored_ok += 1;
                } else if opts.resume_retry_failed {
                    // Leave the slot empty so a worker re-evaluates the
                    // point; its fresh row (whatever the outcome) is
                    // re-journaled like any new completion.
                    continue;
                } else {
                    restored_failed += 1;
                }
                let index = row.index;
                *slots[index].lock().expect("result slot poisoned") = Some(row);
            }
            Some(
                Journal::open_append(path)
                    .unwrap_or_else(|e| panic!("cannot append to journal {}: {e}", path.display())),
            )
        } else {
            Some(
                Journal::create(path, &header)
                    .unwrap_or_else(|e| panic!("cannot create journal {}: {e}", path.display())),
            )
        }
    } else {
        opts.journal.as_ref().map(|path| {
            Journal::create(path, &header)
                .unwrap_or_else(|e| panic!("cannot create journal {}: {e}", path.display()))
        })
    };
    let journal_writer = Mutex::new(journal_writer);

    // Install caller-supplied rows (cache hits) into still-empty slots.
    // A journal-restored row for the same point wins: it is this
    // campaign's own record.
    let mut prefilled_ok = 0usize;
    let mut prefilled_failed = 0usize;
    for (i, row) in hooks.prefill.iter().enumerate().take(n) {
        let Some(row) = row else { continue };
        let mut slot = slots[i].lock().expect("result slot poisoned");
        if slot.is_some() {
            continue;
        }
        assert_eq!(row.index, i, "prefilled row index mismatch");
        assert_eq!(
            row.config_json,
            config_json(&points[i].config),
            "prefilled row {i} does not match the plan's configuration"
        );
        if row.is_ok() {
            prefilled_ok += 1;
        } else {
            prefilled_failed += 1;
        }
        *slot = Some(row.clone());
    }
    let on_point = hooks.on_point;

    let progress = Progress::new(plan.name(), n, opts.quiet);
    if restored_ok + restored_failed + prefilled_ok + prefilled_failed > 0 {
        progress.skip(
            restored_ok + prefilled_ok,
            restored_failed + prefilled_failed,
        );
        if !opts.quiet && restored_ok + restored_failed > 0 {
            eprintln!(
                "[{}] resumed {}/{} points from journal ({} failed)",
                plan.name(),
                restored_ok + restored_failed,
                n,
                restored_failed
            );
        }
    }
    // Every pre-served row (journal or prefill) is announced before the
    // workers start, so `on_point` sees each point exactly once.
    if let Some(cb) = on_point {
        for slot in &slots {
            if let Some(row) = slot.lock().expect("result slot poisoned").as_ref() {
                cb(row, true);
            }
        }
    }

    let next = CachePadded(AtomicUsize::new(0));
    let start = Instant::now();
    // One arm slot per worker: the attempt's start time and its token,
    // scanned by the watchdog thread. Each slot is padded to its own
    // cache line so arming/disarming one worker's slot does not contend
    // with the watchdog polling its neighbours'.
    type ArmSlot = CachePadded<Mutex<Option<(Instant, CancelToken)>>>;
    let watch: Vec<ArmSlot> = (0..workers)
        .map(|_| CachePadded(Mutex::new(None)))
        .collect();
    let active_workers = CachePadded(AtomicUsize::new(workers));
    let stop_watchdog = CachePadded(AtomicBool::new(false));

    std::thread::scope(|scope| {
        if let Some(ms) = deadline {
            let watch = &watch;
            let stop = &stop_watchdog;
            scope.spawn(move || {
                let poll = Duration::from_millis((ms / 4).clamp(1, 50));
                let limit = Duration::from_millis(ms);
                while !stop.0.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    for slot in watch {
                        if let Some((armed_at, token)) =
                            &*slot.0.lock().expect("watch slot poisoned")
                        {
                            if armed_at.elapsed() >= limit {
                                token.cancel();
                            }
                        }
                    }
                }
            });
        }
        for worker in 0..workers {
            let next = &next;
            let slots = &slots;
            let progress = &progress;
            let eval = &eval;
            let fault_plan = &fault_plan;
            let journal_writer = &journal_writer;
            let on_point = &on_point;
            let watch = &watch;
            let active_workers = &active_workers;
            let stop_watchdog = &stop_watchdog;
            scope.spawn(move || {
                loop {
                    let i = next.0.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if slots[i].lock().expect("result slot poisoned").is_some() {
                        continue; // restored from the journal
                    }
                    let point = &points[i];
                    let faults: PointFaults = fault_plan
                        .as_ref()
                        .map(|fp| fp.point(i))
                        .unwrap_or_default();
                    let point_start = Instant::now();
                    let start_ms = point_start.duration_since(start).as_secs_f64() * 1e3;
                    let mut attempts = 0u32;
                    let mut attempt_ms: Vec<f64> = Vec::new();
                    let outcome = loop {
                        attempts += 1;
                        if attempts > 1 {
                            let delay =
                                backoff_delay_ms(opts.backoff_ms, attempts - 1, point.config.seed);
                            if delay > 0 {
                                std::thread::sleep(Duration::from_millis(delay));
                            }
                        }
                        let attempt_start = Instant::now();
                        let token = CancelToken::new();
                        if deadline.is_some() {
                            *watch[worker].0.lock().expect("watch slot poisoned") =
                                Some((attempt_start, token.clone()));
                        }
                        let ctx = EvalCtx {
                            attempt: attempts,
                            cancel: token,
                        };
                        let injected_delay = if attempts == 1 { faults.delay_ms } else { None };
                        let inject_panic = attempts <= faults.panics;
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if let Some(ms) = injected_delay {
                                std::thread::sleep(Duration::from_millis(ms));
                            }
                            if inject_panic {
                                std::panic::panic_any(InjectedPanic {
                                    point: i,
                                    attempt: attempts,
                                });
                            }
                            eval(point, &ctx)
                        }));
                        if deadline.is_some() {
                            *watch[worker].0.lock().expect("watch slot poisoned") = None;
                        }
                        attempt_ms.push(attempt_start.elapsed().as_secs_f64() * 1e3);
                        match result {
                            Ok(report) => break Outcome::Ok(Box::new(report)),
                            Err(payload) => {
                                let timed_out = payload.downcast_ref::<Cancelled>().is_some();
                                if attempts > opts.retries {
                                    break if timed_out {
                                        Outcome::TimedOut {
                                            deadline_ms: deadline.unwrap_or(0),
                                            attempts,
                                        }
                                    } else {
                                        Outcome::Failed {
                                            panic: panic_message(payload),
                                            attempts,
                                        }
                                    };
                                }
                            }
                        }
                    };
                    let wall_ms = point_start.elapsed().as_secs_f64() * 1e3;
                    let (wall_ms, start_ms, worker_id, attempt_ms) = if opts.canonical {
                        (0.0, 0.0, 0, vec![0.0; attempt_ms.len()])
                    } else {
                        (wall_ms, start_ms, worker, attempt_ms)
                    };
                    let result = PointResult {
                        index: i,
                        id: point.id.clone(),
                        seed: point.config.seed,
                        config_json: config_json(&point.config),
                        outcome,
                        wall_ms,
                        start_ms,
                        worker: worker_id,
                        attempts,
                        attempt_ms,
                        injected_faults: faults.injected(),
                        restored: None,
                    };
                    // Write-ahead: the row reaches the fsynced journal
                    // (surviving injected I/O errors via retry) before it
                    // is acknowledged to the progress reporter.
                    if let Some(j) = journal_writer
                        .lock()
                        .expect("journal writer poisoned")
                        .as_mut()
                    {
                        let body = journal::record_body(&result);
                        let mut remaining_injected = faults.io_failures;
                        let mut tries = 0u32;
                        loop {
                            tries += 1;
                            let res = if remaining_injected > 0 {
                                remaining_injected -= 1;
                                Err(io::Error::other(format!(
                                    "fault-injected journal write error (point {i})"
                                )))
                            } else {
                                j.append(&body)
                            };
                            match res {
                                Ok(()) => break,
                                Err(e) => {
                                    if tries > 3 {
                                        eprintln!("journal append failed for {}: {e}", result.id);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    if let Some(cb) = on_point {
                        cb(&result, false);
                    }
                    let ok = result.is_ok();
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                    progress.point_done(&point.id, ok);
                }
                if active_workers.0.fetch_sub(1, Ordering::Relaxed) == 1 {
                    stop_watchdog.0.store(true, Ordering::Relaxed);
                }
            });
        }
    });

    SweepResult {
        name: plan.name().to_string(),
        master_seed: plan.master_seed(),
        // Canonical archives must compare bytes-equal across worker
        // counts, so the envelope can't record the real count either.
        workers: if opts.canonical { 0 } else { workers },
        wall_ms: if opts.canonical {
            0.0
        } else {
            start.elapsed().as_secs_f64() * 1e3
        },
        rows: slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed point stores a result")
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExperimentPlan;
    use osoffload_system::{PolicyKind, SystemConfig};
    use osoffload_workload::Profile;

    fn plan(n: usize) -> ExperimentPlan {
        let mut plan = ExperimentPlan::new("unit", 9);
        for i in 0..n {
            plan.push(
                format!("p{i}"),
                SystemConfig::builder()
                    .profile(Profile::apache())
                    .policy(PolicyKind::AlwaysOffload)
                    .instructions(1_000)
                    .build(),
            );
        }
        plan
    }

    /// A cheap deterministic pseudo-report: the fields under test are a
    /// function of the point's seed only.
    fn fake_report(point: &crate::plan::Point) -> SimReport {
        let mut r = crate::driver::placeholder_report();
        r.profile = point.config.profile.name.to_string();
        r.instructions = point.config.seed;
        r.throughput = (point.config.seed % 1_000) as f64 / 1_000.0 + 1.0;
        r
    }

    #[test]
    fn rows_are_identical_across_worker_counts() {
        let plan = plan(12);
        let quiet = RunnerOptions {
            quiet: true,
            ..RunnerOptions::default()
        };
        let one = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 1,
                ..quiet.clone()
            },
            fake_report,
        );
        let four = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 4,
                ..quiet
            },
            fake_report,
        );
        assert_eq!(one.workers, 1);
        assert_eq!(four.workers, 4);
        let a: Vec<String> = one.rows.iter().map(|r| r.stable_json()).collect();
        let b: Vec<String> = four.rows.iter().map(|r| r.stable_json()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lane_path_rows_match_scalar_path() {
        // Real simulations, two shapes (seeds), mixed policies: the
        // lane path must reproduce the scalar rows bit-for-bit.
        let mut plan = ExperimentPlan::new("lane-int", 5);
        for (i, (threshold, seed)) in [(100u64, 1u64), (5_000, 2), (900, 1), (100, 2)]
            .iter()
            .enumerate()
        {
            plan.push_pinned(
                format!("p{i}"),
                SystemConfig::builder()
                    .profile(Profile::apache())
                    .policy(PolicyKind::HardwarePredictor {
                        threshold: *threshold,
                    })
                    .instructions(20_000)
                    .warmup(5_000)
                    .seed(*seed)
                    .build(),
            );
        }
        let quiet = RunnerOptions {
            quiet: true,
            workers: 2,
            canonical: true,
            ..RunnerOptions::default()
        };
        let scalar = run_plan(
            &plan,
            &RunnerOptions {
                lanes: 1,
                ..quiet.clone()
            },
        );
        let lanes = run_plan(&plan, &RunnerOptions { lanes: 4, ..quiet });
        assert_eq!(scalar.failures().count(), 0);
        assert_eq!(lanes.failures().count(), 0);
        let a: Vec<String> = scalar.rows.iter().map(|r| r.row_json()).collect();
        let b: Vec<String> = lanes.rows.iter().map(|r| r.row_json()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn panicking_point_is_isolated() {
        let plan = plan(6);
        let opts = RunnerOptions {
            workers: 3,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, |p| {
            if p.index == 4 {
                panic!("injected fault at {}", p.id);
            }
            fake_report(p)
        });
        assert_eq!(sweep.rows.len(), 6);
        assert_eq!(sweep.failures().count(), 1);
        assert_eq!(sweep.timeouts(), 0);
        let failed = &sweep.rows[4];
        assert!(!failed.is_ok());
        match &failed.outcome {
            Outcome::Failed { panic, attempts } => {
                assert!(panic.contains("injected fault at p4"), "{panic}");
                assert_eq!(*attempts, 1);
            }
            _ => unreachable!(),
        }
        assert!(sweep.reports().is_none());
        assert!(sweep.to_json().contains("\"status\":\"failed\""));
        assert!(
            failed.stable_json().contains("\"config_digest\":\""),
            "failed rows archive their config digest"
        );
    }

    #[test]
    fn retries_rerun_panicking_points() {
        let plan = plan(3);
        let opts = RunnerOptions {
            workers: 1,
            retries: 2,
            quiet: true,
            backoff_ms: 1, // keep the unit test fast
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, |p| {
            if p.index == 1 {
                panic!("always fails");
            }
            fake_report(p)
        });
        match &sweep.rows[1].outcome {
            Outcome::Failed { attempts, .. } => assert_eq!(*attempts, 3, "1 try + 2 retries"),
            _ => unreachable!(),
        }
        assert_eq!(sweep.rows[1].attempt_ms.len(), 3);
    }

    #[test]
    fn flag_parsing_splits_runner_options() {
        let args: Vec<String> = [
            "quick",
            "--workers=3",
            "--quiet",
            "--retries=1",
            "--out=tmp",
            "--telemetry",
            "--trace-out=tmp/traces",
            "--journal=tmp/unit.journal",
            "--deadline-ms=5000",
            "--backoff-ms=7",
            "--canonical",
            "--inject-faults=99",
            "--profile",
            "--resume-retry-failed",
            "--lanes=3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (opts, rest) = RunnerOptions::parse_flags(&args);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.retries, 1);
        assert!(opts.quiet);
        assert_eq!(opts.out_dir, std::path::PathBuf::from("tmp"));
        assert!(opts.telemetry);
        assert_eq!(opts.telemetry_dir(), std::path::PathBuf::from("tmp/traces"));
        assert_eq!(
            opts.journal,
            Some(std::path::PathBuf::from("tmp/unit.journal"))
        );
        assert_eq!(opts.resume, None);
        assert_eq!(opts.deadline_ms, Some(5_000));
        assert_eq!(opts.backoff_ms, 7);
        assert!(opts.canonical);
        assert_eq!(opts.fault_seed, Some(99));
        assert!(opts.profile);
        assert_eq!(opts.profile_dir(), std::path::PathBuf::from("tmp/profile"));
        assert!(opts.resume_retry_failed);
        assert_eq!(opts.lanes, 3);
        assert_eq!(rest, vec!["quick".to_string()]);
    }

    #[test]
    fn trace_out_implies_telemetry_and_defaults_under_out_dir() {
        let args: Vec<String> = vec!["--trace-out=x".to_string()];
        let (opts, _) = RunnerOptions::parse_flags(&args);
        assert!(opts.telemetry);
        let plain = RunnerOptions::default();
        assert!(!plain.telemetry);
        assert_eq!(
            plain.telemetry_dir(),
            std::path::PathBuf::from("results/telemetry")
        );
    }

    #[test]
    fn worker_profiles_account_for_every_row() {
        let plan = plan(8);
        let opts = RunnerOptions {
            workers: 2,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, fake_report);
        let profiles = sweep.worker_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles.iter().map(|p| p.points).sum::<usize>(), 8);
        for p in &profiles {
            assert!((0.0..=1.0).contains(&p.utilization));
            assert_eq!(p.retries, 0);
            assert_eq!(p.timeouts, 0);
        }
        assert!(sweep.idle_ms() >= 0.0);
        // Rows carry the timeline fields.
        assert!(sweep.rows.iter().all(|r| r.attempts == 1));
        assert!(sweep.rows.iter().all(|r| r.start_ms >= 0.0));
        assert!(sweep.to_json().contains("\"start_ms\":"));
        assert!(sweep.to_json().contains("\"attempts\":1"));
        assert!(sweep.to_json().contains("\"attempt_ms\":["));
    }

    #[test]
    fn sanitize_id_keeps_safe_chars_only() {
        assert_eq!(sanitize_id("0001/apache N=500"), "0001_apache_N_500");
        assert_eq!(sanitize_id("plain-id_0.1"), "plain-id_0.1");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        for retry in 1..=4u32 {
            let a = backoff_delay_ms(20, retry, 0xABCD);
            let b = backoff_delay_ms(20, retry, 0xABCD);
            assert_eq!(a, b, "same inputs, same delay");
            let nominal = 20u64 << (retry - 1);
            assert!(
                a >= nominal / 2 && a < nominal + nominal,
                "retry {retry}: delay {a} outside [{}, {})",
                nominal / 2,
                2 * nominal
            );
        }
        assert_eq!(backoff_delay_ms(0, 3, 1), 0, "backoff disabled");
        assert_eq!(backoff_delay_ms(25, 0, 1), 0, "no delay before attempt 1");
        assert!(backoff_delay_ms(1_000, 16, 1) < 3_000, "capped");
        assert_ne!(
            backoff_delay_ms(1_000, 1, 1),
            backoff_delay_ms(1_000, 1, 2),
            "jitter differs across seeds"
        );
    }

    #[test]
    fn canonical_mode_zeroes_wall_clock_fields() {
        let plan = plan(4);
        let opts = RunnerOptions {
            workers: 2,
            quiet: true,
            canonical: true,
            ..RunnerOptions::default()
        };
        let a = run_plan_with(&plan, &opts, fake_report);
        let b = run_plan_with(&plan, &opts, fake_report);
        assert_eq!(a.wall_ms, 0.0);
        assert_eq!(a.workers, 0, "canonical zeroes the worker count too");
        for row in &a.rows {
            assert_eq!(row.wall_ms, 0.0);
            assert_eq!(row.start_ms, 0.0);
            assert_eq!(row.worker, 0);
            assert!(row.attempt_ms.iter().all(|&ms| ms == 0.0));
        }
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "canonical archives are bytes-equal"
        );
    }

    #[test]
    fn prefilled_rows_are_served_not_evaluated() {
        let plan = plan(5);
        let opts = RunnerOptions {
            workers: 2,
            quiet: true,
            ..RunnerOptions::default()
        };
        // First run computes everything; its rows prefill a second run
        // with one hole left to evaluate.
        let first = run_plan_with(&plan, &opts, fake_report);
        let mut prefill: Vec<Option<PointResult>> =
            first.rows.iter().map(|r| Some(r.clone())).collect();
        prefill[2] = None;
        let seen: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        let evaluated = AtomicUsize::new(0);
        let cb = |row: &PointResult, served: bool| {
            seen.lock().unwrap().push((row.index, served));
        };
        let hooks = ExecHooks {
            prefill,
            on_point: Some(&cb),
        };
        let second = run_plan_ctx_hooked(&plan, &opts, hooks, |p, _ctx| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            fake_report(p)
        });
        assert_eq!(
            evaluated.load(Ordering::Relaxed),
            1,
            "only the unfilled point runs"
        );
        let a: Vec<String> = first.rows.iter().map(|r| r.stable_json()).collect();
        let b: Vec<String> = second.rows.iter().map(|r| r.stable_json()).collect();
        assert_eq!(a, b, "served rows are byte-identical to computed ones");
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, true), (1, true), (2, false), (3, true), (4, true)],
            "every point announced exactly once with its hit/miss flag"
        );
    }

    #[test]
    fn injected_faults_recover_with_enough_retries() {
        let plan = plan(6);
        let fault_cfg = FaultConfig {
            panic_pct: 100,
            max_panics: 1,
            delay_pct: 0,
            io_pct: 0,
            ..FaultConfig::default()
        };
        let fault_plan = FaultPlan::derive(plan.master_seed(), plan.len(), &fault_cfg);
        assert_eq!(fault_plan.max_panics(), 1);
        let clean = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 2,
                quiet: true,
                ..RunnerOptions::default()
            },
            fake_report,
        );
        let opts = RunnerOptions {
            workers: 2,
            retries: 1,
            quiet: true,
            backoff_ms: 1,
            fault_plan: Some(fault_plan),
            ..RunnerOptions::default()
        };
        let faulty = run_plan_with(&plan, &opts, fake_report);
        assert_eq!(faulty.failures().count(), 0, "every injected panic retried");
        assert!(faulty.rows.iter().all(|r| r.attempts == 2));
        assert!(faulty.injected_faults() >= 6);
        let a: Vec<String> = clean.rows.iter().map(|r| r.stable_json()).collect();
        let b: Vec<String> = faulty.rows.iter().map(|r| r.stable_json()).collect();
        assert_eq!(a, b, "fault recovery must not change any result");
    }

    #[test]
    fn exhausted_injected_faults_record_a_typed_failure() {
        let plan = plan(2);
        let fault_cfg = FaultConfig {
            panic_pct: 100,
            max_panics: 1,
            delay_pct: 0,
            io_pct: 0,
            ..FaultConfig::default()
        };
        let opts = RunnerOptions {
            workers: 1,
            quiet: true,
            fault_plan: Some(FaultPlan::derive(
                plan.master_seed(),
                plan.len(),
                &fault_cfg,
            )),
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, fake_report);
        assert_eq!(sweep.failures().count(), 2);
        for row in &sweep.rows {
            match &row.outcome {
                Outcome::Failed { panic, attempts } => {
                    assert!(panic.contains("fault-injected panic"), "{panic}");
                    assert_eq!(*attempts, 1);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn watchdog_times_out_hung_points() {
        let plan = plan(1);
        let opts = RunnerOptions {
            workers: 1,
            quiet: true,
            deadline_ms: Some(5),
            ..RunnerOptions::default()
        };
        let sweep = run_plan_ctx(&plan, &opts, |_p, ctx| {
            // A cooperative "hang": spin until the watchdog fires, then
            // unwind exactly as Simulation::account would.
            while !ctx.cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            std::panic::panic_any(Cancelled);
        });
        assert_eq!(sweep.timeouts(), 1);
        match &sweep.rows[0].outcome {
            Outcome::TimedOut {
                deadline_ms,
                attempts,
            } => {
                assert_eq!(*deadline_ms, 5);
                assert_eq!(*attempts, 1);
            }
            _ => unreachable!("expected a timeout, got {:?}", sweep.rows[0].outcome),
        }
        let json = sweep.rows[0].stable_json();
        assert!(json.contains("\"status\":\"timeout\""), "{json}");
        assert!(json.contains("\"deadline_ms\":5"), "{json}");
        assert_eq!(sweep.worker_profiles()[0].timeouts, 1);
        assert!(sweep.to_json().contains("\"timeouts\":1"));
    }
}
