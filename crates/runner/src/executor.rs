//! Parallel plan executor: scoped worker threads pulling points off a
//! shared index, with per-point panic isolation and optional retry.

use crate::plan::{ExperimentPlan, Point};
use crate::progress::Progress;
use crate::report::config_json;
use osoffload_system::{SimReport, Simulation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Knobs of a sweep execution.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads; `0` = one per available hardware thread, capped
    /// at the number of points.
    pub workers: usize,
    /// How many times a panicking point is re-evaluated before being
    /// recorded as failed.
    pub retries: u32,
    /// Suppresses the stderr progress reporter.
    pub quiet: bool,
    /// Directory the JSON results file is written into.
    pub out_dir: PathBuf,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            workers: 0,
            retries: 0,
            quiet: false,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl RunnerOptions {
    /// Splits recognised runner flags out of an argument list, returning
    /// the parsed options and the untouched remainder.
    ///
    /// Recognised: `--workers=N` (or `-jN`), `--retries=N`, `--quiet`,
    /// `--out=DIR`. Malformed values abort with a message on stderr.
    pub fn parse_flags(args: &[String]) -> (RunnerOptions, Vec<String>) {
        let mut opts = RunnerOptions::default();
        let mut rest = Vec::new();
        let parse_num = |flag: &str, v: &str| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {flag}: {v:?}");
                std::process::exit(2);
            })
        };
        for arg in args {
            if let Some(v) = arg.strip_prefix("--workers=") {
                opts.workers = parse_num("--workers", v);
            } else if let Some(v) = arg.strip_prefix("-j") {
                opts.workers = parse_num("-j", v);
            } else if let Some(v) = arg.strip_prefix("--retries=") {
                opts.retries = parse_num("--retries", v) as u32;
            } else if arg == "--quiet" {
                opts.quiet = true;
            } else if let Some(v) = arg.strip_prefix("--out=") {
                opts.out_dir = PathBuf::from(v);
            } else {
                rest.push(arg.clone());
            }
        }
        (opts, rest)
    }

    fn effective_workers(&self, points: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.clamp(1, points.max(1))
    }
}

/// What happened to one point.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The evaluation completed.
    Ok(Box<SimReport>),
    /// Every attempt panicked; the sweep carried on without it.
    Failed {
        /// The final panic's message.
        panic: String,
        /// Evaluations attempted (1 + retries).
        attempts: u32,
    },
}

/// One row of a sweep's results.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Plan-order index.
    pub index: usize,
    /// The point's identifier.
    pub id: String,
    /// The seed the run used.
    pub seed: u64,
    /// JSON rendering of the point's configuration (stable key order).
    pub config_json: String,
    /// Report or failure.
    pub outcome: Outcome,
    /// Wall-clock milliseconds the evaluation took (non-deterministic).
    pub wall_ms: f64,
    /// Which worker ran it (non-deterministic).
    pub worker: usize,
}

impl PointResult {
    /// Whether the point completed.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, Outcome::Ok(_))
    }

    /// The deterministic portion of the row as JSON: everything except
    /// `wall_ms` and `worker`. Two sweeps of the same plan agree on this
    /// string for every row, whatever their worker counts.
    pub fn stable_json(&self) -> String {
        let mut o = format!(
            "{{\"index\":{},\"id\":\"{}\",\"seed\":{},\"config\":{}",
            self.index,
            crate::report::json_escape(&self.id),
            self.seed,
            self.config_json
        );
        match &self.outcome {
            Outcome::Ok(r) => {
                o.push_str(",\"status\":\"ok\",\"report\":");
                o.push_str(&r.to_json());
            }
            Outcome::Failed { panic, attempts } => {
                o.push_str(&format!(
                    ",\"status\":\"failed\",\"panic\":\"{}\",\"attempts\":{}",
                    crate::report::json_escape(panic),
                    attempts
                ));
            }
        }
        o.push('}');
        o
    }

    /// The full row as JSON, adding the non-deterministic `wall_ms` and
    /// `worker` fields to [`stable_json`](Self::stable_json).
    pub fn row_json(&self) -> String {
        let stable = self.stable_json();
        format!(
            "{},\"wall_ms\":{:.3},\"worker\":{}}}",
            &stable[..stable.len() - 1],
            self.wall_ms,
            self.worker
        )
    }
}

/// The outcome of executing a whole plan.
#[derive(Debug)]
pub struct SweepResult {
    /// Plan name.
    pub name: String,
    /// Plan master seed.
    pub master_seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Per-point rows, in plan order.
    pub rows: Vec<PointResult>,
}

impl SweepResult {
    /// The rows whose evaluation failed.
    pub fn failures(&self) -> impl Iterator<Item = &PointResult> {
        self.rows.iter().filter(|r| !r.is_ok())
    }

    /// The reports in plan order, or `None` if any point failed.
    pub fn reports(&self) -> Option<Vec<&SimReport>> {
        self.rows
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Ok(rep) => Some(rep.as_ref()),
                Outcome::Failed { .. } => None,
            })
            .collect()
    }

    /// The whole sweep as one JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| r.row_json()).collect();
        format!(
            "{{\"experiment\":\"{}\",\"master_seed\":{},\"workers\":{},\"points\":{},\"failed\":{},\"wall_ms\":{:.3},\"rows\":[{}]}}",
            crate::report::json_escape(&self.name),
            self.master_seed,
            self.workers,
            self.rows.len(),
            self.failures().count(),
            self.wall_ms,
            rows.join(",")
        )
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes `plan` with the default evaluator (simulate the point's
/// configuration).
pub fn run_plan(plan: &ExperimentPlan, opts: &RunnerOptions) -> SweepResult {
    run_plan_with(plan, opts, |p| Simulation::new(p.config.clone()).run())
}

/// Executes `plan` with a caller-supplied evaluator.
///
/// Points are claimed from a shared atomic index by `opts.workers`
/// scoped threads. A panicking evaluation is caught, retried up to
/// `opts.retries` times, and finally recorded as
/// [`Outcome::Failed`] — one bad point never aborts the sweep. Rows
/// come back in plan order.
pub fn run_plan_with(
    plan: &ExperimentPlan,
    opts: &RunnerOptions,
    eval: impl Fn(&Point) -> SimReport + Sync,
) -> SweepResult {
    let points = plan.points();
    let n = points.len();
    let workers = opts.effective_workers(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let progress = Progress::new(plan.name(), n, opts.quiet);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let slots = &slots;
            let progress = &progress;
            let eval = &eval;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let point = &points[i];
                let point_start = Instant::now();
                let mut attempts = 0u32;
                let outcome = loop {
                    attempts += 1;
                    match catch_unwind(AssertUnwindSafe(|| eval(point))) {
                        Ok(report) => break Outcome::Ok(Box::new(report)),
                        Err(payload) => {
                            if attempts > opts.retries {
                                break Outcome::Failed {
                                    panic: panic_message(payload),
                                    attempts,
                                };
                            }
                        }
                    }
                };
                let result = PointResult {
                    index: i,
                    id: point.id.clone(),
                    seed: point.config.seed,
                    config_json: config_json(&point.config),
                    outcome,
                    wall_ms: point_start.elapsed().as_secs_f64() * 1e3,
                    worker,
                };
                let ok = result.is_ok();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
                progress.point_done(&point.id, ok);
            });
        }
    });

    SweepResult {
        name: plan.name().to_string(),
        master_seed: plan.master_seed(),
        workers,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        rows: slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed point stores a result")
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExperimentPlan;
    use osoffload_system::{PolicyKind, SystemConfig};
    use osoffload_workload::Profile;

    fn plan(n: usize) -> ExperimentPlan {
        let mut plan = ExperimentPlan::new("unit", 9);
        for i in 0..n {
            plan.push(
                format!("p{i}"),
                SystemConfig::builder()
                    .profile(Profile::apache())
                    .policy(PolicyKind::AlwaysOffload)
                    .instructions(1_000)
                    .build(),
            );
        }
        plan
    }

    /// A cheap deterministic pseudo-report: the fields under test are a
    /// function of the point's seed only.
    fn fake_report(point: &crate::plan::Point) -> SimReport {
        let mut r = crate::driver::placeholder_report();
        r.profile = point.config.profile.name.to_string();
        r.instructions = point.config.seed;
        r.throughput = (point.config.seed % 1_000) as f64 / 1_000.0 + 1.0;
        r
    }

    #[test]
    fn rows_are_identical_across_worker_counts() {
        let plan = plan(12);
        let quiet = RunnerOptions {
            quiet: true,
            ..RunnerOptions::default()
        };
        let one = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 1,
                ..quiet.clone()
            },
            fake_report,
        );
        let four = run_plan_with(
            &plan,
            &RunnerOptions {
                workers: 4,
                ..quiet
            },
            fake_report,
        );
        assert_eq!(one.workers, 1);
        assert_eq!(four.workers, 4);
        let a: Vec<String> = one.rows.iter().map(|r| r.stable_json()).collect();
        let b: Vec<String> = four.rows.iter().map(|r| r.stable_json()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn panicking_point_is_isolated() {
        let plan = plan(6);
        let opts = RunnerOptions {
            workers: 3,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, |p| {
            if p.index == 4 {
                panic!("injected fault at {}", p.id);
            }
            fake_report(p)
        });
        assert_eq!(sweep.rows.len(), 6);
        assert_eq!(sweep.failures().count(), 1);
        let failed = &sweep.rows[4];
        assert!(!failed.is_ok());
        match &failed.outcome {
            Outcome::Failed { panic, attempts } => {
                assert!(panic.contains("injected fault at p4"), "{panic}");
                assert_eq!(*attempts, 1);
            }
            Outcome::Ok(_) => unreachable!(),
        }
        assert!(sweep.reports().is_none());
        assert!(sweep.to_json().contains("\"status\":\"failed\""));
    }

    #[test]
    fn retries_rerun_panicking_points() {
        let plan = plan(3);
        let opts = RunnerOptions {
            workers: 1,
            retries: 2,
            quiet: true,
            ..RunnerOptions::default()
        };
        let sweep = run_plan_with(&plan, &opts, |p| {
            if p.index == 1 {
                panic!("always fails");
            }
            fake_report(p)
        });
        match &sweep.rows[1].outcome {
            Outcome::Failed { attempts, .. } => assert_eq!(*attempts, 3, "1 try + 2 retries"),
            Outcome::Ok(_) => unreachable!(),
        }
    }

    #[test]
    fn flag_parsing_splits_runner_options() {
        let args: Vec<String> = [
            "quick",
            "--workers=3",
            "--quiet",
            "--retries=1",
            "--out=tmp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (opts, rest) = RunnerOptions::parse_flags(&args);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.retries, 1);
        assert!(opts.quiet);
        assert_eq!(opts.out_dir, std::path::PathBuf::from("tmp"));
        assert_eq!(rest, vec!["quick".to_string()]);
    }
}
