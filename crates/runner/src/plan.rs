//! Experiment plans: an ordered, named list of simulation points whose
//! seeds are fixed at construction time.
//!
//! Because every seed is decided *when the point is pushed* — either
//! pinned by the caller or derived from the plan's master seed via the
//! shared [`SeedSequence`] in plan order — the results of executing a
//! plan are bit-identical regardless of how many workers run it or in
//! which order they pick up points. The fuzzer derives its per-case
//! seeds through the same `SeedSequence`, so a fuzz case index is as
//! reproducible as a plan point index.

use osoffload_sim::SeedSequence;
use osoffload_system::SystemConfig;

/// One named simulation point of a plan.
#[derive(Debug, Clone)]
pub struct Point {
    /// Position in plan order (also the row index in the results file).
    pub index: usize,
    /// Stable human-readable identifier, unique within the plan.
    pub id: String,
    /// The fully specified run, including its seed.
    pub config: SystemConfig,
}

/// An ordered collection of [`Point`]s to execute.
#[derive(Debug)]
pub struct ExperimentPlan {
    name: String,
    master_seed: u64,
    seeder: SeedSequence,
    points: Vec<Point>,
}

impl ExperimentPlan {
    /// Creates an empty plan. `master_seed` feeds the per-point seed
    /// derivation of [`push`](Self::push) and
    /// [`push_replicas`](Self::push_replicas).
    pub fn new(name: impl Into<String>, master_seed: u64) -> Self {
        ExperimentPlan {
            name: name.into(),
            master_seed,
            seeder: SeedSequence::new(master_seed),
            points: Vec::new(),
        }
    }

    /// The plan's name (used for the results file).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The master seed the derived per-point seeds descend from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Adds a point whose seed is derived from the master seed: the
    /// plan's seeder is split once per push, so the seed depends only on
    /// the master seed and the point's position in plan order.
    ///
    /// Returns the point's index.
    pub fn push(&mut self, id: impl Into<String>, mut config: SystemConfig) -> usize {
        config.seed = self.seeder.next_seed();
        self.push_pinned(id, config)
    }

    /// Adds a point keeping the seed already in `config` — used when
    /// points must share a workload stream (e.g. a treatment run paired
    /// with its baseline).
    ///
    /// Returns the point's index.
    pub fn push_pinned(&mut self, id: impl Into<String>, config: SystemConfig) -> usize {
        let index = self.points.len();
        self.points.push(Point {
            index,
            id: id.into(),
            config,
        });
        index
    }

    /// Adds `n` seed-replicas of `config` (ids `id#r0 … id#r{n-1}`),
    /// each with an independent split-derived seed — the seed dimension
    /// of a sweep grid.
    ///
    /// Returns the indices of the new points.
    pub fn push_replicas(
        &mut self,
        id: impl Into<String>,
        config: &SystemConfig,
        n: usize,
    ) -> Vec<usize> {
        let id = id.into();
        (0..n)
            .map(|r| self.push(format!("{id}#r{r}"), config.clone()))
            .collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points in plan order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_system::PolicyKind;
    use osoffload_workload::Profile;

    fn cfg(seed: u64) -> SystemConfig {
        SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .instructions(10_000)
            .seed(seed)
            .build()
    }

    #[test]
    fn derived_seeds_depend_only_on_master_and_position() {
        let build = || {
            let mut plan = ExperimentPlan::new("t", 42);
            for i in 0..8 {
                plan.push(format!("p{i}"), cfg(0));
            }
            plan.points()
                .iter()
                .map(|p| p.config.seed)
                .collect::<Vec<_>>()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same master seed must derive the same point seeds");
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), a.len(), "derived seeds must be distinct");

        let mut other = ExperimentPlan::new("t", 43);
        other.push("p0", cfg(0));
        assert_ne!(other.points()[0].config.seed, a[0]);
    }

    #[test]
    fn pinned_points_keep_their_seed() {
        let mut plan = ExperimentPlan::new("t", 42);
        plan.push_pinned("pinned", cfg(0xABCD));
        assert_eq!(plan.points()[0].config.seed, 0xABCD);
    }

    #[test]
    fn replicas_get_distinct_seeds_and_ids() {
        let mut plan = ExperimentPlan::new("t", 7);
        let idx = plan.push_replicas("sweep", &cfg(0), 4);
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert_eq!(plan.points()[3].id, "sweep#r3");
        let seeds: std::collections::HashSet<u64> =
            plan.points().iter().map(|p| p.config.seed).collect();
        assert_eq!(seeds.len(), 4);
    }
}
