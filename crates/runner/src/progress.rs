//! Stderr progress reporting for a running sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Shared progress state; workers call [`point_done`](Self::point_done)
/// as they finish points.
pub(crate) struct Progress {
    name: String,
    total: usize,
    done: AtomicUsize,
    failed: AtomicUsize,
    start: Instant,
    quiet: bool,
}

impl Progress {
    pub(crate) fn new(name: &str, total: usize, quiet: bool) -> Self {
        Progress {
            name: name.to_string(),
            total,
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            start: Instant::now(),
            quiet,
        }
    }

    /// Accounts for points restored from a results journal without
    /// printing per-point lines (the executor prints one resume summary
    /// instead).
    pub(crate) fn skip(&self, ok: usize, failed: usize) {
        self.done.fetch_add(ok + failed, Ordering::Relaxed);
        self.failed.fetch_add(failed, Ordering::Relaxed);
    }

    /// Records one finished point and prints a progress line:
    /// points done/total, throughput, ETA, and the point that finished.
    pub(crate) fn point_done(&self, id: &str, ok: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let failed = if ok {
            self.failed.load(Ordering::Relaxed)
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed) + 1
        };
        if self.quiet {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let eta = (self.total.saturating_sub(done)) as f64 / rate.max(1e-9);
        let fail_note = if failed > 0 {
            format!(" · {failed} failed")
        } else {
            String::new()
        };
        let status = if ok { "done" } else { "FAILED" };
        eprintln!(
            "[{}] {}/{} points ({:.0}%) · {:.2} pt/s · ETA {:.1}s{} · {} {}",
            self.name,
            done,
            self.total,
            done as f64 * 100.0 / self.total.max(1) as f64,
            rate,
            eta,
            fail_note,
            id,
            status
        );
    }
}
