//! Deterministic fault injection for campaign robustness testing.
//!
//! A [`FaultPlan`] is derived from a master seed with the same
//! [`SeedSequence`] splitting the experiment plan and the fuzzer use:
//! one sub-seed per point, each expanded into that point's injected
//! faults. The plan is a pure function of `(master_seed, point count,
//! FaultConfig)`, so a campaign's entire failure schedule — which
//! points panic on which attempts, which hang, which journal writes
//! error — replays bit-for-bit from the seed alone.
//!
//! Three fault kinds are modelled, mirroring the ways a real campaign
//! dies: evaluation **panics** (crashing points), artificial **delays**
//! (hung points, which trip the worker watchdog when a deadline is
//! set), and **I/O write errors** on the results journal.

use osoffload_sim::{Rng64, SeedSequence};

/// Injection rates and magnitudes for [`FaultPlan::derive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Percent of points whose early attempts panic.
    pub panic_pct: u32,
    /// Maximum consecutive panicking attempts per faulty point
    /// (`retries >= max_panics` makes every injected panic recoverable).
    pub max_panics: u32,
    /// Percent of points delayed before their first attempt.
    pub delay_pct: u32,
    /// Maximum injected delay in milliseconds.
    pub max_delay_ms: u64,
    /// Percent of points whose journal append errors before succeeding.
    pub io_pct: u32,
    /// Maximum consecutive injected journal-write errors per point.
    pub max_io_failures: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            panic_pct: 25,
            max_panics: 2,
            delay_pct: 15,
            max_delay_ms: 10,
            io_pct: 15,
            max_io_failures: 2,
        }
    }
}

/// The faults injected into one point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointFaults {
    /// Attempts 1..=n that panic (always a consecutive prefix, so a
    /// sufficient retry budget recovers the point deterministically).
    pub panics: u32,
    /// Delay injected before the first attempt, in milliseconds.
    pub delay_ms: Option<u64>,
    /// Journal appends that fail before one succeeds.
    pub io_failures: u32,
}

impl PointFaults {
    /// Total injections this point receives.
    pub fn injected(&self) -> u32 {
        self.panics + u32::from(self.delay_ms.is_some()) + self.io_failures
    }
}

/// A replayable schedule of injected faults for one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<PointFaults>,
}

impl FaultPlan {
    /// Derives the plan for `n_points` from `master_seed`: one
    /// [`SeedSequence`] split per point, expanded under `cfg`'s rates.
    /// Pure — the same inputs always produce the same plan.
    pub fn derive(master_seed: u64, n_points: usize, cfg: &FaultConfig) -> FaultPlan {
        let mut seq = SeedSequence::new(master_seed);
        let pct = |rng: &mut Rng64, p: u32| rng.next_u64() % 100 < u64::from(p);
        let points = (0..n_points)
            .map(|_| {
                let mut rng = Rng64::seed_from(seq.next_seed());
                let mut f = PointFaults::default();
                if pct(&mut rng, cfg.panic_pct) {
                    f.panics = 1 + (rng.next_u64() % u64::from(cfg.max_panics.max(1))) as u32;
                }
                if pct(&mut rng, cfg.delay_pct) {
                    f.delay_ms = Some(1 + rng.next_u64() % cfg.max_delay_ms.max(1));
                }
                if pct(&mut rng, cfg.io_pct) {
                    f.io_failures =
                        1 + (rng.next_u64() % u64::from(cfg.max_io_failures.max(1))) as u32;
                }
                f
            })
            .collect();
        FaultPlan {
            seed: master_seed,
            points,
        }
    }

    /// The master seed the plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan covers no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The faults for `point` (out-of-range points get no faults).
    pub fn point(&self, point: usize) -> PointFaults {
        self.points.get(point).cloned().unwrap_or_default()
    }

    /// Whether `attempt` (1-based) of `point` is scheduled to panic.
    pub fn panics_at(&self, point: usize, attempt: u32) -> bool {
        self.points.get(point).is_some_and(|f| attempt <= f.panics)
    }

    /// The largest panic streak any point carries — the retry budget
    /// needed to make the whole plan recoverable.
    pub fn max_panics(&self) -> u32 {
        self.points.iter().map(|f| f.panics).max().unwrap_or(0)
    }

    /// Total injections across the plan.
    pub fn injected_total(&self) -> u32 {
        self.points.iter().map(PointFaults::injected).sum()
    }

    /// Compact deterministic rendering of the schedule, for logs:
    /// `point→panics/delay/io` triples for every faulty point.
    pub fn describe(&self) -> String {
        let faulty: Vec<String> = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, f)| f.injected() > 0)
            .map(|(i, f)| {
                format!(
                    "{i}:p{}d{}i{}",
                    f.panics,
                    f.delay_ms.unwrap_or(0),
                    f.io_failures
                )
            })
            .collect();
        format!(
            "fault-plan seed={} points={} injected={} [{}]",
            self.seed,
            self.points.len(),
            self.injected_total(),
            faulty.join(" ")
        )
    }
}

/// The panic payload of an injected panic, so the runner's quiet panic
/// hook can tell scheduled faults from genuine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// Plan-order point index.
    pub point: usize,
    /// The attempt (1-based) the panic fired on.
    pub attempt: u32,
}

impl InjectedPanic {
    /// The deterministic failure message recorded if the point exhausts
    /// its retries.
    pub fn message(&self) -> String {
        format!(
            "fault-injected panic (point {}, attempt {})",
            self.point, self.attempt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_a_pure_function_of_the_seed() {
        let cfg = FaultConfig::default();
        let a = FaultPlan::derive(0xFEED, 64, &cfg);
        let b = FaultPlan::derive(0xFEED, 64, &cfg);
        assert_eq!(a, b, "same seed must replay the identical schedule");
        let c = FaultPlan::derive(0xFEED + 1, 64, &cfg);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn a_prefix_of_a_longer_plan_is_unchanged() {
        // Point k's faults depend only on the master seed and k, so
        // growing a plan never reshuffles existing points.
        let cfg = FaultConfig::default();
        let short = FaultPlan::derive(7, 8, &cfg);
        let long = FaultPlan::derive(7, 32, &cfg);
        for i in 0..8 {
            assert_eq!(short.point(i), long.point(i));
        }
    }

    #[test]
    fn default_rates_inject_every_fault_kind() {
        let plan = FaultPlan::derive(3, 256, &FaultConfig::default());
        assert!(plan.points.iter().any(|f| f.panics > 0), "panics");
        assert!(plan.points.iter().any(|f| f.delay_ms.is_some()), "delays");
        assert!(plan.points.iter().any(|f| f.io_failures > 0), "io errors");
        assert!(
            plan.points.iter().any(|f| f.injected() == 0),
            "clean points"
        );
        assert!(plan.max_panics() >= 1 && plan.max_panics() <= 2);
        assert!(plan.injected_total() > 0);
    }

    #[test]
    fn panics_at_is_a_consecutive_prefix() {
        let plan = FaultPlan::derive(11, 128, &FaultConfig::default());
        for i in 0..plan.len() {
            let f = plan.point(i);
            for attempt in 1..=4 {
                assert_eq!(plan.panics_at(i, attempt), attempt <= f.panics);
            }
        }
        assert!(!plan.panics_at(9_999, 1), "out of range never panics");
    }

    #[test]
    fn describe_is_deterministic_and_mentions_the_seed() {
        let cfg = FaultConfig::default();
        let a = FaultPlan::derive(42, 16, &cfg).describe();
        let b = FaultPlan::derive(42, 16, &cfg).describe();
        assert_eq!(a, b);
        assert!(a.contains("seed=42"), "{a}");
    }
}
