//! Deterministic parallel experiment harness.
//!
//! The experiment drivers in [`osoffload_system::experiments`] simulate
//! dozens of independent design points per figure; this crate runs them
//! concurrently without giving up reproducibility:
//!
//! - [`ExperimentPlan`] — an ordered list of [`SystemConfig`] points
//!   (grids of policy × threshold × latency × profile × seed) whose
//!   seeds are fixed at plan-construction time, either pinned by the
//!   caller or derived from a master seed via
//!   [`Rng64::split`](osoffload_sim::Rng64::split) in plan order.
//!   Execution order therefore cannot influence any result.
//! - [`run_plan`] / [`run_plan_with`] / [`run_plan_ctx`] — a pool of
//!   scoped worker threads claiming points from a shared atomic index,
//!   with per-point panic isolation (a failed point is recorded with
//!   its configuration and panic message; the sweep always completes),
//!   retry with exponential backoff and deterministic jitter, and
//!   optional per-point watchdog deadlines ([`Outcome::TimedOut`]).
//! - [`run_driver`] — record/replay bridge that executes an unmodified
//!   `*_with` experiment driver in parallel and returns exactly the
//!   rows the sequential path would produce.
//! - [`report`] — schema-stable JSON results written atomically into
//!   `results/`; rows are bit-identical across worker counts except for
//!   the explicitly non-deterministic timing/worker fields.
//! - [`journal`] — a write-ahead results journal: every completed point
//!   is an fsynced, checksummed line, and `--resume` restores journaled
//!   points verbatim so an interrupted campaign finishes with a final
//!   archive byte-identical to an uninterrupted one.
//! - [`fault`] — deterministic fault injection ([`FaultPlan`]): panics,
//!   delays, and journal I/O errors scheduled purely from a seed, for
//!   chaos-testing the recovery machinery itself (see `ROBUSTNESS.md`).
//!
//! ```
//! use osoffload_runner::{run_driver, RunnerOptions};
//! use osoffload_system::experiments::{self, Scale};
//!
//! let scale = Scale { instructions: 30_000, warmup: 10_000, seed: 1, compute_profiles: 1 };
//! let opts = RunnerOptions { workers: 2, quiet: true, ..RunnerOptions::default() };
//! let (rows, sweep) = run_driver("doc-fig4", scale.seed, &opts, |ev| {
//!     experiments::fig4_grid_with(scale, &[1_000], &[500], ev)
//! });
//! assert!(sweep.failures().next().is_none());
//! assert_eq!(rows.expect("no failures").len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod executor;
pub mod fault;
pub mod journal;
pub mod jsonv;
mod lane_exec;
pub mod plan;
mod progress;
pub mod report;

pub use driver::{record_plan, run_driver};
pub use executor::{
    backoff_delay_ms, run_plan, run_plan_ctx, run_plan_ctx_hooked, run_plan_hooked, run_plan_with,
    EvalCtx, ExecHooks, Outcome, PointResult, RunnerOptions, SweepResult, WorkerProfile,
};
pub use fault::{FaultConfig, FaultPlan, InjectedPanic, PointFaults};
pub use journal::{
    fnv1a64, scan_envelope_lines, Journal, JournalHeader, LoadedJournal, ScanIssue, ScanMode,
};
pub use plan::{ExperimentPlan, Point};

// Re-exported so downstream callers name configs without an extra
// dependency edge.
pub use osoffload_system::SystemConfig;
