//! JSON results files under `results/`.
//!
//! One sweep produces one file, `<out_dir>/<plan name>.json`, holding
//! sweep metadata plus one row per point. Row schema (stable key
//! order):
//!
//! ```json
//! {"index":0,"id":"…","seed":123,"config":{…},"status":"ok",
//!  "report":{…SimReport…},"wall_ms":12.3,"start_ms":0.1,"worker":2,
//!  "attempts":1,"injected_faults":0,"attempt_ms":[12.3]}
//! ```
//!
//! Failed points carry `"status":"failed"`, a `"panic"` message, an
//! `"attempts"` count and a `"config_digest"` instead of `"report"`;
//! watchdog-cancelled points carry `"status":"timeout"` with their
//! `"deadline_ms"`. The wall-clock timings and worker assignment are
//! the only non-deterministic fields; everything before `"wall_ms"` is
//! bit-identical across worker counts (and `--canonical` zeroes the
//! rest).
//!
//! Every file in this module is written through
//! [`osoffload_obs::atomic_write`] — temp file, fsync, atomic rename —
//! so a crash mid-write can never leave a half-written archive where a
//! previous good one stood.

use crate::executor::{Outcome, SweepResult};
use osoffload_obs::{atomic_write, chrome_trace, Event, EventKind, Track};
use osoffload_system::{CycleProfile, SystemConfig};
use std::io;
use std::path::{Path, PathBuf};

/// Minimal JSON string escaping.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`SystemConfig`] as a JSON object with a stable key order.
///
/// The emitter is hand-rolled like
/// [`SimReport::to_json`](osoffload_system::SimReport::to_json): the
/// approved dependency set has no serialisation framework.
pub fn config_json(cfg: &SystemConfig) -> String {
    format!(
        "{{\"profile\":\"{}\",\"policy\":\"{}\",\"mechanism\":\"{:?}\",\"migration_one_way\":{},\
         \"user_cores\":{},\"os_core_contexts\":{},\"os_core_slowdown_milli\":{},\
         \"resource_adaptation\":{},\"instructions\":{},\"warmup\":{},\"seed\":{},\
         \"tuner\":{},\"mem_override\":{},\"phases\":{}}}",
        json_escape(cfg.profile.name),
        json_escape(&cfg.policy.to_string()),
        cfg.mechanism,
        cfg.migration.one_way().as_u64(),
        cfg.user_cores,
        cfg.os_core_contexts,
        cfg.os_core_slowdown_milli,
        cfg.resource_adaptation
            .map_or("null".to_string(), |m| m.to_string()),
        cfg.instructions,
        cfg.warmup,
        cfg.seed,
        cfg.tuner.is_some(),
        cfg.mem_override.is_some(),
        cfg.phases.len()
    )
}

/// Writes a sweep's results to `<dir>/<plan name>.json` atomically
/// (temp file + rename), creating the directory if needed. Returns the
/// file's path.
pub fn write_sweep(sweep: &SweepResult, dir: &Path) -> io::Result<PathBuf> {
    let path = dir.join(format!("{}.json", sweep.name));
    atomic_write(&path, sweep.to_json().as_bytes())?;
    Ok(path)
}

/// Writes a point's cycle-attribution profile (both files atomic):
///
/// - `<base>.collapsed` — folded stacks (`syscall;phase cycles`),
///   directly consumable by flamegraph tooling;
/// - `<base>.attribution.txt` — the top-20 attribution table.
pub fn write_profile(profile: &CycleProfile, dir: &Path, base: &str) -> io::Result<Vec<PathBuf>> {
    let collapsed = dir.join(format!("{base}.collapsed"));
    atomic_write(&collapsed, profile.to_collapsed().as_bytes())?;
    let table = dir.join(format!("{base}.attribution.txt"));
    atomic_write(&table, profile.top_table(20).as_bytes())?;
    Ok(vec![collapsed, table])
}

/// Writes the runner's self-profiling telemetry for a sweep.
///
/// Produces two files in `dir` (both written atomically):
///
/// - `<name>_runner.trace.json` — a Chrome trace of the worker
///   timeline: one complete span per point on its worker's track, with
///   wall-clock microseconds since sweep start as timestamps, plus
///   retry/timeout/fault instants on the control track. Load it in
///   Perfetto / `chrome://tracing` to see scheduling, queue gaps,
///   stragglers and recovery activity.
/// - `<name>_runner.json` — a utilisation summary: sweep wall time,
///   idle worker-milliseconds, retry/timeout/fault counts and one row
///   per worker.
pub fn write_runner_telemetry(sweep: &SweepResult, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut events: Vec<Event> = Vec::with_capacity(sweep.rows.len());
    for row in &sweep.rows {
        let start_us = (row.start_ms * 1_000.0) as u64;
        events.push(Event {
            ts: start_us,
            dur: (row.wall_ms * 1_000.0).max(1.0) as u64,
            track: Track::Worker(row.worker),
            kind: EventKind::Task {
                name: row.id.clone(),
                ok: row.is_ok(),
            },
        });
        // Control-track instants: one per retried attempt, one per
        // watchdog timeout, one per fault-plan-touched point.
        let mut elapsed_ms = 0.0;
        for attempt in 1..row.attempts {
            elapsed_ms += row
                .attempt_ms
                .get(attempt as usize - 1)
                .copied()
                .unwrap_or(0.0);
            events.push(Event {
                ts: start_us + (elapsed_ms * 1_000.0) as u64,
                dur: 0,
                track: Track::Control,
                kind: EventKind::Retry { attempt },
            });
        }
        if let Outcome::TimedOut { deadline_ms, .. } = row.outcome {
            events.push(Event {
                ts: start_us + (row.wall_ms * 1_000.0) as u64,
                dur: 0,
                track: Track::Control,
                kind: EventKind::Timeout { deadline_ms },
            });
        }
        if row.injected_faults > 0 {
            events.push(Event {
                ts: start_us,
                dur: 0,
                track: Track::Control,
                kind: EventKind::Fault {
                    injected: row.injected_faults,
                },
            });
        }
    }
    let meta = [
        ("experiment".to_string(), sweep.name.clone()),
        ("workers".to_string(), sweep.workers.to_string()),
        ("wall_ms".to_string(), format!("{:.3}", sweep.wall_ms)),
    ];
    let trace_path = dir.join(format!("{}_runner.trace.json", sweep.name));
    atomic_write(&trace_path, chrome_trace(&events, None, &meta).as_bytes())?;

    let profiles = sweep.worker_profiles();
    let retries: u64 = profiles.iter().map(|p| p.retries).sum();
    let profile_rows: Vec<String> = profiles
        .iter()
        .map(|p| {
            format!(
                "{{\"worker\":{},\"points\":{},\"busy_ms\":{:.3},\"retries\":{},\"timeouts\":{},\"utilization\":{:.4}}}",
                p.worker, p.points, p.busy_ms, p.retries, p.timeouts, p.utilization
            )
        })
        .collect();
    let json_path = dir.join(format!("{}_runner.json", sweep.name));
    atomic_write(
        &json_path,
        format!(
            "{{\"experiment\":\"{}\",\"workers\":{},\"points\":{},\"failed\":{},\"timeouts\":{},\
             \"injected_faults\":{},\"wall_ms\":{:.3},\"idle_ms\":{:.3},\"retries\":{},\
             \"worker_profiles\":[{}]}}",
            json_escape(&sweep.name),
            sweep.workers,
            sweep.rows.len(),
            sweep.failures().count(),
            sweep.timeouts(),
            sweep.injected_faults(),
            sweep.wall_ms,
            sweep.idle_ms(),
            retries,
            profile_rows.join(",")
        )
        .as_bytes(),
    )?;
    Ok(vec![trace_path, json_path])
}

/// Writes a static (no-simulation) table to `<dir>/<name>.json` (atomic
/// temp-file + rename) with the same envelope as a sweep, so every
/// experiment binary archives machine-readable results in one place.
pub fn write_static_table(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
    dir: &Path,
) -> io::Result<PathBuf> {
    let headers: Vec<String> = headers
        .iter()
        .map(|h| format!("\"{}\"", json_escape(h)))
        .collect();
    let rows: Vec<String> = rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let path = dir.join(format!("{name}.json"));
    atomic_write(
        &path,
        format!(
            "{{\"experiment\":\"{}\",\"kind\":\"static\",\"headers\":[{}],\"rows\":[{}]}}",
            json_escape(name),
            headers.join(","),
            rows.join(",")
        )
        .as_bytes(),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_system::PolicyKind;
    use osoffload_workload::Profile;
    use std::fs;

    #[test]
    fn config_json_is_flat_and_stable() {
        let cfg = SystemConfig::builder()
            .profile(Profile::derby())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .migration_latency(1_000)
            .instructions(50_000)
            .seed(11)
            .build();
        let j = config_json(&cfg);
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"profile\":\"derby\"",
            "\"policy\":\"HI (N=500)\"",
            "\"mechanism\":\"ThreadMigration\"",
            "\"migration_one_way\":1000",
            "\"seed\":11",
            "\"tuner\":false",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn runner_telemetry_writes_trace_and_summary() {
        use crate::executor::{Outcome, PointResult};
        let row = |index: usize, worker: usize, start_ms: f64| PointResult {
            index,
            id: format!("p{index}"),
            seed: index as u64,
            config_json: "{}".to_string(),
            outcome: Outcome::Failed {
                panic: "synthetic".to_string(),
                attempts: 2,
            },
            wall_ms: 5.0,
            start_ms,
            worker,
            attempts: 2,
            attempt_ms: vec![2.5, 2.5],
            injected_faults: 1,
            restored: None,
        };
        let mut timed_out = row(2, 0, 6.0);
        timed_out.outcome = Outcome::TimedOut {
            deadline_ms: 4,
            attempts: 2,
        };
        let sweep = SweepResult {
            name: "unit".to_string(),
            master_seed: 1,
            workers: 2,
            wall_ms: 12.0,
            rows: vec![row(0, 0, 0.0), row(1, 1, 1.0), timed_out],
        };
        let dir = std::env::temp_dir().join(format!("osoff-runner-telem-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let paths = write_runner_telemetry(&sweep, &dir).expect("write telemetry");
        assert_eq!(paths.len(), 2);
        let trace = fs::read_to_string(&paths[0]).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"worker 0\""));
        assert!(trace.contains("\"p2\""));
        assert!(trace.contains("\"retry\""), "retries on the control track");
        assert!(trace.contains("\"deadline_ms\":4"), "timeout instant");
        assert!(trace.contains("\"fault\""), "fault instants");
        let summary = fs::read_to_string(&paths[1]).unwrap();
        assert!(summary.contains("\"experiment\":\"unit\""));
        assert!(summary.contains("\"workers\":2"));
        assert!(summary.contains("\"retries\":3"));
        assert!(summary.contains("\"timeouts\":1"));
        assert!(summary.contains("\"injected_faults\":3"));
        assert!(summary.contains("\"worker_profiles\":[{"));
        fs::remove_dir_all(&dir).ok();
    }
}
