//! JSON results files under `results/`.
//!
//! One sweep produces one file, `<out_dir>/<plan name>.json`, holding
//! sweep metadata plus one row per point. Row schema (stable key
//! order):
//!
//! ```json
//! {"index":0,"id":"…","seed":123,"config":{…},"status":"ok",
//!  "report":{…SimReport…},"wall_ms":12.3,"worker":2}
//! ```
//!
//! Failed points carry `"status":"failed"`, a `"panic"` message and an
//! `"attempts"` count instead of `"report"`. `wall_ms` and `worker` are
//! the only non-deterministic fields; everything before them is
//! bit-identical across worker counts.

use crate::executor::SweepResult;
use osoffload_system::SystemConfig;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Minimal JSON string escaping.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`SystemConfig`] as a JSON object with a stable key order.
///
/// The emitter is hand-rolled like
/// [`SimReport::to_json`](osoffload_system::SimReport::to_json): the
/// approved dependency set has no serialisation framework.
pub fn config_json(cfg: &SystemConfig) -> String {
    format!(
        "{{\"profile\":\"{}\",\"policy\":\"{}\",\"mechanism\":\"{:?}\",\"migration_one_way\":{},\
         \"user_cores\":{},\"os_core_contexts\":{},\"os_core_slowdown_milli\":{},\
         \"resource_adaptation\":{},\"instructions\":{},\"warmup\":{},\"seed\":{},\
         \"tuner\":{},\"mem_override\":{},\"phases\":{}}}",
        json_escape(cfg.profile.name),
        json_escape(&cfg.policy.to_string()),
        cfg.mechanism,
        cfg.migration.one_way().as_u64(),
        cfg.user_cores,
        cfg.os_core_contexts,
        cfg.os_core_slowdown_milli,
        cfg.resource_adaptation
            .map_or("null".to_string(), |m| m.to_string()),
        cfg.instructions,
        cfg.warmup,
        cfg.seed,
        cfg.tuner.is_some(),
        cfg.mem_override.is_some(),
        cfg.phases.len()
    )
}

/// Writes a sweep's results to `<dir>/<plan name>.json`, creating the
/// directory if needed. Returns the file's path.
pub fn write_sweep(sweep: &SweepResult, dir: &Path) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", sweep.name));
    fs::write(&path, sweep.to_json())?;
    Ok(path)
}

/// Writes a static (no-simulation) table to `<dir>/<name>.json` with
/// the same envelope as a sweep, so every experiment binary archives
/// machine-readable results in one place.
pub fn write_static_table(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
    dir: &Path,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let headers: Vec<String> = headers
        .iter()
        .map(|h| format!("\"{}\"", json_escape(h)))
        .collect();
    let rows: Vec<String> = rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let path = dir.join(format!("{name}.json"));
    fs::write(
        &path,
        format!(
            "{{\"experiment\":\"{}\",\"kind\":\"static\",\"headers\":[{}],\"rows\":[{}]}}",
            json_escape(name),
            headers.join(","),
            rows.join(",")
        ),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_system::PolicyKind;
    use osoffload_workload::Profile;

    #[test]
    fn config_json_is_flat_and_stable() {
        let cfg = SystemConfig::builder()
            .profile(Profile::derby())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .migration_latency(1_000)
            .instructions(50_000)
            .seed(11)
            .build();
        let j = config_json(&cfg);
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"profile\":\"derby\"",
            "\"policy\":\"HI (N=500)\"",
            "\"mechanism\":\"ThreadMigration\"",
            "\"migration_one_way\":1000",
            "\"seed\":11",
            "\"tuner\":false",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
