//! JSON results files under `results/`.
//!
//! One sweep produces one file, `<out_dir>/<plan name>.json`, holding
//! sweep metadata plus one row per point. Row schema (stable key
//! order):
//!
//! ```json
//! {"index":0,"id":"…","seed":123,"config":{…},"status":"ok",
//!  "report":{…SimReport…},"wall_ms":12.3,"worker":2}
//! ```
//!
//! Failed points carry `"status":"failed"`, a `"panic"` message and an
//! `"attempts"` count instead of `"report"`. `wall_ms` and `worker` are
//! the only non-deterministic fields; everything before them is
//! bit-identical across worker counts.

use crate::executor::SweepResult;
use osoffload_obs::{chrome_trace, Event, EventKind, Track};
use osoffload_system::SystemConfig;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Minimal JSON string escaping.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`SystemConfig`] as a JSON object with a stable key order.
///
/// The emitter is hand-rolled like
/// [`SimReport::to_json`](osoffload_system::SimReport::to_json): the
/// approved dependency set has no serialisation framework.
pub fn config_json(cfg: &SystemConfig) -> String {
    format!(
        "{{\"profile\":\"{}\",\"policy\":\"{}\",\"mechanism\":\"{:?}\",\"migration_one_way\":{},\
         \"user_cores\":{},\"os_core_contexts\":{},\"os_core_slowdown_milli\":{},\
         \"resource_adaptation\":{},\"instructions\":{},\"warmup\":{},\"seed\":{},\
         \"tuner\":{},\"mem_override\":{},\"phases\":{}}}",
        json_escape(cfg.profile.name),
        json_escape(&cfg.policy.to_string()),
        cfg.mechanism,
        cfg.migration.one_way().as_u64(),
        cfg.user_cores,
        cfg.os_core_contexts,
        cfg.os_core_slowdown_milli,
        cfg.resource_adaptation
            .map_or("null".to_string(), |m| m.to_string()),
        cfg.instructions,
        cfg.warmup,
        cfg.seed,
        cfg.tuner.is_some(),
        cfg.mem_override.is_some(),
        cfg.phases.len()
    )
}

/// Writes a sweep's results to `<dir>/<plan name>.json`, creating the
/// directory if needed. Returns the file's path.
pub fn write_sweep(sweep: &SweepResult, dir: &Path) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", sweep.name));
    fs::write(&path, sweep.to_json())?;
    Ok(path)
}

/// Writes the runner's self-profiling telemetry for a sweep.
///
/// Produces two files in `dir`:
///
/// - `<name>_runner.trace.json` — a Chrome trace of the worker
///   timeline: one complete span per point on its worker's track, with
///   wall-clock microseconds since sweep start as timestamps. Load it
///   in Perfetto / `chrome://tracing` to see scheduling, queue gaps and
///   stragglers.
/// - `<name>_runner.json` — a utilisation summary: sweep wall time,
///   idle worker-milliseconds, retry counts and one row per worker.
pub fn write_runner_telemetry(sweep: &SweepResult, dir: &Path) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let events: Vec<Event> = sweep
        .rows
        .iter()
        .map(|row| Event {
            ts: (row.start_ms * 1_000.0) as u64,
            dur: (row.wall_ms * 1_000.0).max(1.0) as u64,
            track: Track::Worker(row.worker),
            kind: EventKind::Task {
                name: row.id.clone(),
                ok: row.is_ok(),
            },
        })
        .collect();
    let meta = [
        ("experiment".to_string(), sweep.name.clone()),
        ("workers".to_string(), sweep.workers.to_string()),
        ("wall_ms".to_string(), format!("{:.3}", sweep.wall_ms)),
    ];
    let trace_path = dir.join(format!("{}_runner.trace.json", sweep.name));
    fs::write(&trace_path, chrome_trace(&events, None, &meta))?;

    let profiles = sweep.worker_profiles();
    let retries: u64 = profiles.iter().map(|p| p.retries).sum();
    let profile_rows: Vec<String> = profiles
        .iter()
        .map(|p| {
            format!(
                "{{\"worker\":{},\"points\":{},\"busy_ms\":{:.3},\"retries\":{},\"utilization\":{:.4}}}",
                p.worker, p.points, p.busy_ms, p.retries, p.utilization
            )
        })
        .collect();
    let json_path = dir.join(format!("{}_runner.json", sweep.name));
    fs::write(
        &json_path,
        format!(
            "{{\"experiment\":\"{}\",\"workers\":{},\"points\":{},\"failed\":{},\
             \"wall_ms\":{:.3},\"idle_ms\":{:.3},\"retries\":{},\"worker_profiles\":[{}]}}",
            json_escape(&sweep.name),
            sweep.workers,
            sweep.rows.len(),
            sweep.failures().count(),
            sweep.wall_ms,
            sweep.idle_ms(),
            retries,
            profile_rows.join(",")
        ),
    )?;
    Ok(vec![trace_path, json_path])
}

/// Writes a static (no-simulation) table to `<dir>/<name>.json` with
/// the same envelope as a sweep, so every experiment binary archives
/// machine-readable results in one place.
pub fn write_static_table(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
    dir: &Path,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let headers: Vec<String> = headers
        .iter()
        .map(|h| format!("\"{}\"", json_escape(h)))
        .collect();
    let rows: Vec<String> = rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let path = dir.join(format!("{name}.json"));
    fs::write(
        &path,
        format!(
            "{{\"experiment\":\"{}\",\"kind\":\"static\",\"headers\":[{}],\"rows\":[{}]}}",
            json_escape(name),
            headers.join(","),
            rows.join(",")
        ),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_system::PolicyKind;
    use osoffload_workload::Profile;

    #[test]
    fn config_json_is_flat_and_stable() {
        let cfg = SystemConfig::builder()
            .profile(Profile::derby())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .migration_latency(1_000)
            .instructions(50_000)
            .seed(11)
            .build();
        let j = config_json(&cfg);
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"profile\":\"derby\"",
            "\"policy\":\"HI (N=500)\"",
            "\"mechanism\":\"ThreadMigration\"",
            "\"migration_one_way\":1000",
            "\"seed\":11",
            "\"tuner\":false",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn runner_telemetry_writes_trace_and_summary() {
        use crate::executor::{Outcome, PointResult};
        let row = |index: usize, worker: usize, start_ms: f64| PointResult {
            index,
            id: format!("p{index}"),
            seed: index as u64,
            config_json: "{}".to_string(),
            outcome: Outcome::Failed {
                panic: "synthetic".to_string(),
                attempts: 2,
            },
            wall_ms: 5.0,
            start_ms,
            worker,
            attempts: 2,
        };
        let sweep = SweepResult {
            name: "unit".to_string(),
            master_seed: 1,
            workers: 2,
            wall_ms: 12.0,
            rows: vec![row(0, 0, 0.0), row(1, 1, 1.0), row(2, 0, 6.0)],
        };
        let dir = std::env::temp_dir().join(format!("osoff-runner-telem-{}", std::process::id()));
        let paths = write_runner_telemetry(&sweep, &dir).expect("write telemetry");
        assert_eq!(paths.len(), 2);
        let trace = fs::read_to_string(&paths[0]).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"worker 0\""));
        assert!(trace.contains("\"p2\""));
        let summary = fs::read_to_string(&paths[1]).unwrap();
        assert!(summary.contains("\"experiment\":\"unit\""));
        assert!(summary.contains("\"workers\":2"));
        assert!(summary.contains("\"retries\":3"));
        assert!(summary.contains("\"worker_profiles\":[{"));
        fs::remove_dir_all(&dir).ok();
    }
}
