//! Write-ahead results journal: crash-safe checkpoint/resume for
//! campaigns.
//!
//! The journal is a line-oriented append-only file. Line one is a
//! header identifying the campaign (experiment name, master seed, point
//! count); every subsequent line records one completed point. Each line
//! is an envelope `{"fnv":"<16-hex>","body":<body>}` whose checksum is
//! FNV-1a over the body's bytes, and every append is flushed with
//! `fdatasync` before the point is acknowledged — a crash can lose at
//! most the point that was in flight, never a point the runner reported
//! done.
//!
//! A record stores the row's **verbatim** stable JSON alongside the
//! non-deterministic timings. Resume re-emits that stored text
//! unchanged (see [`crate::PointResult::restored`]), which is what lets
//! a resumed campaign produce a final archive byte-identical to an
//! uninterrupted one without depending on float round-trips.
//!
//! The loader is deliberately forgiving: a torn final line (the classic
//! crash artefact), a checksum mismatch, or trailing garbage ends the
//! parse at the last good record instead of failing the resume — those
//! points simply re-run.

use crate::executor::{Outcome, PointResult};
use crate::jsonv::{self, Value};
use crate::report::json_escape;
use osoffload_system::{BinaryPoint, CycleBreakdown, PredictorReport, QueueReport, SimReport};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// The 64-bit FNV-1a hash of `bytes` — the journal's line checksum, and
/// the digest archived with failed rows (`config_digest`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The campaign identity a journal belongs to; resume refuses a journal
/// whose header does not match the plan being run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Experiment (plan) name.
    pub experiment: String,
    /// The plan's master seed.
    pub master_seed: u64,
    /// Points in the plan.
    pub points: usize,
}

impl JournalHeader {
    fn body(&self) -> String {
        format!(
            "{{\"journal\":\"osoffload-runner\",\"version\":1,\"experiment\":\"{}\",\
             \"master_seed\":{},\"points\":{}}}",
            json_escape(&self.experiment),
            self.master_seed,
            self.points
        )
    }
}

/// Wraps one record body as a checksummed, newline-terminated envelope
/// line — the journal's (and the serve cache's) on-disk line format.
pub fn envelope(body: &str) -> String {
    format!(
        "{{\"fnv\":\"{:016x}\",\"body\":{body}}}\n",
        fnv1a64(body.as_bytes())
    )
}

/// An open journal file in append mode.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates (truncating) a journal at `path` and writes the fsynced
    /// header line.
    pub fn create(path: &Path, header: &JournalHeader) -> io::Result<Journal> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut journal = Journal { file };
        journal.write_line(&envelope(&header.body()))?;
        Ok(journal)
    }

    /// Opens an existing journal for appending (resume).
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Appends one record body as an fsynced envelope line. The line is
    /// durable when this returns `Ok`.
    pub fn append(&mut self, body: &str) -> io::Result<()> {
        self.write_line(&envelope(body))
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// Renders the journal record body for one completed row: the
/// non-deterministic timings plus the verbatim stable-row text. The
/// `stable` key is deliberately last so the loader can slice it back out
/// byte-for-byte (every preceding value is numeric).
pub(crate) fn record_body(row: &PointResult) -> String {
    let attempt_ms: Vec<String> = row.attempt_ms.iter().map(|ms| format!("{ms:.3}")).collect();
    format!(
        "{{\"index\":{},\"worker\":{},\"attempts\":{},\"injected_faults\":{},\
         \"wall_ms\":{:.3},\"start_ms\":{:.3},\"attempt_ms\":[{}],\"stable\":{}}}",
        row.index,
        row.worker,
        row.attempts,
        row.injected_faults,
        row.wall_ms,
        row.start_ms,
        attempt_ms.join(","),
        row.stable_json()
    )
}

/// A journal read back from disk: the campaign header and every intact
/// record, restored as result rows.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The campaign the journal belongs to.
    pub header: JournalHeader,
    /// Restored rows, in journal (completion) order. Duplicate indices
    /// keep the last record.
    pub rows: Vec<PointResult>,
}

/// How [`scan_envelope_lines`] treats a line that fails envelope
/// validation. Both modes silently drop an unterminated final fragment
/// — the torn in-flight append a crash leaves behind — because it was
/// never acknowledged to anyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Stop at the first bad line, keeping everything before it. This
    /// is the journal-resume contract: a journal is a prefix-ordered
    /// log, so nothing after damage can be trusted to belong to the
    /// same run.
    Strict,
    /// Skip bad lines (each recorded as a [`ScanIssue`]) and keep
    /// scanning. This is the serve-cache contract: entries are
    /// content-addressed and independent, so damage to one record never
    /// invalidates its neighbours.
    Tolerant,
}

/// One line [`scan_envelope_lines`] could not validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanIssue {
    /// 1-based line number in the scanned text.
    pub lineno: usize,
    /// What was wrong with the line.
    pub why: String,
}

/// Splits `text` into newline-terminated lines and validates each as a
/// checksummed envelope, returning `(lineno, body)` pairs for the lines
/// that pass plus an issue per line that does not. The shared reader
/// beneath both [`load`] (strict) and the serve cache's loader
/// (tolerant); the mode semantics are documented in `ROBUSTNESS.md`.
pub fn scan_envelope_lines(text: &str, mode: ScanMode) -> (Vec<(usize, &str)>, Vec<ScanIssue>) {
    let mut bodies = Vec::new();
    let mut issues = Vec::new();
    let mut rest = text;
    let mut lineno = 0usize;
    // Only '\n'-terminated lines are complete; an unterminated tail is
    // a torn in-flight append and is discarded without comment.
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        lineno += 1;
        if line.is_empty() {
            continue;
        }
        match unwrap_envelope(line) {
            Some(body) => bodies.push((lineno, body)),
            None => {
                issues.push(ScanIssue {
                    lineno,
                    why: "bad envelope or checksum".to_string(),
                });
                if mode == ScanMode::Strict {
                    break;
                }
            }
        }
    }
    (bodies, issues)
}

/// Reads a journal back, tolerating the torn/corrupt tail a crash
/// leaves behind: parsing stops at the first line that is unterminated,
/// fails its checksum, or does not parse — everything before it is
/// kept. Errors only when the file is unreadable or its header is
/// missing or invalid (such a file cannot safely seed a resume).
pub fn load(path: &Path) -> Result<LoadedJournal, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let (lines, _issues) = scan_envelope_lines(&text, ScanMode::Strict);
    let mut lines = lines.into_iter();
    let (_, header_body) = lines.next().ok_or("empty journal or corrupt header line")?;
    let header = parse_header(header_body)?;
    let mut rows: Vec<PointResult> = Vec::new();
    for (_, body) in lines {
        let Some(row) = restore_row(body) else {
            break; // unrestorable record: keep everything before it
        };
        if let Some(existing) = rows.iter_mut().find(|r| r.index == row.index) {
            *existing = row;
        } else {
            rows.push(row);
        }
    }
    Ok(LoadedJournal { header, rows })
}

/// Validates one envelope line and returns the body slice, or `None`
/// when the line is malformed or fails its checksum.
pub fn unwrap_envelope(line: &str) -> Option<&str> {
    const PREFIX: &str = "{\"fnv\":\"";
    const MID: &str = "\",\"body\":";
    let rest = line.strip_prefix(PREFIX)?;
    let (hex, rest) = rest.split_at_checked(16)?;
    let body_and_close = rest.strip_prefix(MID)?;
    let body = body_and_close.strip_suffix('}')?;
    let want = u64::from_str_radix(hex, 16).ok()?;
    (fnv1a64(body.as_bytes()) == want).then_some(body)
}

fn parse_header(body: &str) -> Result<JournalHeader, String> {
    let v = jsonv::parse(body).map_err(|e| format!("bad header: {e}"))?;
    if v.get("journal").and_then(Value::as_str) != Some("osoffload-runner") {
        return Err("not an osoffload-runner journal".into());
    }
    if v.get("version").and_then(Value::as_u64) != Some(1) {
        return Err("unsupported journal version".into());
    }
    Ok(JournalHeader {
        experiment: v
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("header missing experiment")?
            .to_string(),
        master_seed: v
            .get("master_seed")
            .and_then(Value::as_u64)
            .ok_or("header missing master_seed")?,
        points: v
            .get("points")
            .and_then(Value::as_usize)
            .ok_or("header missing points")?,
    })
}

/// Rebuilds one result row from a record body, or `None` if anything
/// about the record is off (the point then simply re-runs).
fn restore_row(body: &str) -> Option<PointResult> {
    let stable_text = extract_stable(body)?;
    let v = jsonv::parse(body).ok()?;
    let stable = jsonv::parse(stable_text).ok()?;
    let config_json = extract_config(stable_text)?;
    let outcome = parse_outcome(&stable)?;
    Some(PointResult {
        index: v.get("index").and_then(Value::as_usize)?,
        id: stable.get("id").and_then(Value::as_str)?.to_string(),
        seed: stable.get("seed").and_then(Value::as_u64)?,
        config_json,
        outcome,
        wall_ms: v.get("wall_ms").and_then(Value::as_f64)?,
        start_ms: v.get("start_ms").and_then(Value::as_f64)?,
        worker: v.get("worker").and_then(Value::as_usize)?,
        attempts: v.get("attempts").and_then(Value::as_u32)?,
        attempt_ms: v
            .get("attempt_ms")
            .and_then(Value::as_arr)?
            .iter()
            .map(Value::as_f64)
            .collect::<Option<Vec<f64>>>()?,
        injected_faults: v.get("injected_faults").and_then(Value::as_u32)?,
        restored: Some(stable_text.to_string()),
    })
}

/// Parses the outcome encoded in a stable-row's `status` (+ payload)
/// fields.
fn parse_outcome(stable: &Value) -> Option<Outcome> {
    Some(match stable.get("status").and_then(Value::as_str)? {
        "ok" => Outcome::Ok(Box::new(restore_report(stable.get("report")?)?)),
        "failed" => Outcome::Failed {
            panic: stable.get("panic").and_then(Value::as_str)?.to_string(),
            attempts: stable.get("attempts").and_then(Value::as_u32)?,
        },
        "timeout" => Outcome::TimedOut {
            deadline_ms: stable.get("deadline_ms").and_then(Value::as_u64)?,
            attempts: stable.get("attempts").and_then(Value::as_u32)?,
        },
        _ => return None,
    })
}

/// Restores a result row from a stable-row text alone — the form the
/// serve cache stores. The outcome (including the full report) is
/// parsed out of the text, the non-deterministic fields are set to
/// their canonical zeros (`attempts` 1, one zero attempt), and the
/// verbatim text is retained so archives re-emit it byte-for-byte, the
/// same contract journal resume relies on.
pub fn restore_from_stable(stable_text: &str) -> Option<PointResult> {
    let stable = jsonv::parse(stable_text).ok()?;
    let config_json = extract_config(stable_text)?;
    Some(PointResult {
        index: stable.get("index").and_then(Value::as_usize)?,
        id: stable.get("id").and_then(Value::as_str)?.to_string(),
        seed: stable.get("seed").and_then(Value::as_u64)?,
        config_json,
        outcome: parse_outcome(&stable)?,
        wall_ms: 0.0,
        start_ms: 0.0,
        worker: 0,
        attempts: 1,
        attempt_ms: vec![0.0],
        injected_faults: 0,
        restored: Some(stable_text.to_string()),
    })
}

/// Re-keys a stable-row text to a new plan position: the `index`, `id`,
/// and `seed` prefix is replaced and everything from `"config":` on —
/// the configuration and the outcome — carries over byte-for-byte. This
/// is how a serve-cache row recorded at one sweep position is replayed
/// verbatim at another without re-serialising the report.
pub fn rekey_stable(stable: &str, index: usize, id: &str, seed: u64) -> Option<String> {
    let bytes = stable.as_bytes();
    let mut pos = expect_str(stable, 0, "{\"index\":")?;
    pos = skip_number(bytes, pos)?;
    pos = expect_str(stable, pos, ",\"id\":")?;
    pos = skip_string(bytes, pos)?;
    pos = expect_str(stable, pos, ",\"seed\":")?;
    pos = skip_number(bytes, pos)?;
    stable[pos..].starts_with(",\"config\":").then(|| {
        format!(
            "{{\"index\":{index},\"id\":\"{}\",\"seed\":{seed}{}",
            json_escape(id),
            &stable[pos..]
        )
    })
}

/// Slices the verbatim stable-row text out of a record body. `stable`
/// is the record's last key and every earlier value is numeric, so the
/// first occurrence of the marker is the real one and the value runs to
/// the body's closing brace.
fn extract_stable(body: &str) -> Option<&str> {
    const MARKER: &str = ",\"stable\":";
    let start = body.find(MARKER)? + MARKER.len();
    let stable = body.get(start..body.len().checked_sub(1)?)?;
    (stable.starts_with('{') && stable.ends_with('}')).then_some(stable)
}

/// Slices the verbatim configuration JSON out of a stable-row text by
/// walking its fixed field order: `{"index":N,"id":"...","seed":N,
/// "config":{...},...}`. String-aware, so ids containing braces or a
/// literal `"config"` cannot mislead it. Archive rows share the same
/// leading field order, so `osoffload inspect` reuses this to recover
/// the exact bytes behind an archived `config_digest`.
pub fn extract_config(stable: &str) -> Option<String> {
    let bytes = stable.as_bytes();
    let mut pos = expect_str(stable, 0, "{\"index\":")?;
    pos = skip_number(bytes, pos)?;
    pos = expect_str(stable, pos, ",\"id\":")?;
    pos = skip_string(bytes, pos)?;
    pos = expect_str(stable, pos, ",\"seed\":")?;
    pos = skip_number(bytes, pos)?;
    pos = expect_str(stable, pos, ",\"config\":")?;
    let end = skip_value(bytes, pos)?;
    Some(stable[pos..end].to_string())
}

fn expect_str(text: &str, pos: usize, lit: &str) -> Option<usize> {
    text[pos..].starts_with(lit).then_some(pos + lit.len())
}

fn skip_number(bytes: &[u8], mut pos: usize) -> Option<usize> {
    let start = pos;
    while pos < bytes.len() && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        pos += 1;
    }
    (pos > start).then_some(pos)
}

fn skip_string(bytes: &[u8], mut pos: usize) -> Option<usize> {
    if bytes.get(pos) != Some(&b'"') {
        return None;
    }
    pos += 1;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'"' => return Some(pos + 1),
            _ => pos += 1,
        }
    }
    None
}

/// Skips one balanced JSON value (object, array, string, or scalar).
fn skip_value(bytes: &[u8], pos: usize) -> Option<usize> {
    match bytes.get(pos)? {
        b'"' => skip_string(bytes, pos),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut p = pos;
            while p < bytes.len() {
                match bytes[p] {
                    b'"' => p = skip_string(bytes, p)?,
                    b'{' | b'[' => {
                        depth += 1;
                        p += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        p += 1;
                        if depth == 0 {
                            return Some(p);
                        }
                    }
                    _ => p += 1,
                }
            }
            None
        }
        _ => skip_number(bytes, pos),
    }
}

/// Rebuilds a [`SimReport`] from its parsed JSON, field for field —
/// including `cycle_breakdown`, whose all-integer components round-trip
/// exactly. Journals written before it was serialised restore it as
/// zeroes (back-compat defaulting, same as `dispatch`).
fn restore_report(v: &Value) -> Option<SimReport> {
    let f = |key: &str| v.get(key).and_then(Value::as_f64);
    let u = |key: &str| v.get(key).and_then(Value::as_u64);
    let us = |key: &str| v.get(key).and_then(Value::as_usize);
    let opt_u = |key: &str| match v.get(key) {
        Some(Value::Null) | None => Some(None),
        Some(val) => val.as_u64().map(Some),
    };
    let queue = v.get("queue")?;
    let predictor = match v.get("predictor") {
        Some(Value::Null) | None => None,
        Some(p) => Some(PredictorReport {
            exact: p.get("exact").and_then(Value::as_f64)?,
            within_5pct: p.get("within_5pct").and_then(Value::as_f64)?,
            underestimates: p.get("underestimates").and_then(Value::as_f64)?,
            local_fraction: p.get("local_fraction").and_then(Value::as_f64)?,
        }),
    };
    Some(SimReport {
        profile: v.get("profile").and_then(Value::as_str)?.to_string(),
        policy: v.get("policy").and_then(Value::as_str)?.to_string(),
        threshold: opt_u("threshold")?,
        final_threshold: opt_u("final_threshold")?,
        migration_one_way: u("migration_one_way")?,
        user_cores: us("user_cores")?,
        os_cores: us("os_cores")?,
        // Absent in journals written before the topology fields existed;
        // default rather than reject so old journals still resume.
        dispatch: v
            .get("dispatch")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        threads: us("threads")?,
        instructions: u("instructions")?,
        cycles: u("cycles")?,
        throughput: f("throughput")?,
        os_share: f("os_share")?,
        offloads: u("offloads")?,
        local_invocations: u("local_invocations")?,
        decision_overhead_cycles: u("decision_overhead_cycles")?,
        l1d_hit_rate: f("l1d_hit_rate")?,
        l1i_hit_rate: f("l1i_hit_rate")?,
        user_branch_accuracy: f("user_branch_accuracy")?,
        l2_user_hit_rate: f("l2_user_hit_rate")?,
        l2_os_hit_rate: f("l2_os_hit_rate")?,
        l2_mean_hit_rate: f("l2_mean_hit_rate")?,
        c2c_transfers: u("c2c_transfers")?,
        invalidation_rounds: u("invalidation_rounds")?,
        l1d_accesses: u("l1d_accesses")?,
        l1i_accesses: u("l1i_accesses")?,
        l2_accesses: u("l2_accesses")?,
        dram_accesses: u("dram_accesses")?,
        throttled_cycles: u("throttled_cycles")?,
        os_core_busy_frac: f("os_core_busy_frac")?,
        os_core_busy_cycles: v
            .get("os_core_busy_cycles")
            .and_then(Value::as_arr)
            .map(|a| a.iter().filter_map(Value::as_u64).collect())
            .unwrap_or_default(),
        os_core_utilisation: v
            .get("os_core_utilisation")
            .and_then(Value::as_arr)
            .map(|a| a.iter().filter_map(Value::as_f64).collect())
            .unwrap_or_default(),
        user_cores_busy_frac: f("user_cores_busy_frac")?,
        queue: QueueReport {
            requests: queue.get("requests").and_then(Value::as_u64)?,
            stalled: queue.get("stalled").and_then(Value::as_u64)?,
            mean_delay: queue.get("mean_delay").and_then(Value::as_f64)?,
            p50_delay: queue.get("p50_delay").and_then(Value::as_u64)?,
            p95_delay: queue.get("p95_delay").and_then(Value::as_u64)?,
            p99_delay: queue.get("p99_delay").and_then(Value::as_u64)?,
        },
        predictor,
        // Absent in journals written before the breakdown was archived;
        // default rather than reject so old journals still resume.
        cycle_breakdown: match v.get("cycle_breakdown") {
            Some(cb) => CycleBreakdown {
                base: cb.get("base").and_then(Value::as_u64)?,
                fetch: cb.get("fetch").and_then(Value::as_u64)?,
                data: cb.get("data").and_then(Value::as_u64)?,
                tlb: cb.get("tlb").and_then(Value::as_u64)?,
                branch: cb.get("branch").and_then(Value::as_u64)?,
                migration: cb.get("migration").and_then(Value::as_u64)?,
                queue_wait: cb.get("queue_wait").and_then(Value::as_u64)?,
                decision: cb.get("decision").and_then(Value::as_u64)?,
            },
            None => CycleBreakdown::default(),
        },
        binary_accuracy: v
            .get("binary_accuracy")?
            .as_arr()?
            .iter()
            .map(|b| {
                Some(BinaryPoint {
                    threshold: b.get("threshold").and_then(Value::as_u64)?,
                    accuracy: b.get("accuracy").and_then(Value::as_f64)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        tuner_events: us("tuner_events")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "osoffload_journal_{tag}_{}_{}.journal",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn header() -> JournalHeader {
        JournalHeader {
            experiment: "unit".into(),
            master_seed: 9,
            points: 3,
        }
    }

    fn sample_row(index: usize) -> PointResult {
        PointResult {
            index,
            id: format!("p{index}"),
            seed: 0xFFFF_FFFF_FFFF_FF00 + index as u64,
            config_json: "{\"profile\":\"apache\",\"n\":1}".into(),
            outcome: Outcome::Failed {
                panic: "boom \"quoted\"".into(),
                attempts: 2,
            },
            wall_ms: 1.5,
            start_ms: 0.25,
            worker: 1,
            attempts: 2,
            attempt_ms: vec![0.7, 0.8],
            injected_faults: 1,
            restored: None,
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn roundtrips_rows_through_disk() {
        let path = temp_path("roundtrip");
        let mut j = Journal::create(&path, &header()).expect("create");
        let rows = [sample_row(0), sample_row(2)];
        for row in &rows {
            j.append(&record_body(row)).expect("append");
        }
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.rows.len(), 2);
        for (orig, restored) in rows.iter().zip(&loaded.rows) {
            assert_eq!(restored.index, orig.index);
            assert_eq!(restored.id, orig.id);
            assert_eq!(restored.seed, orig.seed);
            assert_eq!(restored.config_json, orig.config_json);
            assert_eq!(restored.attempts, orig.attempts);
            assert_eq!(restored.attempt_ms, orig.attempt_ms);
            assert_eq!(restored.injected_faults, orig.injected_faults);
            assert_eq!(
                restored.stable_json(),
                orig.stable_json(),
                "stable text must survive verbatim"
            );
            assert_eq!(restored.row_json(), orig.row_json());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_and_corrupt_tails_are_discarded() {
        let path = temp_path("torn");
        let mut j = Journal::create(&path, &header()).expect("create");
        j.append(&record_body(&sample_row(0))).expect("append");
        j.append(&record_body(&sample_row(1))).expect("append");
        let intact = std::fs::read_to_string(&path).expect("read");
        // Torn final line: a prefix of a record without its newline.
        let torn = format!("{intact}{}", &envelope("{\"x\":1}")[..9]);
        std::fs::write(&path, &torn).expect("write");
        assert_eq!(load(&path).expect("load").rows.len(), 2);
        // Checksum flip on the last line drops that record only.
        let flipped = intact.replace(
            &envelope(&record_body(&sample_row(1))),
            &envelope(&record_body(&sample_row(1))).replacen('0', "1", 1),
        );
        std::fs::write(&path, &flipped).expect("write");
        assert_eq!(load(&path).expect("load").rows.len(), 1);
        // Garbage line stops the parse but keeps the good prefix.
        let garbage = format!("{intact}not json at all\n");
        std::fs::write(&path, &garbage).expect("write");
        assert_eq!(load(&path).expect("load").rows.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strict_and_tolerant_scans_differ_only_after_the_first_bad_line() {
        // One fixture, both modes: header, good record, corrupt record
        // (checksum flip), garbage, good record, torn unterminated tail.
        let good1 = envelope("{\"a\":1}");
        let corrupt = envelope("{\"b\":2}").replacen('0', "1", 1);
        let good2 = envelope("{\"c\":3}");
        let fixture = format!(
            "{}{good1}{corrupt}not an envelope at all\n\n{good2}{}",
            envelope("{\"hdr\":true}"),
            &envelope("{\"torn\":true}")[..9]
        );

        let (strict, strict_issues) = scan_envelope_lines(&fixture, ScanMode::Strict);
        assert_eq!(
            strict,
            vec![(1, "{\"hdr\":true}"), (2, "{\"a\":1}")],
            "strict keeps only the prefix before the first bad line"
        );
        assert_eq!(strict_issues.len(), 1, "{strict_issues:?}");
        assert_eq!(strict_issues[0].lineno, 3);

        let (tolerant, tolerant_issues) = scan_envelope_lines(&fixture, ScanMode::Tolerant);
        assert_eq!(
            tolerant,
            vec![(1, "{\"hdr\":true}"), (2, "{\"a\":1}"), (6, "{\"c\":3}")],
            "tolerant skips bad lines and keeps later good ones"
        );
        assert_eq!(
            tolerant_issues.iter().map(|i| i.lineno).collect::<Vec<_>>(),
            vec![3, 4],
            "one issue per skipped line; blank lines and the torn tail \
             are dropped silently in both modes: {tolerant_issues:?}"
        );
    }

    #[test]
    fn a_journal_without_a_valid_header_is_refused() {
        let path = temp_path("badheader");
        std::fs::write(&path, "junk\n").expect("write");
        assert!(load(&path).is_err());
        std::fs::write(&path, "").expect("write");
        assert!(load(&path).is_err());
        let _ = std::fs::remove_file(&path);
        assert!(load(&path).is_err(), "missing file is an error");
    }

    #[test]
    fn duplicate_indices_keep_the_last_record() {
        let path = temp_path("dup");
        let mut j = Journal::create(&path, &header()).expect("create");
        let mut first = sample_row(1);
        first.attempts = 1;
        j.append(&record_body(&first)).expect("append");
        let mut second = sample_row(1);
        second.attempts = 9;
        j.append(&record_body(&second)).expect("append");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.rows.len(), 1);
        assert_eq!(loaded.rows[0].attempts, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_from_stable_round_trips_and_rekeys() {
        let row = sample_row(3);
        let stable = row.stable_json();
        let restored = restore_from_stable(&stable).expect("restore");
        assert_eq!(restored.index, row.index);
        assert_eq!(restored.id, row.id);
        assert_eq!(restored.seed, row.seed);
        assert_eq!(restored.config_json, row.config_json);
        assert_eq!(restored.stable_json(), stable, "verbatim text retained");
        assert_eq!(restored.attempts, 1, "non-deterministic fields zeroed");
        assert_eq!(restored.attempt_ms, vec![0.0]);
        // Re-keying to a new position rewrites the prefix only.
        let rekeyed = rekey_stable(&stable, 7, "moved \"id\"", 42).expect("rekey");
        let moved = restore_from_stable(&rekeyed).expect("restore rekeyed");
        assert_eq!(moved.index, 7);
        assert_eq!(moved.id, "moved \"id\"");
        assert_eq!(moved.seed, 42);
        assert_eq!(moved.config_json, row.config_json);
        assert_eq!(moved.stable_json(), rekeyed);
        assert!(rekey_stable("{\"nope\":1}", 0, "x", 0).is_none());
    }

    #[test]
    fn config_extraction_is_string_aware() {
        // An id crafted to contain the markers a naive scan would trip
        // on.
        let stable = "{\"index\":0,\"id\":\"evil\\\",\\\"config\\\":{\",\"seed\":1,\
                      \"config\":{\"a\":[1,{\"b\":\"}\"}]},\"status\":\"x\"}";
        assert_eq!(
            extract_config(stable).as_deref(),
            Some("{\"a\":[1,{\"b\":\"}\"}]}")
        );
    }

    #[test]
    fn restores_ok_rows_with_full_reports() {
        use osoffload_system::{PolicyKind, SystemConfig};
        use osoffload_workload::Profile;
        let cfg = SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .instructions(20_000)
            .warmup(5_000)
            .seed(7)
            .build();
        let report = osoffload_system::Simulation::new(cfg.clone()).run();
        let row = PointResult {
            index: 0,
            id: "ok-point".into(),
            seed: 7,
            config_json: crate::report::config_json(&cfg),
            outcome: Outcome::Ok(Box::new(report.clone())),
            wall_ms: 3.0,
            start_ms: 0.0,
            worker: 0,
            attempts: 1,
            attempt_ms: vec![3.0],
            injected_faults: 0,
            restored: None,
        };
        let path = temp_path("okrow");
        let mut j = Journal::create(
            &path,
            &JournalHeader {
                experiment: "unit".into(),
                master_seed: 7,
                points: 1,
            },
        )
        .expect("create");
        j.append(&record_body(&row)).expect("append");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.rows.len(), 1);
        let restored = &loaded.rows[0];
        assert_eq!(restored.stable_json(), row.stable_json());
        match &restored.outcome {
            Outcome::Ok(r) => {
                // Everything to_json serialises survives the round trip.
                assert_eq!(r.to_json(), report.to_json());
            }
            other => unreachable!("expected Ok, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
