//! Lane-pack scheduling for the parallel executor.
//!
//! A plain sweep evaluates every point with its own [`Simulation`],
//! regenerating the point's workload stream from scratch. When the
//! sweep's points share workload shapes (they almost always do — a grid
//! varies policy and latency, not the workload), the lane engine
//! ([`osoffload_system::lanes`]) can replay one recorded tape into many
//! co-resident simulations instead.
//!
//! This module is the executor-side glue. Points are grouped by
//! [`tape_compatible`] shape and chunked into *packs* of `--lanes`
//! points. Workers still claim individual points off the shared index;
//! the first worker to touch a pack computes the whole pack under that
//! point's attempt (one [`LaneStepper`] run), and sibling points then
//! serve their reports from the pack slot. Each worker thread keeps its
//! own [`TapeRegistry`] — a preallocated per-worker arena of generated
//! tapes — so workers share *nothing* across threads: a shape's tape is
//! generated at most once per worker, and scaling adds no cross-worker
//! coordination beyond the (padded) claim index.
//!
//! Reports are bit-identical to [`Simulation::run`] per point, so rows,
//! archives, and journals are unchanged in content. Failure isolation
//! is preserved: a pack that panics is *poisoned*, the claiming point's
//! attempt unwinds (feeding the normal retry machinery), and every
//! point of a poisoned pack falls back to its own scalar evaluation.

use crate::executor::RunnerOptions;
use crate::plan::Point;
use osoffload_system::{tape_compatible, LaneStepper, SimReport, Simulation, TapeRegistry};
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default pack width when `--lanes=0` (auto). Four lanes captures
/// nearly all of the tape-sharing win on the sweep grids (generation is
/// amortised across packs by the per-worker registry, so wider packs
/// only grow the co-resident cache footprint).
pub(crate) const AUTO_LANES: usize = 4;

/// The pack width `opts` asks for (resolving `0` = auto).
pub(crate) fn effective_lanes(opts: &RunnerOptions) -> usize {
    if opts.lanes == 0 {
        AUTO_LANES
    } else {
        opts.lanes
    }
}

/// Whether this sweep runs on the lane path. Telemetry and profiling
/// attach observers to the simulation (a different constructor path),
/// fault injection and watchdog deadlines need per-point attempt
/// control, and `--lanes=1` explicitly requests the scalar path.
pub(crate) fn eligible(opts: &RunnerOptions) -> bool {
    effective_lanes(opts) > 1
        && !opts.telemetry
        && !opts.profile
        && opts.fault_plan.is_none()
        && opts.fault_seed.is_none()
        && opts.deadline_ms.is_none()
}

/// Sweep generation counter: stamps each sweep's packs so the
/// thread-local per-worker registries reset between sweeps instead of
/// accumulating tapes process-wide.
static SWEEP_GEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This worker's tape arena, tagged with the sweep generation it
    /// was built for.
    static REGISTRY: RefCell<(u64, TapeRegistry)> = RefCell::new((0, TapeRegistry::new()));
}

/// Runs one pack of configurations through the lane engine on this
/// worker's registry.
fn run_pack(generation: u64, configs: Vec<osoffload_system::SystemConfig>) -> Vec<SimReport> {
    REGISTRY.with(|cell| {
        let (tag, registry) = &mut *cell.borrow_mut();
        if *tag != generation {
            *registry = TapeRegistry::new();
            *tag = generation;
        }
        LaneStepper::with_registry(configs, registry)
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"))
            .run()
    })
}

/// One pack's lifecycle.
enum PackState {
    /// Not yet computed.
    Pending,
    /// Reports for every member, in pack order.
    Done(Vec<SimReport>),
    /// The pack's lane run panicked; members evaluate scalar instead.
    Poisoned,
}

/// The sweep's points grouped into lane packs, plus per-pack result
/// slots. Built once before the workers start; `eval` is the
/// executor's point evaluator.
pub(crate) struct LanePacks {
    /// Sweep generation (resets the per-worker registries).
    generation: u64,
    /// `point index -> (pack, position in pack)`.
    pack_of: Vec<(usize, usize)>,
    /// `pack -> member point indices`, in plan order.
    packs: Vec<Vec<usize>>,
    state: Vec<Mutex<PackState>>,
}

impl LanePacks {
    /// Groups `points` by workload shape and chunks each group into
    /// packs of at most `width`.
    pub(crate) fn build(points: &[Point], width: usize) -> Self {
        let width = width.max(1);
        // (representative index, member indices) per shape, preserving
        // plan order within each group.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for p in points {
            match groups
                .iter_mut()
                .find(|(rep, _)| tape_compatible(&points[*rep].config, &p.config))
            {
                Some((_, members)) => members.push(p.index),
                None => groups.push((p.index, vec![p.index])),
            }
        }
        let mut pack_of = vec![(0usize, 0usize); points.len()];
        let mut packs = Vec::new();
        for (_, members) in groups {
            for chunk in members.chunks(width) {
                for (pos, &i) in chunk.iter().enumerate() {
                    pack_of[i] = (packs.len(), pos);
                }
                packs.push(chunk.to_vec());
            }
        }
        let state = packs
            .iter()
            .map(|_| Mutex::new(PackState::Pending))
            .collect();
        LanePacks {
            generation: SWEEP_GEN.fetch_add(1, Ordering::Relaxed),
            pack_of,
            packs,
            state,
        }
    }

    /// Number of packs.
    #[cfg(test)]
    fn pack_count(&self) -> usize {
        self.packs.len()
    }

    /// Evaluates `point`: serves its report from the pack slot,
    /// computing the whole pack on first touch. Panics (propagating a
    /// lane-run panic) poison the pack so siblings and retries fall
    /// back to scalar evaluation.
    pub(crate) fn eval(&self, points: &[Point], point: &Point) -> SimReport {
        let (pack, pos) = self.pack_of[point.index];
        let mut slot = self.state[pack].lock().expect("pack slot poisoned");
        match &*slot {
            PackState::Done(reports) => reports[pos].clone(),
            PackState::Poisoned => {
                drop(slot);
                Simulation::new(point.config.clone()).run()
            }
            PackState::Pending => {
                let configs: Vec<_> = self.packs[pack]
                    .iter()
                    .map(|&i| points[i].config.clone())
                    .collect();
                match catch_unwind(AssertUnwindSafe(|| run_pack(self.generation, configs))) {
                    Ok(reports) => {
                        let report = reports[pos].clone();
                        *slot = PackState::Done(reports);
                        report
                    }
                    Err(payload) => {
                        *slot = PackState::Poisoned;
                        drop(slot);
                        resume_unwind(payload);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExperimentPlan;
    use osoffload_system::{PolicyKind, SystemConfig};
    use osoffload_workload::Profile;

    fn cfg(threshold: u64, seed: u64) -> SystemConfig {
        SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold })
            .migration_latency(1_000)
            .instructions(20_000)
            .warmup(5_000)
            .seed(seed)
            .build()
    }

    fn plan_of(configs: Vec<SystemConfig>) -> ExperimentPlan {
        let mut plan = ExperimentPlan::new("lane-unit", 1);
        for (i, c) in configs.into_iter().enumerate() {
            plan.push_pinned(format!("p{i}"), c);
        }
        plan
    }

    #[test]
    fn packs_group_by_shape_and_chunk_by_width() {
        // Two shapes (seeds), 3 + 2 members, width 2 -> 2 + 1 packs.
        let plan = plan_of(vec![
            cfg(100, 1),
            cfg(200, 2),
            cfg(300, 1),
            cfg(400, 2),
            cfg(500, 1),
        ]);
        let packs = LanePacks::build(plan.points(), 2);
        assert_eq!(packs.pack_count(), 3);
        // Same-shape points share a pack even when not adjacent.
        assert_eq!(packs.pack_of[0].0, packs.pack_of[2].0);
        assert_eq!(packs.pack_of[1].0, packs.pack_of[3].0);
        assert_ne!(packs.pack_of[0].0, packs.pack_of[1].0);
        assert_eq!(packs.pack_of[4].0, 1, "third same-shape point overflows");
    }

    #[test]
    fn eval_serves_pack_reports_identical_to_scalar() {
        let plan = plan_of(vec![cfg(100, 7), cfg(5_000, 7), cfg(900, 7)]);
        let packs = LanePacks::build(plan.points(), 4);
        assert_eq!(packs.pack_count(), 1);
        // Claim out of order: pack computes on first touch.
        for &i in &[2usize, 0, 1] {
            let p = &plan.points()[i];
            let lane = packs.eval(plan.points(), p);
            assert_eq!(lane, Simulation::new(p.config.clone()).run());
        }
    }

    #[test]
    fn poisoned_pack_falls_back_to_scalar() {
        let plan = plan_of(vec![cfg(100, 3), cfg(200, 3)]);
        let packs = LanePacks::build(plan.points(), 2);
        *packs.state[0].lock().unwrap() = PackState::Poisoned;
        let p = &plan.points()[1];
        let report = packs.eval(plan.points(), p);
        assert_eq!(report, Simulation::new(p.config.clone()).run());
    }
}
