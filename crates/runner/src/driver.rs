//! Record/replay bridge between the sequential experiment drivers and
//! the parallel executor.
//!
//! Every driver in [`osoffload_system::experiments`] has a `*_with`
//! variant taking an [`Evaluator`]. Their enumeration order is
//! independent of report values, so a driver can be run twice:
//!
//! 1. **Record** — the evaluator captures each requested
//!    [`SystemConfig`] into an [`ExperimentPlan`] and returns a
//!    placeholder report (the driver's outputs are discarded).
//! 2. **Execute** — the plan runs on the parallel executor.
//! 3. **Replay** — the driver runs again with an evaluator serving the
//!    precomputed reports in the same order, producing exactly the rows
//!    the sequential path would have.
//!
//! The replay step is skipped when any point failed; callers get the
//! sweep (with per-point failure rows) and `None` instead of rows.

use crate::executor::{run_plan, Outcome, RunnerOptions, SweepResult};
use crate::plan::ExperimentPlan;
use osoffload_system::experiments::Evaluator;
use osoffload_system::{CycleBreakdown, QueueReport, SimReport, SystemConfig};

/// A placeholder [`SimReport`] served during the record pass.
///
/// Throughput is 1.0 (not 0.0) so normalisations computed on discarded
/// record-pass rows cannot trip the divide-by-zero assertion in
/// [`SimReport::normalized_to`]. Every other field (including
/// `cycle_breakdown`) is zeroed on purpose: the record pass only
/// captures configurations, and its outputs never reach an archive —
/// real values flow from the execute pass, which serialises and
/// restores reports losslessly.
pub fn placeholder_report() -> SimReport {
    SimReport {
        profile: String::new(),
        policy: String::new(),
        threshold: None,
        final_threshold: None,
        migration_one_way: 0,
        user_cores: 0,
        os_cores: 0,
        dispatch: String::new(),
        threads: 0,
        instructions: 0,
        cycles: 0,
        throughput: 1.0,
        os_share: 0.0,
        offloads: 0,
        local_invocations: 0,
        decision_overhead_cycles: 0,
        l1d_hit_rate: 0.0,
        l1i_hit_rate: 0.0,
        user_branch_accuracy: 0.0,
        l2_user_hit_rate: 0.0,
        l2_os_hit_rate: 0.0,
        l2_mean_hit_rate: 0.0,
        c2c_transfers: 0,
        invalidation_rounds: 0,
        l1d_accesses: 0,
        l1i_accesses: 0,
        l2_accesses: 0,
        dram_accesses: 0,
        throttled_cycles: 0,
        os_core_busy_frac: 0.0,
        os_core_busy_cycles: Vec::new(),
        os_core_utilisation: Vec::new(),
        user_cores_busy_frac: 0.0,
        queue: QueueReport::default(),
        predictor: None,
        cycle_breakdown: CycleBreakdown::default(),
        binary_accuracy: Vec::new(),
        tuner_events: 0,
    }
}

fn point_id(index: usize, cfg: &SystemConfig) -> String {
    format!(
        "{index:04}/{}/{}/lat={}/cores={}",
        cfg.profile.name,
        cfg.policy,
        cfg.migration.one_way().as_u64(),
        cfg.user_cores
    )
}

/// The record pass alone: runs `driver` once with a capturing evaluator
/// and returns the plan [`run_driver`] would execute — identical ids,
/// pinned seeds, and configurations. `osoffload serve`'s client uses
/// this to submit a bench sweep whose canonical archive is
/// byte-comparable to the direct runner's.
pub fn record_plan<R>(
    name: &str,
    master_seed: u64,
    driver: impl Fn(Evaluator<'_>) -> R,
) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new(name, master_seed);
    driver(&mut |cfg: SystemConfig| {
        plan.push_pinned(point_id(plan.len(), &cfg), cfg);
        placeholder_report()
    });
    plan
}

/// Runs an experiment driver with its simulation points executed in
/// parallel.
///
/// `driver` is called with an [`Evaluator`] and must request the same
/// configurations in the same order every time it runs (true of all
/// `*_with` drivers). Returns the driver's rows (or `None` if any point
/// failed) together with the executed sweep. Point seeds are pinned to
/// whatever the driver put in each configuration, so results are
/// identical to the sequential path; `master_seed` is recorded in the
/// sweep metadata.
pub fn run_driver<R>(
    name: &str,
    master_seed: u64,
    opts: &RunnerOptions,
    driver: impl Fn(Evaluator<'_>) -> R,
) -> (Option<R>, SweepResult) {
    // Record pass: capture the configurations in request order.
    let plan = record_plan(name, master_seed, &driver);

    // Execute the plan on the parallel executor.
    let sweep = run_plan(&plan, opts);
    if sweep.failures().next().is_some() {
        return (None, sweep);
    }

    // Replay pass: serve the precomputed reports in request order.
    let mut next = 0usize;
    let rows = driver(&mut |_cfg: SystemConfig| {
        let row = sweep
            .rows
            .get(next)
            .expect("replay requested more runs than were recorded");
        next += 1;
        match &row.outcome {
            Outcome::Ok(report) => (**report).clone(),
            Outcome::Failed { .. } | Outcome::TimedOut { .. } => {
                unreachable!("failures handled above")
            }
        }
    });
    assert_eq!(
        next,
        sweep.rows.len(),
        "replay requested fewer runs than were recorded"
    );
    (Some(rows), sweep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_system::experiments::{single_config, Scale};
    use osoffload_system::PolicyKind;
    use osoffload_workload::Profile;

    fn tiny() -> Scale {
        Scale {
            instructions: 40_000,
            warmup: 10_000,
            seed: 3,
            compute_profiles: 1,
        }
    }

    #[test]
    fn record_replay_matches_sequential() {
        let scale = tiny();
        let driver = |ev: Evaluator<'_>| {
            let base = ev(single_config(
                Profile::apache(),
                PolicyKind::Baseline,
                0,
                1,
                scale,
            ));
            let hi = ev(single_config(
                Profile::apache(),
                PolicyKind::HardwarePredictor { threshold: 500 },
                1_000,
                1,
                scale,
            ));
            hi.normalized_to(&base)
        };
        let sequential = driver(&mut osoffload_system::experiments::simulate);
        let opts = RunnerOptions {
            workers: 2,
            quiet: true,
            ..RunnerOptions::default()
        };
        let (parallel, sweep) = run_driver("unit-driver", scale.seed, &opts, driver);
        assert_eq!(sweep.rows.len(), 2);
        assert!(sweep.failures().next().is_none());
        assert_eq!(parallel, Some(sequential));
    }

    #[test]
    fn placeholder_throughput_is_safe_to_normalise_against() {
        let p = placeholder_report();
        assert_eq!(p.normalized_to(&p), 1.0);
    }
}
