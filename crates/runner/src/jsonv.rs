//! Minimal JSON reader for the results journal.
//!
//! The workspace's approved dependency set has no serialisation
//! framework, so the journal parses its own records the same way the
//! fuzzer parses its corpus: a small recursive-descent reader producing
//! a [`Value`] tree. Unsigned integers keep full `u64` fidelity (seeds
//! exceed 2^53, where `f64` starts dropping bits).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (kept exact).
    UInt(u64),
    /// A negative integer that fits `i64` (kept exact).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a `u32`, if it is a non-negative integer that fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The value as an `f64` (integers are converted).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    if !fractional {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("bad number {text:?}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one whole UTF-8 scalar.
                let rest = core::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(r#"{"a":1,"b":-2,"c":1.5,"d":"x\ny","e":[true,false,null]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b"), Some(&Value::Int(-2)));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn u64_seeds_keep_full_fidelity() {
        let v = parse(&format!("{{\"seed\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_torn_documents() {
        assert!(parse("{\"a\":1").is_err());
        assert!(parse("{\"a\":1}garbage").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\"").is_err());
    }
}
