//! Delta-debugging shrinker: reduce a failing case toward
//! [`FuzzCase::default`] while it keeps failing the same oracle.
//!
//! The shrinker is a fixpoint loop over a list of *passes*. Each pass
//! proposes one simplified candidate (drop the phases, halve the
//! instruction budget, reset a field to its default…); a candidate is
//! adopted iff it still lowers to a valid configuration **and** still
//! fails the oracle under investigation. When a full sweep adopts
//! nothing, the case is locally minimal: every single remaining
//! deviation from the default is necessary to reproduce the failure.

use crate::case::FuzzCase;
use crate::oracle::{self, OracleKind};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The locally-minimal failing case.
    pub case: FuzzCase,
    /// Candidates tried (adopted or not) — the cost of the shrink.
    pub attempts: usize,
    /// Candidates adopted.
    pub steps: usize,
}

/// Whether `candidate` still reproduces the failure under `oracle`.
fn still_fails(candidate: &FuzzCase, oracle: OracleKind) -> bool {
    // A candidate that no longer lowers to a valid config is a different
    // bug (or none); never adopt it.
    if candidate.to_config().is_err() {
        return false;
    }
    oracle::check(candidate, oracle).is_err()
}

/// One shrink pass: propose a simplified candidate, or `None` when the
/// field already matches the target.
type Pass = fn(&FuzzCase) -> Option<FuzzCase>;

fn passes() -> Vec<Pass> {
    vec![
        // Structure first: the big optional machinery.
        |c| {
            (!c.phases.is_empty()).then(|| {
                let mut n = c.clone();
                n.phases.clear();
                n
            })
        },
        |c| {
            c.tuner_scale.map(|_| {
                let mut n = c.clone();
                n.tuner_scale = None;
                n
            })
        },
        |c| {
            c.resource_adaptation.map(|_| {
                let mut n = c.clone();
                n.resource_adaptation = None;
                n
            })
        },
        |c| {
            c.half_l2.then(|| {
                let mut n = c.clone();
                n.half_l2 = false;
                n
            })
        },
        |c| {
            c.remote_call.then(|| {
                let mut n = c.clone();
                n.remote_call = false;
                n
            })
        },
        // Policy: first to the default kind, then the default threshold.
        |c| {
            let d = FuzzCase::default();
            (c.policy != d.policy).then(|| {
                let mut n = c.clone();
                n.policy = d.policy;
                n
            })
        },
        // Topology and core parameters.
        |c| {
            (c.user_cores > 1).then(|| {
                let mut n = c.clone();
                n.user_cores = 1.max(c.user_cores / 2);
                n
            })
        },
        |c| {
            (c.os_core_contexts != 1).then(|| {
                let mut n = c.clone();
                n.os_core_contexts = 1;
                n
            })
        },
        |c| {
            (c.os_core_slowdown_milli != 1_000).then(|| {
                let mut n = c.clone();
                n.os_core_slowdown_milli = 1_000;
                n
            })
        },
        |c| {
            (c.migration_one_way != 5_000).then(|| {
                let mut n = c.clone();
                n.migration_one_way = 5_000;
                n
            })
        },
        |c| {
            let d = FuzzCase::default();
            (c.profile != d.profile).then(|| {
                let mut n = c.clone();
                n.profile = d.profile;
                n
            })
        },
        // Run length: halve toward a 1k floor, keeping warm-up in
        // proportion. (Never grow back toward the default: that would
        // ping-pong with this pass and the fixpoint would not terminate.)
        |c| {
            (c.instructions / 2 >= 1_000).then(|| {
                let mut n = c.clone();
                n.instructions = c.instructions / 2;
                n.warmup = c.warmup / 2;
                n
            })
        },
        |c| {
            (c.warmup != 0).then(|| {
                let mut n = c.clone();
                n.warmup = 0;
                n
            })
        },
        // Seed last: the failure often survives on a canonical seed.
        |c| {
            (c.seed != 0).then(|| {
                let mut n = c.clone();
                n.seed = 0;
                n
            })
        },
        |c| {
            (c.seed != 42 && c.seed != 0).then(|| {
                let mut n = c.clone();
                n.seed = 42;
                n
            })
        },
    ]
}

/// Shrinks `case` to a locally-minimal case still failing `oracle`.
///
/// `case` itself must fail `oracle` (the caller just observed that);
/// the result is guaranteed to fail it too.
pub fn shrink(case: &FuzzCase, oracle: OracleKind) -> Shrunk {
    let mut current = case.clone();
    let mut attempts = 0usize;
    let mut steps = 0usize;
    let passes = passes();
    loop {
        let mut adopted = false;
        for pass in &passes {
            // Re-apply each pass until it stops helping (e.g. repeated
            // halving of the instruction budget).
            while let Some(candidate) = pass(&current) {
                attempts += 1;
                if still_fails(&candidate, oracle) {
                    current = candidate;
                    steps += 1;
                    adopted = true;
                } else {
                    break;
                }
            }
        }
        if !adopted {
            return Shrunk {
                case: current,
                attempts,
                steps,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::PolicySpec;
    use crate::gen;

    /// A synthetic "bug": an oracle that fails whenever the case uses
    /// the remote-call mechanism with more than one user core. The
    /// shrinker cannot know that; it must discover the minimal form.
    fn synthetic_fails(c: &FuzzCase) -> bool {
        c.remote_call && c.user_cores >= 2
    }

    /// Drives the shrink loop against the synthetic predicate (the
    /// pass/fixpoint machinery, without needing a real simulator bug).
    fn shrink_synthetic(case: &FuzzCase) -> FuzzCase {
        let mut current = case.clone();
        loop {
            let mut adopted = false;
            for pass in passes() {
                while let Some(candidate) = pass(&current) {
                    if candidate.to_config().is_ok() && synthetic_fails(&candidate) {
                        current = candidate;
                        adopted = true;
                    } else {
                        break;
                    }
                }
            }
            if !adopted {
                return current;
            }
        }
    }

    #[test]
    fn shrinks_to_the_essential_fields() {
        // A noisy case where only {remote_call, user_cores>=2} matter.
        let mut case = gen::generate(0xDEAD_BEEF);
        case.remote_call = true;
        case.resource_adaptation = None;
        case.user_cores = 4;
        case.policy = PolicySpec::Di {
            threshold: 5_000,
            cost: 250,
        };
        case.phases = vec![(10_000, "mcf".into())];
        case.tuner_scale = None;
        case.half_l2 = true;
        assert!(synthetic_fails(&case));

        let min = shrink_synthetic(&case);
        assert!(synthetic_fails(&min));
        assert!(min.phases.is_empty());
        assert!(!min.half_l2);
        assert_eq!(min.user_cores, 2, "halved to the smallest failing value");
        assert_eq!(min.policy, FuzzCase::default().policy);
        assert_eq!(min.seed, 0);
        assert!(
            min.instructions < 2_000,
            "halved to the floor: {}",
            min.instructions
        );
        // Only the two essential deviations (plus the shrunken run
        // length) remain.
        let fields: Vec<&str> = min
            .diff_from_default()
            .into_iter()
            .map(|(f, _)| f)
            .collect();
        assert!(fields.contains(&"remote_call"), "{fields:?}");
        assert!(fields.contains(&"user_cores"), "{fields:?}");
        assert!(fields.len() <= 5, "not locally minimal: {fields:?}");
    }

    #[test]
    fn passes_only_reduce_run_length_for_the_default_case() {
        // From the default case the only proposals left are run-length
        // reductions (default is not at the 1k floor); nothing may move
        // a field *away* from its default.
        let d = FuzzCase::default();
        for (i, pass) in passes().into_iter().enumerate() {
            let Some(candidate) = pass(&d) else { continue };
            for (field, value) in candidate.diff_from_default() {
                assert!(
                    field == "instructions" || field == "warmup",
                    "pass {i} moved {field} off default (to {value})"
                );
            }
        }
    }
}
