//! `osoffload-fuzz` — deterministic differential fuzzing CLI.
//!
//! ```text
//! cargo run -p osoffload-fuzz --                       # 200 cases, master seed 0
//! cargo run -p osoffload-fuzz -- --iters 500 --master-seed 42
//! cargo run -p osoffload-fuzz -- --time-budget 60      # smoke tier
//! cargo run -p osoffload-fuzz -- --oracle differential,invariants
//! cargo run -p osoffload-fuzz -- repro fuzz/corpus/<file>.json
//! cargo run -p osoffload-fuzz -- corpus                # replay every archive
//! ```
//!
//! Exit codes: `0` all checks passed, `1` at least one oracle failure,
//! `2` usage or I/O error.
//!
//! With a fixed `--iters`, two runs with the same master seed produce
//! byte-identical logs and corpus files (no timestamps, no host state in
//! the output). `--time-budget` trades that for wall-clock bounding: the
//! case *sequence* is still deterministic, only where it stops varies.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use osoffload_fuzz::{corpus, gen::CaseGen, oracle, shrink, CorpusEntry, OracleKind};

// The alloc oracle is vacuous unless the process counts allocations, so
// the fuzz binary installs the same counting shim as the repo's
// alloc-audit test: report every alloc/realloc to the audit hook, which
// only tallies them inside the simulator's measured region.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};

    use osoffload_sim::alloc_audit;

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            alloc_audit::note_alloc();
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            alloc_audit::note_alloc();
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;
}

const USAGE: &str = "\
osoffload-fuzz — deterministic differential fuzzer

USAGE:
    osoffload-fuzz [OPTIONS]              fuzz (default: 200 cases)
    osoffload-fuzz repro <FILE>           replay one archived repro
    osoffload-fuzz corpus [OPTIONS]       replay every archived repro

OPTIONS:
    --iters <N>           number of cases to run
    --time-budget <SECS>  stop after this many seconds instead
    --master-seed <SEED>  campaign seed (default 0)
    --oracle <NAMES>      comma-separated subset of:
                          differential,predictor,invariants,telemetry,alloc,
                          crash-recovery,profile,lane-stepper
                          (repeatable; default: all)
    --corpus-dir <DIR>    repro archive directory (default fuzz/corpus)
    -h, --help            this text";

struct FuzzOptions {
    iters: Option<u64>,
    time_budget: Option<Duration>,
    master_seed: u64,
    oracles: Vec<OracleKind>,
    corpus_dir: PathBuf,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            iters: None,
            time_budget: None,
            master_seed: 0,
            oracles: OracleKind::ALL.to_vec(),
            corpus_dir: PathBuf::from("fuzz/corpus"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("-h" | "--help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("repro") => cmd_repro(&args[1..]),
        Some("corpus") => match parse_options(&args[1..]) {
            Ok(opts) => cmd_corpus(&opts.corpus_dir),
            Err(e) => usage_error(&e),
        },
        _ => match parse_options(&args) {
            Ok(opts) => cmd_fuzz(&opts),
            Err(e) => usage_error(&e),
        },
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<FuzzOptions, String> {
    let mut opts = FuzzOptions::default();
    let mut explicit_oracles: Vec<OracleKind> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--iters" => {
                let v = value("--iters")?;
                opts.iters = Some(v.parse().map_err(|_| format!("bad --iters {v:?}"))?);
            }
            "--time-budget" => {
                let v = value("--time-budget")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad --time-budget {v:?}"))?;
                opts.time_budget = Some(Duration::from_secs(secs));
            }
            "--master-seed" => {
                let v = value("--master-seed")?;
                opts.master_seed = v.parse().map_err(|_| format!("bad --master-seed {v:?}"))?;
            }
            "--oracle" => {
                for name in value("--oracle")?.split(',') {
                    let oracle = OracleKind::parse(name.trim())
                        .ok_or_else(|| format!("unknown oracle {name:?}"))?;
                    if !explicit_oracles.contains(&oracle) {
                        explicit_oracles.push(oracle);
                    }
                }
            }
            "--corpus-dir" => opts.corpus_dir = PathBuf::from(value("--corpus-dir")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !explicit_oracles.is_empty() {
        opts.oracles = explicit_oracles;
    }
    Ok(opts)
}

fn cmd_fuzz(opts: &FuzzOptions) -> ExitCode {
    let oracle_names: Vec<&str> = opts.oracles.iter().map(|o| o.name()).collect();
    println!(
        "osoffload-fuzz: master seed {}, oracles [{}]",
        opts.master_seed,
        oracle_names.join(", ")
    );
    let iters = match (opts.iters, opts.time_budget) {
        (Some(n), _) => n,
        (None, Some(_)) => u64::MAX,
        (None, None) => 200,
    };
    let deadline = opts.time_budget.map(|budget| Instant::now() + budget);

    let mut generator = CaseGen::new(opts.master_seed);
    let mut executed = 0u64;
    let mut failures = 0u64;
    while executed < iters {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let (case_seed, case) = generator.next_case();
        executed += 1;
        for &kind in &opts.oracles {
            let Err(failure) = oracle::check(&case, kind) else {
                continue;
            };
            failures += 1;
            println!("FAIL case seed {case_seed:#018x}: {failure}");
            let shrunk = shrink::shrink(&case, kind);
            // Re-check for the detail of the *minimal* case (the
            // original detail may mention machinery the shrink removed).
            let detail = match oracle::check(&shrunk.case, kind) {
                Err(f) => f.detail,
                Ok(()) => failure.detail, // unreachable: shrink preserves failure
            };
            let diff = shrunk.case.diff_from_default();
            println!(
                "  shrunk in {} step(s) ({} candidate(s)) to {} field(s) off default:",
                shrunk.steps,
                shrunk.attempts,
                diff.len()
            );
            for (field, value) in &diff {
                println!("    {field} = {value}");
            }
            let entry = CorpusEntry {
                oracle: kind,
                case_seed,
                detail,
                case: shrunk.case,
            };
            match corpus::archive(&opts.corpus_dir, &entry) {
                Ok(path) => {
                    println!("  archived: {}", path.display());
                    println!("  replay:   {}", entry.replay_command());
                }
                Err(e) => eprintln!("  could not archive repro: {e}"),
            }
        }
        if executed.is_multiple_of(100) {
            println!("  {executed} cases, {failures} failure(s)");
        }
    }

    println!(
        "done: {executed} case(s) x {} oracle(s), {failures} failure(s)",
        opts.oracles.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_repro(args: &[String]) -> ExitCode {
    let [file] = args else {
        return usage_error("repro takes exactly one archive file");
    };
    let entry = match corpus::load(std::path::Path::new(file)) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "repro {} (case seed {:#018x}, archived under oracle {})",
        file, entry.case_seed, entry.oracle
    );
    println!("  archived detail: {}", entry.detail);
    let diff = entry.case.diff_from_default();
    println!("  {} field(s) off default:", diff.len());
    for (field, value) in &diff {
        println!("    {field} = {value}");
    }
    report_replay(&entry)
}

fn cmd_corpus(dir: &std::path::Path) -> ExitCode {
    let paths = match corpus::list(dir) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    if paths.is_empty() {
        println!("corpus {} is empty", dir.display());
        return ExitCode::SUCCESS;
    }
    let mut failing = 0usize;
    for path in &paths {
        match corpus::load(path) {
            Ok(entry) => {
                let result = corpus::replay(&entry);
                if result.is_empty() {
                    println!("PASS {}", path.display());
                } else {
                    failing += 1;
                    println!("FAIL {}", path.display());
                    for f in result {
                        println!("     {f}");
                    }
                }
            }
            Err(e) => {
                failing += 1;
                println!("FAIL {path:?}: {e}", path = path.display());
            }
        }
    }
    println!("corpus: {} archive(s), {failing} failing", paths.len());
    if failing == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Replays `entry` through every oracle and prints per-oracle results.
fn report_replay(entry: &CorpusEntry) -> ExitCode {
    let failures = corpus::replay(entry);
    for kind in OracleKind::ALL {
        match failures.iter().find(|f| f.oracle == kind) {
            Some(f) => println!("  FAIL {}: {}", kind, f.detail),
            None => println!("  pass {kind}"),
        }
    }
    if failures.is_empty() {
        println!("repro passes every oracle (the archived bug is fixed)");
        ExitCode::SUCCESS
    } else {
        println!("repro still failing {} oracle(s)", failures.len());
        ExitCode::FAILURE
    }
}
