//! Minimal JSON reader/writer for corpus files.
//!
//! The approved dependency set has no serialisation framework, so the
//! corpus format is handled by a small hand-rolled tree. One deliberate
//! departure from naive implementations: unsigned integers are kept as
//! [`Value::UInt`] all the way through — seeds are full-width `u64`s and
//! would be corrupted by an `f64` round-trip.

use core::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without exponent or fraction. Kept exact:
    /// `u64` seeds do not survive an `f64` round-trip.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Insertion order is preserved (the writer emits keys in
    /// this order, which keeps corpus files byte-stable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an unsigned integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value (compact, no whitespace, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialises with two-space indentation — the corpus files are meant
    /// to be read and hand-edited.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => write_float(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` renders integral floats without a point; keep the type
        // distinction through a round-trip.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Corpus strings are ASCII identifiers; reject
                            // surrogate pairs rather than mis-handle them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::Int(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_seeds_round_trip_exactly() {
        // 2^63 + 3 is not representable in f64; a float-only parser
        // corrupts it.
        for n in [0u64, 1, u64::MAX, (1 << 63) + 3, 0xD15C_0C0A] {
            let j = Value::UInt(n).to_json();
            assert_eq!(parse(&j).unwrap(), Value::UInt(n), "{n}");
        }
    }

    #[test]
    fn document_round_trips() {
        let doc = Value::Object(vec![
            ("name".into(), Value::Str("we\"ird\\s\n".into())),
            ("seed".into(), Value::UInt(u64::MAX)),
            ("neg".into(), Value::Int(-7)),
            ("x".into(), Value::Float(0.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "list".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 3, "b": "x", "c": [true], "d": false}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("a").and_then(Value::as_usize), Some(3));
        assert_eq!(doc.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(doc.get("d").and_then(Value::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["", "{", "[1,", "\"x", "{\"a\" 1}", "nul", "01x", "{} {}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = parse("[1, ?]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn floats_keep_their_point() {
        assert_eq!(Value::Float(2.0).to_json(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(parse("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }
}
