//! Deterministic case generation.
//!
//! The generator reuses the runner's RNG-splitting scheme
//! ([`SeedSequence`]): a master seed derives one *case seed* per
//! position, and each case is a pure function of its case seed alone.
//! Two consequences the CLI leans on:
//!
//! * the whole campaign replays bit-identically from `--master-seed`;
//! * any single case replays from just its case seed (which is what the
//!   corpus archives), without re-running the cases before it.

use crate::case::{FuzzCase, PolicySpec};
use osoffload_sim::{Rng64, SeedSequence};
use osoffload_system::DispatchPolicy;
use osoffload_workload::Profile;

/// Streams [`FuzzCase`]s derived from a master seed.
#[derive(Debug)]
pub struct CaseGen {
    seeder: SeedSequence,
}

impl CaseGen {
    /// Creates a generator over `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        CaseGen {
            seeder: SeedSequence::new(master_seed),
        }
    }

    /// The next case and the seed it was derived from.
    pub fn next_case(&mut self) -> (u64, FuzzCase) {
        let case_seed = self.seeder.next_seed();
        (case_seed, generate(case_seed))
    }
}

fn pick<T: Copy>(rng: &mut Rng64, options: &[T]) -> T {
    options[(rng.next_u64() % options.len() as u64) as usize]
}

/// One-in-`n` event.
fn rare(rng: &mut Rng64, n: u64) -> bool {
    rng.next_u64().is_multiple_of(n)
}

/// Builds the case for `case_seed` — a pure function, so an archived
/// seed reproduces its case forever.
pub fn generate(case_seed: u64) -> FuzzCase {
    let mut rng = Rng64::seed_from(case_seed);
    let profiles: Vec<&'static str> = Profile::all_server()
        .into_iter()
        .chain(Profile::all_compute())
        .map(|p| p.name)
        .collect();

    let profile = pick(&mut rng, &profiles).to_string();
    let threshold = pick(&mut rng, &[0u64, 100, 500, 1_000, 5_000, 10_000]);
    let policy = match rng.next_u64() % 10 {
        0 => PolicySpec::Baseline,
        1 => PolicySpec::Always,
        2 | 3 => PolicySpec::Hi { threshold },
        4 => PolicySpec::HiDm { threshold },
        5 => PolicySpec::HiSized {
            threshold,
            entries: pick(&mut rng, &[1usize, 8, 64, 200]),
        },
        6 | 7 => PolicySpec::Di {
            threshold,
            cost: pick(&mut rng, &[50u64, 120, 250]),
        },
        8 => PolicySpec::Si {
            stub_cost: pick(&mut rng, &[10u64, 25]),
        },
        _ => PolicySpec::Oracle { threshold },
    };

    // Sizes kept small enough that a full oracle battery on one case is
    // tens of milliseconds, large enough to cross epoch and phase
    // boundaries.
    let instructions = 20_000 + (rng.next_u64() % 81) * 1_000; // 20k..=100k
    let warmup = match rng.next_u64() % 4 {
        0 => 0,
        1 => instructions / 8,
        2 => instructions / 4,
        _ => instructions / 2,
    };

    let offloading = !matches!(policy, PolicySpec::Baseline);
    let mut case = FuzzCase {
        profile,
        phases: Vec::new(),
        policy,
        migration_one_way: pick(&mut rng, &[100u64, 1_000, 5_000]),
        remote_call: offloading && rare(&mut rng, 4),
        os_core_slowdown_milli: pick(&mut rng, &[600u64, 1_000, 1_667]),
        os_core_contexts: if rare(&mut rng, 8) { 2 } else { 1 },
        os_cores: 1,
        dispatch: DispatchPolicy::LeastLoaded,
        os_cold_penalty: 0,
        resource_adaptation: None,
        user_cores: 1 + (rng.next_u64() % 4) as usize,
        instructions,
        warmup,
        seed: rng.next_u64(),
        tuner_scale: None,
        half_l2: rare(&mut rng, 8),
    };

    if offloading && rare(&mut rng, 8) {
        case.resource_adaptation = Some(pick(&mut rng, &[600u64, 800]));
        case.remote_call = false;
    }
    // The tuner only composes with threshold policies.
    if matches!(
        case.policy,
        PolicySpec::Hi { .. } | PolicySpec::HiDm { .. } | PolicySpec::HiSized { .. }
    ) && rare(&mut rng, 6)
    {
        // paper epochs / 2500 ≈ 10k-instruction sample epochs — several
        // tuner decisions inside one short run.
        case.tuner_scale = Some(pick(&mut rng, &[2_500u64, 10_000]));
    }
    if rare(&mut rng, 6) {
        let other = pick(&mut rng, &profiles).to_string();
        case.phases.push((instructions / 2, other));
    }
    // Multi-OS-core topologies, so every oracle exercises the dispatch
    // pool (the single-core default reduces to the legacy queue).
    if offloading && rare(&mut rng, 3) {
        case.os_cores = 2 + (rng.next_u64() % 3) as usize; // 2..=4
        case.dispatch = pick(&mut rng, &DispatchPolicy::ALL);
        if rare(&mut rng, 2) {
            case.os_cold_penalty = pick(&mut rng, &[100u64, 500, 2_000]);
        }
    }
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_case_seed() {
        let mut g1 = CaseGen::new(42);
        let mut g2 = CaseGen::new(42);
        for _ in 0..64 {
            let (s1, c1) = g1.next_case();
            let (s2, c2) = g2.next_case();
            assert_eq!(s1, s2);
            assert_eq!(c1, c2);
            assert_eq!(generate(s1), c1, "case must replay from its seed alone");
        }
    }

    #[test]
    fn case_seeds_match_the_runners_derivation() {
        // The fuzzer promises the same seed schedule as ExperimentPlan:
        // master → SeedSequence → one split per position.
        let mut gen = CaseGen::new(7);
        let mut seq = SeedSequence::new(7);
        for _ in 0..16 {
            assert_eq!(gen.next_case().0, seq.next_seed());
        }
    }

    #[test]
    fn every_generated_case_is_valid() {
        let mut gen = CaseGen::new(0xF00D);
        for i in 0..300 {
            let (seed, case) = gen.next_case();
            assert!(
                case.to_config().is_ok(),
                "case {i} (seed {seed:#x}) invalid: {case:?}"
            );
        }
    }

    #[test]
    fn generation_covers_the_config_space() {
        let mut gen = CaseGen::new(1);
        let cases: Vec<FuzzCase> = (0..400).map(|_| gen.next_case().1).collect();
        assert!(cases.iter().any(|c| !c.phases.is_empty()), "phases");
        assert!(cases.iter().any(|c| c.tuner_scale.is_some()), "tuner");
        assert!(cases.iter().any(|c| c.half_l2), "half_l2");
        assert!(cases.iter().any(|c| c.remote_call), "remote_call");
        assert!(
            cases.iter().any(|c| c.resource_adaptation.is_some()),
            "adaptation"
        );
        assert!(cases.iter().any(|c| c.os_core_contexts > 1), "smt contexts");
        assert!(cases.iter().any(|c| c.os_cores > 1), "multi OS cores");
        assert!(cases.iter().any(|c| c.os_cold_penalty > 0), "cold penalty");
        let dispatches: std::collections::HashSet<&'static str> = cases
            .iter()
            .filter(|c| c.os_cores > 1)
            .map(|c| c.dispatch.label())
            .collect();
        assert_eq!(dispatches.len(), 4, "all dispatch policies generated");
        let policies: std::collections::HashSet<&'static str> = cases
            .iter()
            .map(|c| match c.policy {
                PolicySpec::Baseline => "baseline",
                PolicySpec::Always => "always",
                PolicySpec::Hi { .. } => "hi",
                PolicySpec::HiDm { .. } => "hi-dm",
                PolicySpec::HiSized { .. } => "hi-sized",
                PolicySpec::Di { .. } => "di",
                PolicySpec::Si { .. } => "si",
                PolicySpec::Oracle { .. } => "oracle",
            })
            .collect();
        assert_eq!(policies.len(), 8, "all policy kinds generated");
    }
}
