//! The eight oracles a case is judged by.
//!
//! Each oracle runs the case (or a stream derived from it) and checks a
//! property that must hold for *every* valid configuration:
//!
//! 1. **differential** — the batched stepper's report equals the
//!    retained per-instruction reference stepper's, field for field;
//! 2. **predictor** — the hash-indexed [`CamPredictor`] and the
//!    linear-scan [`ReferenceCamPredictor`] make identical predictions
//!    and hold identical table state after every step;
//! 3. **invariants** — conservation and range properties of the
//!    [`SimReport`] (accounting sums, probabilities in `[0, 1]`,
//!    ordered percentiles, per-OS-core busy cycles summing to the
//!    pool aggregate, and no dispatch starting before its arrival);
//! 4. **telemetry** — enabling telemetry must not change the report;
//! 5. **alloc** — the measured region performs zero heap allocations
//!    (meaningful only under a counting `#[global_allocator]`, which the
//!    fuzz binary and the corpus regression test both install; without
//!    one the oracle passes vacuously);
//! 6. **crash-recovery** — a journaled campaign derived from the case,
//!    run under a seed-derived fault plan (injected panics, delays and
//!    journal I/O errors), then "crashed" by truncating its journal and
//!    resumed, must produce a final archive byte-identical to the
//!    uninterrupted run — and fault recovery must not change any result
//!    relative to a fault-free reference;
//! 7. **profile** — enabling the cycle-attribution profiler must not
//!    change the report, and the per-phase totals it collects must
//!    reconcile exactly with the report's own cycle accounting
//!    (decision overhead, migration, queue wait, throttle);
//! 8. **lane-stepper** — replaying the case through the lane engine
//!    ([`LaneStepper`]) at widths 1, 2, 4 and 8, co-resident with
//!    policy/latency variants of itself (so lanes diverge in offload
//!    decisions and rejoin on shared tape positions), must produce a
//!    report byte-identical to the scalar [`Simulation::run`] for every
//!    lane.

use crate::case::FuzzCase;
use crate::json;
use osoffload_core::{AState, CamPredictor, ReferenceCamPredictor, RunLengthPredictor};
use osoffload_obs::TelemetryMode;
use osoffload_sim::alloc_audit;
use osoffload_system::{LaneStepper, Phase, PolicyKind, SimReport, Simulation};
use osoffload_workload::{Segment, ThreadWorkload};

/// Which oracle to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Batched vs reference stepper report equality.
    Differential,
    /// Indexed vs linear-scan CAM predictor equality.
    Predictor,
    /// Report conservation/range invariants.
    Invariants,
    /// Telemetry-on vs telemetry-off report identity.
    Telemetry,
    /// Measured region allocates nothing.
    Alloc,
    /// Kill-and-resume a journaled campaign under injected faults; the
    /// resumed archive must be byte-identical.
    CrashRecovery,
    /// Profiling-on vs profiling-off report identity, plus the profile's
    /// phase totals reconciling with the report's cycle accounting.
    Profile,
    /// Lane-engine replay at widths 1/2/4/8, mixed with co-resident
    /// variants, vs memoised scalar runs: every lane's report must be
    /// byte-identical to [`Simulation::run`].
    LaneStepper,
}

impl OracleKind {
    /// Every oracle, in canonical run order.
    pub const ALL: [OracleKind; 8] = [
        OracleKind::Differential,
        OracleKind::Predictor,
        OracleKind::Invariants,
        OracleKind::Telemetry,
        OracleKind::Alloc,
        OracleKind::CrashRecovery,
        OracleKind::Profile,
        OracleKind::LaneStepper,
    ];

    /// Stable CLI / corpus-file name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Differential => "differential",
            OracleKind::Predictor => "predictor",
            OracleKind::Invariants => "invariants",
            OracleKind::Telemetry => "telemetry",
            OracleKind::Alloc => "alloc",
            OracleKind::CrashRecovery => "crash-recovery",
            OracleKind::Profile => "profile",
            OracleKind::LaneStepper => "lane-stepper",
        }
    }

    /// Parses a [`name`](Self::name).
    pub fn parse(s: &str) -> Option<OracleKind> {
        OracleKind::ALL.into_iter().find(|o| o.name() == s)
    }
}

impl core::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A failed oracle check.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Which oracle failed.
    pub oracle: OracleKind,
    /// Deterministic human-readable explanation.
    pub detail: String,
}

impl core::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "oracle {}: {}", self.oracle, self.detail)
    }
}

/// Runs one oracle over `case`.
///
/// A case that does not lower to a valid configuration fails whichever
/// oracle it was checked under (relevant only for hand-edited corpus
/// files — the generator and the shrinker produce valid cases).
pub fn check(case: &FuzzCase, oracle: OracleKind) -> Result<(), OracleFailure> {
    let fail = |detail: String| OracleFailure { oracle, detail };
    let cfg = case
        .to_config()
        .map_err(|e| fail(format!("case does not lower to a valid config: {e}")))?;
    match oracle {
        OracleKind::Differential => {
            let batched = Simulation::new(cfg.clone()).run();
            let reference = Simulation::new(cfg).run_reference();
            if batched != reference {
                return Err(fail(format!(
                    "batched and reference reports differ: {}",
                    report_diff(&batched, &reference)
                )));
            }
            Ok(())
        }
        OracleKind::Predictor => check_predictor(case).map_err(fail),
        OracleKind::Invariants => {
            let report = Simulation::new(cfg.clone()).run();
            check_invariants(&cfg, &report).map_err(fail)
        }
        OracleKind::Telemetry => {
            let base = Simulation::new(cfg.clone()).run();
            let mut noop_cfg = cfg.clone();
            noop_cfg.telemetry = TelemetryMode::Noop;
            let noop = Simulation::new(noop_cfg).run();
            if noop != base {
                return Err(fail(format!(
                    "telemetry=noop changed the report: {}",
                    report_diff(&base, &noop)
                )));
            }
            let mut full_cfg = cfg;
            full_cfg.telemetry = TelemetryMode::Full;
            let (full, _telemetry) = Simulation::new(full_cfg).run_with_telemetry();
            if full != base {
                return Err(fail(format!(
                    "telemetry=full changed the report: {}",
                    report_diff(&base, &full)
                )));
            }
            Ok(())
        }
        OracleKind::Alloc => {
            // Phase switches and tuner decisions rebuild state at epoch
            // boundaries by design; the allocation-free contract covers
            // the steady-state stepper, so normalise those options away.
            let mut normalized = case.clone();
            normalized.phases.clear();
            normalized.tuner_scale = None;
            let cfg = normalized
                .to_config()
                .map_err(|e| fail(format!("normalised case invalid: {e}")))?;
            let _ = alloc_audit::take_region_allocs();
            let report = Simulation::new(cfg).run();
            let allocs = alloc_audit::take_region_allocs();
            if allocs != 0 {
                return Err(fail(format!(
                    "measured region allocated {allocs} times (throughput {:.4})",
                    report.throughput()
                )));
            }
            Ok(())
        }
        OracleKind::CrashRecovery => check_crash_recovery(case).map_err(fail),
        OracleKind::LaneStepper => check_lane_stepper(case).map_err(fail),
        OracleKind::Profile => {
            let base = Simulation::new(cfg.clone()).run();
            let mut prof_cfg = cfg.clone();
            prof_cfg.profiling = true;
            let (profiled, profile) = Simulation::new(prof_cfg).run_with_profile();
            if profiled != base {
                return Err(fail(format!(
                    "profiling changed the report: {}",
                    report_diff(&base, &profiled)
                )));
            }
            let eq = |what: &str, got: u64, want: u64| {
                if got == want {
                    Ok(())
                } else {
                    Err(format!("profile {what}: {got} != report's {want}"))
                }
            };
            eq(
                "decision total",
                profile.total(Phase::Decision),
                base.cycle_breakdown.decision,
            )
            .map_err(&fail)?;
            eq(
                "queue-wait total",
                profile.total(Phase::QueueWait),
                base.cycle_breakdown.queue_wait,
            )
            .map_err(&fail)?;
            eq(
                "throttled total",
                profile.total(Phase::Throttled),
                base.throttled_cycles,
            )
            .map_err(&fail)?;
            let migration =
                profile.total(Phase::MigrationOut) + profile.total(Phase::MigrationBack);
            if cfg.resource_adaptation.is_none() {
                eq("migration total", migration, base.cycle_breakdown.migration).map_err(&fail)?;
            } else {
                // Adaptation never migrates; the breakdown still charges
                // the model's nominal cost, so only the profiler's view
                // is pinned here.
                eq("migration total under adaptation", migration, 0).map_err(&fail)?;
            }
            eq(
                "decision count",
                profile.count(Phase::Decision),
                base.offloads + base.local_invocations,
            )
            .map_err(&fail)?;
            Ok(())
        }
    }
}

/// End-to-end crash-recovery check: build a small campaign from the
/// case, run it once uninterrupted (fault-free reference), once under a
/// seed-derived fault plan with a write-ahead journal, then "crash" the
/// campaign by truncating the journal (including a torn half-line) and
/// resume it. The resumed archive must be byte-identical to the
/// uninterrupted faulty run, and fault recovery must not have changed
/// any result relative to the reference.
fn check_crash_recovery(case: &FuzzCase) -> Result<(), String> {
    use osoffload_runner::{run_plan, ExperimentPlan, FaultConfig, FaultPlan, RunnerOptions};
    use std::sync::atomic::{AtomicU64, Ordering};

    // Clamp the case to oracle-sized runs: the property under test is
    // journal/resume correctness, not simulation scale.
    let mut base = case.clone();
    base.instructions = base.instructions.clamp(5_000, 30_000);
    base.warmup = base.warmup.min(base.instructions / 4);
    let cfg = base
        .to_config()
        .map_err(|e| format!("clamped case invalid: {e}"))?;

    const POINTS: usize = 3;
    let mut plan = ExperimentPlan::new("crash-recovery", case.seed);
    for i in 0..POINTS {
        plan.push(format!("cr{i}"), cfg.clone());
    }
    let fault_cfg = FaultConfig {
        panic_pct: 80,
        max_panics: 2,
        delay_pct: 50,
        max_delay_ms: 3,
        io_pct: 60,
        max_io_failures: 2,
    };
    let fault_plan = FaultPlan::derive(case.seed, POINTS, &fault_cfg);
    let retries = fault_plan.max_panics();

    static DIR_N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osoffload_fuzz_cr_{}_{:x}_{}",
        std::process::id(),
        case.seed,
        DIR_N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("temp dir: {e}"))?;
    let journal_path = dir.join("campaign.journal");
    let result = (|| {
        let canonical = RunnerOptions {
            workers: 2,
            quiet: true,
            canonical: true,
            backoff_ms: 1,
            ..RunnerOptions::default()
        };

        // 1. Fault-free reference.
        let reference = run_plan(&plan, &canonical);

        // 2. Uninterrupted faulty run, journaled.
        let faulty_opts = RunnerOptions {
            retries,
            journal: Some(journal_path.clone()),
            fault_plan: Some(fault_plan.clone()),
            ..canonical.clone()
        };
        let faulty = run_plan(&plan, &faulty_opts);
        if faulty.failures().count() != 0 {
            return Err(format!(
                "faulty run failed {} points despite retries={retries} ({})",
                faulty.failures().count(),
                fault_plan.describe()
            ));
        }
        for (r, f) in reference.rows.iter().zip(&faulty.rows) {
            if r.stable_json() != f.stable_json() {
                return Err(format!(
                    "fault recovery changed point {}: {} vs {}",
                    r.index,
                    r.stable_json(),
                    f.stable_json()
                ));
            }
        }
        let expected = faulty.to_json();

        // 3. Crash: keep the header plus k whole records and a torn
        // fragment of the next line, then resume.
        let text = std::fs::read_to_string(&journal_path).map_err(|e| format!("journal: {e}"))?;
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        let records = lines.len().saturating_sub(1);
        let keep = (case.seed % (POINTS as u64 + 1)) as usize % (records + 1);
        let mut truncated: String = lines[..1 + keep].concat();
        if let Some(next) = lines.get(1 + keep) {
            truncated.push_str(&next[..next.len() / 2]); // torn write
        }
        std::fs::write(&journal_path, &truncated).map_err(|e| format!("truncate: {e}"))?;
        let resume_opts = RunnerOptions {
            retries,
            resume: Some(journal_path.clone()),
            fault_plan: Some(fault_plan.clone()),
            ..canonical
        };
        let resumed = run_plan(&plan, &resume_opts);
        if resumed.to_json() != expected {
            return Err(format!(
                "resumed archive differs after keeping {keep}/{records} records \
                 ({}): resumed {} vs uninterrupted {}",
                fault_plan.describe(),
                resumed.to_json(),
                expected
            ));
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Lane-engine differential check: the case and three co-resident
/// variants of it (a different threshold, an always-offload lane, and a
/// different migration latency — all [`tape_compatible`] with the
/// original, none identical in behaviour) are packed into lanes at
/// widths 1, 2, 4 and 8 and compared against memoised scalar runs.
/// Mixing variants makes the lanes *diverge* (different offload
/// decisions at the same tape position) and *rejoin* (identical drawn
/// segments either side), which is exactly the sharing the tape replay
/// must never let leak between lanes.
///
/// [`tape_compatible`]: osoffload_system::tape_compatible
fn check_lane_stepper(case: &FuzzCase) -> Result<(), String> {
    // Clamp to oracle scale: the property under test is lane/scalar
    // identity, not simulation scale.
    let mut base = case.clone();
    base.instructions = base.instructions.clamp(2_000, 30_000);
    base.warmup = base.warmup.min(base.instructions / 4);

    // Co-resident variants sharing the base case's workload shape.
    // Variants that fail to lower (a policy the rest of the case
    // rejects) are skipped; the base case itself must lower.
    let mut variant_cases = vec![base.clone()];
    variant_cases.push(FuzzCase {
        policy: crate::case::PolicySpec::Always,
        ..base.clone()
    });
    variant_cases.push(FuzzCase {
        policy: crate::case::PolicySpec::Hi { threshold: 100 },
        ..base.clone()
    });
    variant_cases.push(FuzzCase {
        migration_one_way: base.migration_one_way / 2 + 1,
        ..base.clone()
    });
    base.to_config()
        .map_err(|e| format!("clamped case invalid: {e}"))?;
    let variants: Vec<osoffload_system::SystemConfig> = variant_cases
        .iter()
        .filter_map(|c| c.to_config().ok())
        .collect();

    // Memoised scalar references, one per variant, computed on first
    // use (width 1 only ever needs the first).
    let mut scalar: Vec<Option<SimReport>> = vec![None; variants.len()];
    for width in [1usize, 2, 4, 8] {
        let configs: Vec<_> = (0..width)
            .map(|i| variants[i % variants.len()].clone())
            .collect();
        let reports = LaneStepper::new(configs)
            .map_err(|e| format!("width {width}: stepper rejected configs: {e}"))?
            .run();
        for (lane, report) in reports.iter().enumerate() {
            let v = lane % variants.len();
            let reference =
                scalar[v].get_or_insert_with(|| Simulation::new(variants[v].clone()).run());
            if report != reference {
                return Err(format!(
                    "width {width}, lane {lane} (variant {v}) differs from scalar: {}",
                    report_diff(report, reference)
                ));
            }
        }
    }
    Ok(())
}

/// Runs `case` through every oracle, collecting all failures.
pub fn check_all(case: &FuzzCase) -> Vec<OracleFailure> {
    OracleKind::ALL
        .into_iter()
        .filter_map(|o| check(case, o).err())
        .collect()
}

/// Differential check of the two CAM organisations, driven by the
/// case's own workload stream (AState images and observed run lengths
/// exactly as the simulator would see them).
fn check_predictor(case: &FuzzCase) -> Result<(), String> {
    let profile = osoffload_workload::Profile::by_name(&case.profile)
        .ok_or_else(|| format!("unknown profile {:?}", case.profile))?;
    // Small capacities stress eviction; the paper's 200 entries stress
    // steady state. Derive from the case seed so campaigns cover both.
    let capacity = [1usize, 2, 8, 200][(case.seed % 4) as usize];
    let mut cam = CamPredictor::new(capacity);
    let mut reference = ReferenceCamPredictor::new(capacity);
    let mut wl = ThreadWorkload::new(profile, 0, case.seed);
    let mut generated = 0u64;
    let mut invocations = 0u64;
    while generated < case.instructions && invocations < 2_000 {
        match wl.next_segment() {
            Segment::User { len } => generated += len,
            Segment::Os(inv) => {
                generated += inv.actual_len;
                invocations += 1;
                // Same register image the simulator folds into an AState
                // tag; the exact folding does not matter, identical
                // streams on both sides do.
                let tag = inv.regs[0] ^ inv.regs[1].rotate_left(21) ^ inv.regs[2].rotate_left(42);
                let astate = AState::from(tag);
                let pc = cam.predict(astate);
                let pr = reference.predict(astate);
                if pc != pr {
                    return Err(format!(
                        "invocation {invocations}: indexed predicted {pc:?}, reference {pr:?}"
                    ));
                }
                cam.learn(astate, pc, inv.actual_len);
                reference.learn(astate, pr, inv.actual_len);
                let (fc, fr) = (cam.fingerprint(), reference.fingerprint());
                if fc != fr {
                    return Err(format!(
                        "invocation {invocations}: table fingerprints diverged \
                         ({fc:#018x} vs {fr:#018x})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Conservation and range invariants every report must satisfy.
fn check_invariants(cfg: &osoffload_system::SystemConfig, r: &SimReport) -> Result<(), String> {
    let mut problems: Vec<String> = Vec::new();
    let mut require = |ok: bool, what: String| {
        if !ok {
            problems.push(what);
        }
    };

    require(
        r.instructions >= cfg.instructions,
        format!(
            "measured region retired {} < requested {}",
            r.instructions, cfg.instructions
        ),
    );
    require(r.cycles > 0, "zero cycles".into());
    let recomputed = r.instructions as f64 / r.cycles as f64;
    require(
        (r.throughput - recomputed).abs() < 1e-9,
        format!(
            "throughput {} != instructions/cycles {}",
            r.throughput, recomputed
        ),
    );
    require(
        r.cycle_breakdown.base == r.instructions,
        format!(
            "cycle breakdown base {} != retired instructions {}",
            r.cycle_breakdown.base, r.instructions
        ),
    );
    require(
        r.threads == cfg.user_cores * cfg.profile.threads_per_core,
        format!("thread count {} inconsistent with topology", r.threads),
    );
    let expect_os_cores = if cfg.policy.is_baseline() || cfg.resource_adaptation.is_some() {
        0
    } else {
        cfg.os_cores
    };
    require(
        r.os_cores == expect_os_cores,
        format!("os_cores {} != expected {expect_os_cores}", r.os_cores),
    );

    // Per-OS-core accounting: the pool's per-core busy cycles must sum to
    // the report's aggregate, per-core utilisation must recompute from
    // them, and no dispatch may start before its request arrived (which
    // would show up as a stall count without any recorded delay).
    require(
        r.os_core_busy_cycles.len() == r.os_cores,
        format!(
            "os_core_busy_cycles has {} entries for {} OS cores",
            r.os_core_busy_cycles.len(),
            r.os_cores
        ),
    );
    require(
        r.os_core_utilisation.len() == r.os_cores,
        format!(
            "os_core_utilisation has {} entries for {} OS cores",
            r.os_core_utilisation.len(),
            r.os_cores
        ),
    );
    let busy_sum: u64 = r.os_core_busy_cycles.iter().sum();
    let expect_frac = (busy_sum as f64 / r.cycles as f64).min(1.0);
    require(
        r.os_core_busy_frac == expect_frac,
        format!(
            "os_core_busy_frac {} != per-core sum {busy_sum} / cycles {} = {expect_frac}",
            r.os_core_busy_frac, r.cycles
        ),
    );
    for (i, (&busy, &util)) in r
        .os_core_busy_cycles
        .iter()
        .zip(&r.os_core_utilisation)
        .enumerate()
    {
        let expect_util = (busy as f64 / r.cycles as f64).min(1.0);
        require(
            util == expect_util,
            format!(
                "os core {i} utilisation {util} != busy {busy} / cycles {}",
                r.cycles
            ),
        );
    }
    if r.queue.stalled == 0 {
        require(
            r.queue.mean_delay == 0.0 && r.queue.p99_delay == 0,
            format!(
                "queueing delay (mean {}, p99 {}) recorded without any stalled request — \
                 a dispatch started before its arrival",
                r.queue.mean_delay, r.queue.p99_delay
            ),
        );
    }
    if matches!(cfg.policy, PolicyKind::Baseline) {
        require(
            r.offloads == 0,
            format!("baseline off-loaded {}", r.offloads),
        );
    }
    if cfg.resource_adaptation.is_none() {
        require(
            r.throttled_cycles == 0,
            format!("throttled {} cycles without adaptation", r.throttled_cycles),
        );
    }
    if cfg.tuner.is_none() {
        require(
            r.tuner_events == 0,
            format!("{} tuner events without a tuner", r.tuner_events),
        );
    }

    for (name, x) in [
        ("os_share", r.os_share),
        ("l1d_hit_rate", r.l1d_hit_rate),
        ("l1i_hit_rate", r.l1i_hit_rate),
        ("user_branch_accuracy", r.user_branch_accuracy),
        ("l2_user_hit_rate", r.l2_user_hit_rate),
        ("l2_os_hit_rate", r.l2_os_hit_rate),
        ("l2_mean_hit_rate", r.l2_mean_hit_rate),
        ("os_core_busy_frac", r.os_core_busy_frac),
        ("user_cores_busy_frac", r.user_cores_busy_frac),
    ] {
        require(
            x.is_finite() && (0.0..=1.0).contains(&x),
            format!("{name} = {x} outside [0, 1]"),
        );
    }

    require(
        r.queue.stalled <= r.queue.requests,
        format!(
            "queue stalled {} > requests {}",
            r.queue.stalled, r.queue.requests
        ),
    );
    require(
        r.queue.p50_delay <= r.queue.p95_delay && r.queue.p95_delay <= r.queue.p99_delay,
        format!(
            "queue percentiles unordered: p50 {} p95 {} p99 {}",
            r.queue.p50_delay, r.queue.p95_delay, r.queue.p99_delay
        ),
    );
    require(
        r.queue.mean_delay.is_finite() && r.queue.mean_delay >= 0.0,
        format!("queue mean delay {}", r.queue.mean_delay),
    );

    if let Some(p) = &r.predictor {
        for (name, x) in [
            ("exact", p.exact),
            ("within_5pct", p.within_5pct),
            ("underestimates", p.underestimates),
            ("local_fraction", p.local_fraction),
        ] {
            require(
                x.is_finite() && (0.0..=1.0).contains(&x),
                format!("predictor {name} = {x} outside [0, 1]"),
            );
        }
        require(
            p.within_5pct >= p.exact,
            format!("within_5pct {} < exact {}", p.within_5pct, p.exact),
        );
    }

    require(
        r.binary_accuracy
            .windows(2)
            .all(|w| w[0].threshold < w[1].threshold),
        "binary accuracy thresholds not ascending".into(),
    );
    for b in &r.binary_accuracy {
        require(
            b.accuracy.is_finite() && (0.0..=1.0).contains(&b.accuracy),
            format!("binary accuracy at N={} is {}", b.threshold, b.accuracy),
        );
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

/// Compact top-level diff of two reports (both sides hand-rolled JSON,
/// so parse and compare key by key).
fn report_diff(a: &SimReport, b: &SimReport) -> String {
    let (ja, jb) = (json::parse(&a.to_json()), json::parse(&b.to_json()));
    let (Ok(json::Value::Object(fa)), Ok(json::Value::Object(fb))) = (ja, jb) else {
        return "reports differ (unparsable)".into();
    };
    let mut out: Vec<String> = Vec::new();
    for ((ka, va), (_, vb)) in fa.iter().zip(fb.iter()) {
        if va != vb {
            out.push(format!("{ka}: {} vs {}", va.to_json(), vb.to_json()));
        }
    }
    if out.is_empty() {
        "reports differ in unreported state".into()
    } else {
        out.join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_round_trip() {
        for o in OracleKind::ALL {
            assert_eq!(OracleKind::parse(o.name()), Some(o));
        }
        assert_eq!(OracleKind::parse("nope"), None);
    }

    #[test]
    fn default_case_passes_every_oracle() {
        let failures = check_all(&FuzzCase::default());
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn invalid_case_fails_with_a_typed_message() {
        let case = FuzzCase {
            profile: "no-such".into(),
            ..FuzzCase::default()
        };
        let err = check(&case, OracleKind::Invariants).unwrap_err();
        assert_eq!(err.oracle, OracleKind::Invariants);
        assert!(err.detail.contains("valid config"), "{err}");
    }

    #[test]
    fn invariant_violations_are_reported() {
        let cfg = FuzzCase::default().to_config().unwrap();
        let mut report = Simulation::new(cfg.clone()).run();
        report.os_share = 1.5;
        report.queue.p95_delay = report.queue.p99_delay + 1;
        let err = check_invariants(&cfg, &report).unwrap_err();
        assert!(err.contains("os_share"), "{err}");
        assert!(err.contains("percentiles"), "{err}");
    }

    #[test]
    fn report_diff_names_the_differing_fields() {
        let cfg = FuzzCase::default().to_config().unwrap();
        let a = Simulation::new(cfg).run();
        let mut b = a.clone();
        b.offloads += 1;
        let diff = report_diff(&a, &b);
        assert!(diff.contains("offloads"), "{diff}");
        assert!(!diff.contains("cycles:"), "{diff}");
    }
}
