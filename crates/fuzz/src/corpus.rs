//! Repro corpus: self-contained JSON archives of shrunk failing cases.
//!
//! Every failure the fuzzer finds is shrunk and written to one file
//! under the corpus directory (`fuzz/corpus/` at the repo root). The
//! file names are deterministic — `{oracle}-{case_seed:016x}.json` — so
//! re-finding a known failure overwrites its archive instead of piling
//! up duplicates, and two identical campaigns produce byte-identical
//! corpora.
//!
//! An archive is *self-contained*: it embeds the full [`FuzzCase`], not
//! just the seed, so it keeps replaying even if the generator's seed →
//! case mapping changes later. Once the underlying bug is fixed the
//! file stays in the corpus as a regression test (`tests/fuzz_corpus.rs`
//! replays every archive through every oracle on plain `cargo test`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::case::FuzzCase;
use crate::json::{self, Value};
use crate::oracle::{OracleFailure, OracleKind};

/// Bumped if the archive layout ever changes shape.
pub const FORMAT_VERSION: u64 = 1;

/// One archived repro.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Oracle the case failed when it was archived.
    pub oracle: OracleKind,
    /// Seed the original (pre-shrink) case was generated from.
    pub case_seed: u64,
    /// Failure detail at archive time.
    pub detail: String,
    /// The shrunk failing case.
    pub case: FuzzCase,
}

impl CorpusEntry {
    /// The file name this entry archives under.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.json", self.oracle.name(), self.case_seed)
    }

    /// The exact command that replays this entry from a checkout.
    pub fn replay_command(&self) -> String {
        format!(
            "cargo run -p osoffload-fuzz -- repro fuzz/corpus/{}",
            self.file_name()
        )
    }

    /// Serializes the entry (stable field order).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("format_version".into(), Value::UInt(FORMAT_VERSION)),
            ("oracle".into(), Value::Str(self.oracle.name().into())),
            ("case_seed".into(), Value::UInt(self.case_seed)),
            ("detail".into(), Value::Str(self.detail.clone())),
            ("replay".into(), Value::Str(self.replay_command())),
            ("case".into(), self.case.to_value()),
        ])
    }

    /// Parses an entry back from its JSON form.
    pub fn from_value(v: &Value) -> Result<CorpusEntry, String> {
        let version = v
            .get("format_version")
            .and_then(Value::as_u64)
            .ok_or("missing format_version")?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported corpus format {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        let oracle_name = v
            .get("oracle")
            .and_then(Value::as_str)
            .ok_or("missing oracle")?;
        let oracle = OracleKind::parse(oracle_name)
            .ok_or_else(|| format!("unknown oracle {oracle_name:?}"))?;
        let case_seed = v
            .get("case_seed")
            .and_then(Value::as_u64)
            .ok_or("missing case_seed")?;
        let detail = v
            .get("detail")
            .and_then(Value::as_str)
            .ok_or("missing detail")?
            .to_string();
        let case = FuzzCase::from_value(v.get("case").ok_or("missing case")?)?;
        Ok(CorpusEntry {
            oracle,
            case_seed,
            detail,
            case,
        })
    }
}

/// Writes `entry` under `dir`, creating the directory if needed.
/// Returns the path written.
pub fn archive(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(entry.file_name());
    fs::write(&path, entry.to_value().to_json_pretty())?;
    Ok(path)
}

/// Loads one archive file.
pub fn load(path: &Path) -> Result<CorpusEntry, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    CorpusEntry::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))
}

/// All `*.json` archives under `dir`, sorted by file name. An absent
/// directory is an empty corpus, not an error.
pub fn list(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == "json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Replays an entry through **all** oracles (not just the one it was
/// archived under: a fixed bug must leave the case clean everywhere).
pub fn replay(entry: &CorpusEntry) -> Vec<OracleFailure> {
    crate::oracle::check_all(&entry.case)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CorpusEntry {
        let case = FuzzCase {
            user_cores: 3,
            seed: 0x8000_0000_0000_0003, // > 2^63: exercises u64 fidelity
            ..FuzzCase::default()
        };
        CorpusEntry {
            oracle: OracleKind::Differential,
            case_seed: 0xDEAD_F00D,
            detail: "reports diverge in keys: offload".into(),
            case,
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let entry = sample_entry();
        let text = entry.to_value().to_json_pretty();
        let back = CorpusEntry::from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, entry);
        assert_eq!(back.case.seed, 0x8000_0000_0000_0003);
    }

    #[test]
    fn file_name_and_replay_command_are_deterministic() {
        let entry = sample_entry();
        assert_eq!(entry.file_name(), "differential-00000000deadf00d.json");
        assert_eq!(
            entry.replay_command(),
            "cargo run -p osoffload-fuzz -- repro fuzz/corpus/differential-00000000deadf00d.json"
        );
    }

    #[test]
    fn archive_load_list_round_trip() {
        let dir =
            std::env::temp_dir().join(format!("osoffload-fuzz-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let entry = sample_entry();
        let path = archive(&dir, &entry).unwrap();
        assert_eq!(load(&path).unwrap(), entry);
        assert_eq!(list(&dir).unwrap(), vec![path.clone()]);
        // Re-archiving the same failure overwrites, never duplicates.
        archive(&dir, &entry).unwrap();
        assert_eq!(list(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_a_missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/nonexistent/osoffload-fuzz-nowhere");
        assert!(list(dir).unwrap().is_empty());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut v = sample_entry().to_value();
        if let Value::Object(fields) = &mut v {
            fields[0].1 = Value::UInt(999);
        }
        let err = CorpusEntry::from_value(&v).unwrap_err();
        assert!(err.contains("unsupported corpus format 999"), "{err}");
    }
}
