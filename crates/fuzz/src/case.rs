//! The fuzzer's case model: a small, serialisable description of one
//! simulation run.
//!
//! A [`FuzzCase`] is deliberately *not* a [`SystemConfig`]: it names a
//! catalog profile instead of embedding one, and collapses the policy
//! and memory options into flat enums, so that a case can be archived as
//! a few lines of JSON, diffed against [`FuzzCase::default`], and
//! shrunk field by field. [`FuzzCase::to_config`] lowers it to a real
//! configuration, running [`SystemConfig::validate`] on the way — a
//! corpus file edited into a degenerate geometry is rejected with a
//! typed error, never a deep panic.

use crate::json::Value;
use osoffload_core::TunerConfig;
use osoffload_mem::MemConfig;
use osoffload_obs::TelemetryMode;
use osoffload_system::{
    DispatchPolicy, MigrationModel, OffloadMechanism, PolicyKind, SystemConfig,
};
use osoffload_workload::Profile;

/// Serialisable mirror of [`PolicyKind`] (the fuzzed subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// No off-loading.
    Baseline,
    /// Off-load everything.
    Always,
    /// CAM-backed hardware predictor.
    Hi {
        /// Off-load threshold in instructions.
        threshold: u64,
    },
    /// Direct-mapped hardware predictor.
    HiDm {
        /// Off-load threshold in instructions.
        threshold: u64,
    },
    /// CAM predictor with explicit capacity.
    HiSized {
        /// Off-load threshold in instructions.
        threshold: u64,
        /// CAM entry count.
        entries: usize,
    },
    /// Software dynamic instrumentation.
    Di {
        /// Off-load threshold in instructions.
        threshold: u64,
        /// Per-entry instrumentation cost in cycles.
        cost: u64,
    },
    /// Off-line profiling + static instrumentation.
    Si {
        /// Stub cost in cycles.
        stub_cost: u64,
    },
    /// Oracle decisions on the true run length.
    Oracle {
        /// Off-load threshold in instructions.
        threshold: u64,
    },
}

impl PolicySpec {
    /// Lowers to the simulator's policy enum.
    pub fn to_policy(self) -> PolicyKind {
        match self {
            PolicySpec::Baseline => PolicyKind::Baseline,
            PolicySpec::Always => PolicyKind::AlwaysOffload,
            PolicySpec::Hi { threshold } => PolicyKind::HardwarePredictor { threshold },
            PolicySpec::HiDm { threshold } => {
                PolicyKind::HardwarePredictorDirectMapped { threshold }
            }
            PolicySpec::HiSized { threshold, entries } => {
                PolicyKind::HardwarePredictorSized { threshold, entries }
            }
            PolicySpec::Di { threshold, cost } => {
                PolicyKind::DynamicInstrumentation { threshold, cost }
            }
            PolicySpec::Si { stub_cost } => PolicyKind::StaticInstrumentation { stub_cost },
            PolicySpec::Oracle { threshold } => PolicyKind::Oracle { threshold },
        }
    }

    fn to_value(self) -> Value {
        let mut fields = Vec::new();
        let kind = match self {
            PolicySpec::Baseline => "baseline",
            PolicySpec::Always => "always",
            PolicySpec::Hi { threshold } => {
                fields.push(("threshold".into(), Value::UInt(threshold)));
                "hi"
            }
            PolicySpec::HiDm { threshold } => {
                fields.push(("threshold".into(), Value::UInt(threshold)));
                "hi-dm"
            }
            PolicySpec::HiSized { threshold, entries } => {
                fields.push(("threshold".into(), Value::UInt(threshold)));
                fields.push(("entries".into(), Value::UInt(entries as u64)));
                "hi-sized"
            }
            PolicySpec::Di { threshold, cost } => {
                fields.push(("threshold".into(), Value::UInt(threshold)));
                fields.push(("cost".into(), Value::UInt(cost)));
                "di"
            }
            PolicySpec::Si { stub_cost } => {
                fields.push(("stub_cost".into(), Value::UInt(stub_cost)));
                "si"
            }
            PolicySpec::Oracle { threshold } => {
                fields.push(("threshold".into(), Value::UInt(threshold)));
                "oracle"
            }
        };
        fields.insert(0, ("kind".into(), Value::Str(kind.into())));
        Value::Object(fields)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("policy: missing kind")?;
        let threshold = || {
            v.get("threshold")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("policy {kind}: missing threshold"))
        };
        match kind {
            "baseline" => Ok(PolicySpec::Baseline),
            "always" => Ok(PolicySpec::Always),
            "hi" => Ok(PolicySpec::Hi {
                threshold: threshold()?,
            }),
            "hi-dm" => Ok(PolicySpec::HiDm {
                threshold: threshold()?,
            }),
            "hi-sized" => Ok(PolicySpec::HiSized {
                threshold: threshold()?,
                entries: v
                    .get("entries")
                    .and_then(Value::as_usize)
                    .ok_or("policy hi-sized: missing entries")?,
            }),
            "di" => Ok(PolicySpec::Di {
                threshold: threshold()?,
                cost: v
                    .get("cost")
                    .and_then(Value::as_u64)
                    .ok_or("policy di: missing cost")?,
            }),
            "si" => Ok(PolicySpec::Si {
                stub_cost: v
                    .get("stub_cost")
                    .and_then(Value::as_u64)
                    .ok_or("policy si: missing stub_cost")?,
            }),
            "oracle" => Ok(PolicySpec::Oracle {
                threshold: threshold()?,
            }),
            other => Err(format!("policy: unknown kind {other:?}")),
        }
    }
}

/// One generated (or shrunken, or archived) simulation case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Catalog profile name ([`Profile::by_name`]).
    pub profile: String,
    /// Phase switches: `(at_instruction, profile_name)`.
    pub phases: Vec<(u64, String)>,
    /// Decision policy.
    pub policy: PolicySpec,
    /// One-way migration latency in cycles.
    pub migration_one_way: u64,
    /// Whether off-loads use remote calls instead of thread migration.
    pub remote_call: bool,
    /// OS-core per-instruction slowdown, milli-units.
    pub os_core_slowdown_milli: u64,
    /// SMT contexts on the OS core.
    pub os_core_contexts: usize,
    /// OS cores in the pool.
    pub os_cores: usize,
    /// How off-loads pick an OS core.
    pub dispatch: DispatchPolicy,
    /// Cold-AState penalty on an OS core, in cycles.
    pub os_cold_penalty: u64,
    /// Resource-adaptation slowdown (milli-units), `None` = off-loading.
    pub resource_adaptation: Option<u64>,
    /// User cores.
    pub user_cores: usize,
    /// Measured instructions.
    pub instructions: u64,
    /// Warm-up instructions.
    pub warmup: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Dynamic-threshold tuner, as a `TunerConfig::scaled_down` factor.
    pub tuner_scale: Option<u64>,
    /// Use the §V-B half-size-L2 memory variant.
    pub half_l2: bool,
}

impl Default for FuzzCase {
    /// The shrinker's target: the simplest interesting run — one user
    /// core, apache, the paper's HI policy, defaults everywhere else.
    fn default() -> Self {
        FuzzCase {
            profile: "apache".into(),
            phases: Vec::new(),
            policy: PolicySpec::Hi { threshold: 500 },
            migration_one_way: 5_000,
            remote_call: false,
            os_core_slowdown_milli: 1_000,
            os_core_contexts: 1,
            os_cores: 1,
            dispatch: DispatchPolicy::LeastLoaded,
            os_cold_penalty: 0,
            resource_adaptation: None,
            user_cores: 1,
            instructions: 40_000,
            warmup: 10_000,
            seed: 0,
            tuner_scale: None,
            half_l2: false,
        }
    }
}

impl FuzzCase {
    /// Lowers the case to a validated [`SystemConfig`].
    ///
    /// Errors if a profile name is unknown or the resulting
    /// configuration fails [`SystemConfig::validate`] — the two ways a
    /// hand-edited corpus file can be degenerate.
    pub fn to_config(&self) -> Result<SystemConfig, String> {
        let profile = Profile::by_name(&self.profile)
            .ok_or_else(|| format!("unknown profile {:?}", self.profile))?;
        if self.tuner_scale == Some(0) {
            return Err("tuner_scale must be positive".into());
        }
        let mut phases = Vec::with_capacity(self.phases.len());
        for (at, name) in &self.phases {
            let p =
                Profile::by_name(name).ok_or_else(|| format!("unknown phase profile {name:?}"))?;
            phases.push((*at, p));
        }
        let mut cfg = SystemConfig {
            profile,
            phases,
            policy: self.policy.to_policy(),
            migration: MigrationModel::new(self.migration_one_way),
            mechanism: if self.remote_call {
                OffloadMechanism::RemoteCall
            } else {
                OffloadMechanism::ThreadMigration
            },
            os_core_slowdown_milli: self.os_core_slowdown_milli,
            os_core_contexts: self.os_core_contexts,
            os_cores: self.os_cores,
            dispatch: self.dispatch,
            os_cold_penalty: self.os_cold_penalty,
            resource_adaptation: self.resource_adaptation,
            user_cores: self.user_cores,
            instructions: self.instructions,
            warmup: self.warmup,
            seed: self.seed,
            tuner: self.tuner_scale.map(TunerConfig::scaled_down),
            mem_override: None,
            trace_capacity: 0,
            telemetry: TelemetryMode::Off,
            telemetry_capacity: 1 << 16,
            profiling: false,
        };
        if self.half_l2 {
            let cores = cfg.total_cores().clamp(1, 64);
            cfg.mem_override = Some(MemConfig::half_l2_variant(cores));
        }
        cfg.validate().map_err(|e| e.to_string())?;
        Ok(cfg)
    }

    /// Serialises to a JSON object (stable field order).
    pub fn to_value(&self) -> Value {
        let opt = |o: Option<u64>| o.map_or(Value::Null, Value::UInt);
        Value::Object(vec![
            ("profile".into(), Value::Str(self.profile.clone())),
            (
                "phases".into(),
                Value::Array(
                    self.phases
                        .iter()
                        .map(|(at, name)| {
                            Value::Object(vec![
                                ("at".into(), Value::UInt(*at)),
                                ("profile".into(), Value::Str(name.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("policy".into(), self.policy.to_value()),
            (
                "migration_one_way".into(),
                Value::UInt(self.migration_one_way),
            ),
            ("remote_call".into(), Value::Bool(self.remote_call)),
            (
                "os_core_slowdown_milli".into(),
                Value::UInt(self.os_core_slowdown_milli),
            ),
            (
                "os_core_contexts".into(),
                Value::UInt(self.os_core_contexts as u64),
            ),
            ("os_cores".into(), Value::UInt(self.os_cores as u64)),
            ("dispatch".into(), Value::Str(self.dispatch.label().into())),
            ("os_cold_penalty".into(), Value::UInt(self.os_cold_penalty)),
            ("resource_adaptation".into(), opt(self.resource_adaptation)),
            ("user_cores".into(), Value::UInt(self.user_cores as u64)),
            ("instructions".into(), Value::UInt(self.instructions)),
            ("warmup".into(), Value::UInt(self.warmup)),
            ("seed".into(), Value::UInt(self.seed)),
            ("tuner_scale".into(), opt(self.tuner_scale)),
            ("half_l2".into(), Value::Bool(self.half_l2)),
        ])
    }

    /// Deserialises from the [`to_value`](Self::to_value) format.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("case: missing string {key:?}"))
        };
        let u64_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("case: missing integer {key:?}"))
        };
        let usize_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("case: missing integer {key:?}"))
        };
        let bool_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("case: missing bool {key:?}"))
        };
        let opt_field = |key: &str| match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(val) => val
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("case: bad optional integer {key:?}")),
        };
        let mut phases = Vec::new();
        for item in v
            .get("phases")
            .and_then(Value::as_array)
            .ok_or("case: missing phases")?
        {
            let at = item
                .get("at")
                .and_then(Value::as_u64)
                .ok_or("case: phase missing at")?;
            let name = item
                .get("profile")
                .and_then(Value::as_str)
                .ok_or("case: phase missing profile")?;
            phases.push((at, name.to_string()));
        }
        Ok(FuzzCase {
            profile: str_field("profile")?,
            phases,
            policy: PolicySpec::from_value(v.get("policy").ok_or("case: missing policy")?)?,
            migration_one_way: u64_field("migration_one_way")?,
            remote_call: bool_field("remote_call")?,
            os_core_slowdown_milli: u64_field("os_core_slowdown_milli")?,
            os_core_contexts: usize_field("os_core_contexts")?,
            // Topology fields default when absent so corpus files written
            // before the multi-OS-core pool still parse.
            os_cores: match v.get("os_cores") {
                None => 1,
                Some(val) => val.as_usize().ok_or("case: bad integer \"os_cores\"")?,
            },
            dispatch: match v.get("dispatch") {
                None => DispatchPolicy::LeastLoaded,
                Some(val) => {
                    let label = val.as_str().ok_or("case: bad string \"dispatch\"")?;
                    DispatchPolicy::parse(label)
                        .ok_or_else(|| format!("case: unknown dispatch {label:?}"))?
                }
            },
            os_cold_penalty: match v.get("os_cold_penalty") {
                None => 0,
                Some(val) => val
                    .as_u64()
                    .ok_or("case: bad integer \"os_cold_penalty\"")?,
            },
            resource_adaptation: opt_field("resource_adaptation")?,
            user_cores: usize_field("user_cores")?,
            instructions: u64_field("instructions")?,
            warmup: u64_field("warmup")?,
            seed: u64_field("seed")?,
            tuner_scale: opt_field("tuner_scale")?,
            half_l2: bool_field("half_l2")?,
        })
    }

    /// Lists the fields where this case differs from
    /// [`FuzzCase::default`], as `(field, value)` strings — the
    /// "distance from trivial" a shrunken repro is judged by.
    pub fn diff_from_default(&self) -> Vec<(&'static str, String)> {
        let d = FuzzCase::default();
        let mut diff: Vec<(&'static str, String)> = Vec::new();
        if self.profile != d.profile {
            diff.push(("profile", self.profile.clone()));
        }
        if self.phases != d.phases {
            diff.push(("phases", format!("{:?}", self.phases)));
        }
        if self.policy != d.policy {
            diff.push(("policy", format!("{:?}", self.policy)));
        }
        if self.migration_one_way != d.migration_one_way {
            diff.push(("migration_one_way", self.migration_one_way.to_string()));
        }
        if self.remote_call != d.remote_call {
            diff.push(("remote_call", self.remote_call.to_string()));
        }
        if self.os_core_slowdown_milli != d.os_core_slowdown_milli {
            diff.push((
                "os_core_slowdown_milli",
                self.os_core_slowdown_milli.to_string(),
            ));
        }
        if self.os_core_contexts != d.os_core_contexts {
            diff.push(("os_core_contexts", self.os_core_contexts.to_string()));
        }
        if self.os_cores != d.os_cores {
            diff.push(("os_cores", self.os_cores.to_string()));
        }
        if self.dispatch != d.dispatch {
            diff.push(("dispatch", self.dispatch.label().to_string()));
        }
        if self.os_cold_penalty != d.os_cold_penalty {
            diff.push(("os_cold_penalty", self.os_cold_penalty.to_string()));
        }
        if self.resource_adaptation != d.resource_adaptation {
            diff.push((
                "resource_adaptation",
                format!("{:?}", self.resource_adaptation),
            ));
        }
        if self.user_cores != d.user_cores {
            diff.push(("user_cores", self.user_cores.to_string()));
        }
        if self.instructions != d.instructions {
            diff.push(("instructions", self.instructions.to_string()));
        }
        if self.warmup != d.warmup {
            diff.push(("warmup", self.warmup.to_string()));
        }
        if self.seed != d.seed {
            diff.push(("seed", format!("{:#x}", self.seed)));
        }
        if self.tuner_scale != d.tuner_scale {
            diff.push(("tuner_scale", format!("{:?}", self.tuner_scale)));
        }
        if self.half_l2 != d.half_l2 {
            diff.push(("half_l2", self.half_l2.to_string()));
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn default_case_lowers_to_a_valid_config() {
        let cfg = FuzzCase::default().to_config().unwrap();
        assert_eq!(cfg.user_cores, 1);
        assert_eq!(cfg.instructions, 40_000);
        assert!(matches!(
            cfg.policy,
            PolicyKind::HardwarePredictor { threshold: 500 }
        ));
        assert!(FuzzCase::default().diff_from_default().is_empty());
    }

    #[test]
    fn cases_round_trip_through_json() {
        let case = FuzzCase {
            profile: "derby".into(),
            phases: vec![(20_000, "mcf".into())],
            policy: PolicySpec::Di {
                threshold: 1_000,
                cost: 120,
            },
            migration_one_way: 100,
            remote_call: true,
            os_core_slowdown_milli: 1_667,
            os_core_contexts: 2,
            os_cores: 3,
            dispatch: DispatchPolicy::AStateAffinity,
            os_cold_penalty: 750,
            resource_adaptation: None,
            user_cores: 3,
            instructions: 60_000,
            warmup: 0,
            seed: u64::MAX - 1,
            tuner_scale: Some(40),
            half_l2: true,
        };
        let text = case.to_value().to_json_pretty();
        let back = FuzzCase::from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, case);
        assert!(back.to_config().is_ok());
    }

    #[test]
    fn legacy_corpus_files_without_topology_fields_parse() {
        let Value::Object(fields) = FuzzCase::default().to_value() else {
            unreachable!()
        };
        let legacy = Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| !matches!(k.as_str(), "os_cores" | "dispatch" | "os_cold_penalty"))
                .collect(),
        );
        let back = FuzzCase::from_value(&legacy).unwrap();
        assert_eq!(back, FuzzCase::default());
    }

    #[test]
    fn every_policy_spec_round_trips() {
        for policy in [
            PolicySpec::Baseline,
            PolicySpec::Always,
            PolicySpec::Hi { threshold: 1 },
            PolicySpec::HiDm { threshold: 2 },
            PolicySpec::HiSized {
                threshold: 3,
                entries: 8,
            },
            PolicySpec::Di {
                threshold: 4,
                cost: 5,
            },
            PolicySpec::Si { stub_cost: 6 },
            PolicySpec::Oracle { threshold: 7 },
        ] {
            let v = policy.to_value();
            assert_eq!(PolicySpec::from_value(&v).unwrap(), policy);
        }
    }

    #[test]
    fn degenerate_cases_are_rejected_not_panicked() {
        let mut case = FuzzCase {
            profile: "no-such-workload".into(),
            ..FuzzCase::default()
        };
        assert!(case.to_config().unwrap_err().contains("unknown profile"));

        case = FuzzCase::default();
        case.instructions = 0;
        assert!(case
            .to_config()
            .unwrap_err()
            .contains("need a measured region"));

        case = FuzzCase::default();
        case.policy = PolicySpec::HiSized {
            threshold: 500,
            entries: 0,
        };
        assert!(case.to_config().is_err());

        case = FuzzCase::default();
        case.tuner_scale = Some(0); // would assert inside scaled_down
        assert!(case.to_config().unwrap_err().contains("tuner_scale"));
    }

    #[test]
    fn diff_counts_changed_fields() {
        let case = FuzzCase {
            seed: 42,
            user_cores: 2,
            ..FuzzCase::default()
        };
        let diff = case.diff_from_default();
        assert_eq!(diff.len(), 2);
        assert!(diff.iter().any(|(f, v)| *f == "seed" && v == "0x2a"));
    }
}
