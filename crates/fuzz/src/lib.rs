//! Deterministic differential fuzzer for the off-loading simulator.
//!
//! The fuzzer draws arbitrary-but-valid system configurations, workload
//! mixes and seeds from a master-seeded RNG (the same splitting scheme
//! the experiment runner uses, so campaigns replay bit-identically) and
//! executes each case under seven oracles:
//!
//! 1. **differential** — the batched fast path ([`run`]) against the
//!    retained per-instruction reference stepper ([`run_reference`]);
//!    full-report equality.
//! 2. **predictor** — the indexed CAM predictor against the linear-scan
//!    reference model, step by step, plus a state-fingerprint match.
//! 3. **invariants** — conservation laws on the final report (cycles,
//!    instruction counts, rates in range, percentile ordering…).
//! 4. **telemetry** — telemetry on vs off must not change the report.
//! 5. **alloc** — the steady-state simulation loop must not allocate.
//! 6. **crash-recovery** — a journaled campaign built from the case,
//!    fault-injected from the case seed, killed by truncating its
//!    journal and resumed, must finish with a byte-identical archive
//!    (see `ROBUSTNESS.md`).
//! 7. **profile** — the cycle-attribution profiler must not change the
//!    report, and its phase totals must reconcile with the report's
//!    cycle accounting (see `TELEMETRY.md`).
//!
//! Failures are automatically shrunk ([`shrink`]) to a locally-minimal
//! case and archived as self-contained JSON repros ([`corpus`]) with an
//! exact replay command. See `FUZZING.md` at the repo root.
//!
//! [`run`]: osoffload_system::Simulation::run
//! [`run_reference`]: osoffload_system::Simulation::run_reference
//! [`shrink`]: shrink::shrink

pub mod case;
pub mod corpus;
pub mod gen;
pub mod json;
pub mod oracle;
pub mod shrink;

pub use case::{FuzzCase, PolicySpec};
pub use corpus::CorpusEntry;
pub use gen::CaseGen;
pub use oracle::{OracleFailure, OracleKind};
pub use shrink::Shrunk;
