//! Energy-model parameters.
//!
//! Representative 32 nm values in the spirit of the paper's CACTI 6.0
//! methodology (§IV): per-access energies for the storage structures and
//! active/idle power for two core types — the aggressive user core and
//! the efficiency core that Mogul et al. \[17\] (the paper's §VI-B) propose
//! dedicating to the OS. Absolute joules are indicative; the experiments
//! report *ratios* (normalized energy, EDP), which are robust to the
//! exact constants.

/// Power characteristics of one core design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreType {
    /// Human-readable label.
    pub name: &'static str,
    /// Power while executing, in watts.
    pub active_watts: f64,
    /// Power while idle (clock-gated), in watts.
    pub idle_watts: f64,
    /// Power while running in the throttled low-power mode Li & John
    /// propose for OS sequences (§VI-B), in watts.
    pub throttled_watts: f64,
    /// Per-instruction slowdown relative to the aggressive core, in
    /// milli-units (1,000 = same speed, 1,667 ≈ 0.6× frequency).
    pub slowdown_milli: u64,
}

impl CoreType {
    /// The aggressive general-purpose core the application runs on.
    pub fn aggressive() -> Self {
        CoreType {
            name: "aggressive",
            active_watts: 4.0,
            idle_watts: 0.9,
            throttled_watts: 1.6,
            slowdown_milli: 1_000,
        }
    }

    /// An efficiency core for OS execution: "OS code does not leverage
    /// aggressive speculation and deep pipelines, so the power required
    /// to implement these features results in little performance
    /// advantage" (§VI-B). Roughly 0.6× the frequency at 0.3× the power.
    pub fn efficient() -> Self {
        CoreType {
            name: "efficient",
            active_watts: 1.2,
            idle_watts: 0.25,
            throttled_watts: 0.8,
            slowdown_milli: 1_667,
        }
    }
}

/// Per-event energies of the memory system, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEnergy {
    /// One L1 (I or D) lookup.
    pub l1_access_nj: f64,
    /// One L2 lookup.
    pub l2_access_nj: f64,
    /// One DRAM access (read or writeback).
    pub dram_access_nj: f64,
    /// One coherence message crossing the interconnect (c2c transfer or
    /// invalidation round).
    pub coherence_msg_nj: f64,
}

impl MemoryEnergy {
    /// Representative 32 nm values (CACTI-6.0-flavoured).
    pub fn paper_default() -> Self {
        MemoryEnergy {
            l1_access_nj: 0.05,
            l2_access_nj: 0.45,
            dram_access_nj: 18.0,
            coherence_msg_nj: 0.6,
        }
    }
}

/// The complete parameter set for one energy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Core clock frequency in hertz (Table II: 3.5 GHz).
    pub frequency_hz: f64,
    /// The user cores' design.
    pub user_core: CoreType,
    /// The OS core's design ([`CoreType::aggressive`] for the paper's
    /// homogeneous study, [`CoreType::efficient`] for the Mogul-style
    /// heterogeneous variant).
    pub os_core: CoreType,
    /// Memory-system event energies.
    pub memory: MemoryEnergy,
    /// Energy of one thread migration (register save/restore plus the
    /// interrupt on both cores), in nanojoules.
    pub migration_nj: f64,
}

impl EnergyParams {
    /// Homogeneous CMP: the OS core is another aggressive core (the
    /// paper's own performance study).
    pub fn homogeneous() -> Self {
        EnergyParams {
            frequency_hz: 3.5e9,
            user_core: CoreType::aggressive(),
            os_core: CoreType::aggressive(),
            memory: MemoryEnergy::paper_default(),
            migration_nj: 40.0,
        }
    }

    /// Heterogeneous CMP: an efficiency core runs the OS (Mogul et al.,
    /// the paper's stated future-work direction).
    pub fn heterogeneous() -> Self {
        EnergyParams {
            os_core: CoreType::efficient(),
            ..EnergyParams::homogeneous()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficient_core_trades_speed_for_power() {
        let a = CoreType::aggressive();
        let e = CoreType::efficient();
        assert!(e.active_watts < a.active_watts / 2.0);
        assert!(e.slowdown_milli > a.slowdown_milli);
        assert!(e.idle_watts < a.idle_watts);
    }

    #[test]
    fn parameter_presets_differ_only_in_os_core() {
        let homo = EnergyParams::homogeneous();
        let hetero = EnergyParams::heterogeneous();
        assert_eq!(homo.user_core, hetero.user_core);
        assert_ne!(homo.os_core, hetero.os_core);
        assert_eq!(homo.memory, hetero.memory);
    }

    #[test]
    fn memory_energy_ordering_is_physical() {
        let m = MemoryEnergy::paper_default();
        assert!(m.l1_access_nj < m.l2_access_nj);
        assert!(m.l2_access_nj < m.dram_access_nj);
    }
}
