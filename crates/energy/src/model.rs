//! The energy/EDP evaluator.
//!
//! Consumes a finished [`SimReport`] plus [`EnergyParams`] and produces
//! an [`EnergyReport`]: core energy (active + idle per core type),
//! memory-system energy from the absolute access counts, migration
//! energy, total joules, and energy-delay product. Because it works on
//! the report, any simulation — baseline, off-loading, RPC-mechanism,
//! heterogeneous OS core — can be scored without re-running it.

use crate::params::EnergyParams;
use core::fmt;
use osoffload_system::SimReport;

/// Energy accounting for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Wall-clock seconds of the measured region.
    pub seconds: f64,
    /// Energy of the user cores (active + idle), joules.
    pub user_core_joules: f64,
    /// Energy of the OS core (0 for baseline topologies), joules.
    pub os_core_joules: f64,
    /// Cache (L1 + L2) access energy, joules.
    pub cache_joules: f64,
    /// DRAM access + writeback energy, joules.
    pub dram_joules: f64,
    /// Coherence-message energy, joules.
    pub coherence_joules: f64,
    /// Thread-migration energy, joules.
    pub migration_joules: f64,
    /// Total energy, joules.
    pub total_joules: f64,
    /// Energy-delay product, joule-seconds (the paper's efficiency
    /// metric of interest, §III-B).
    pub edp: f64,
    /// Energy per retired instruction, nanojoules.
    pub nj_per_instruction: f64,
}

impl EnergyReport {
    /// This run's EDP normalized to a baseline run (< 1 means more
    /// efficient).
    ///
    /// # Panics
    ///
    /// Panics if the baseline EDP is zero.
    pub fn edp_normalized_to(&self, baseline: &EnergyReport) -> f64 {
        assert!(baseline.edp > 0.0, "baseline EDP is zero");
        self.edp / baseline.edp
    }

    /// This run's total energy normalized to a baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the baseline energy is zero.
    pub fn energy_normalized_to(&self, baseline: &EnergyReport) -> f64 {
        assert!(baseline.total_joules > 0.0, "baseline energy is zero");
        self.total_joules / baseline.total_joules
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} mJ total ({:.3} user + {:.3} OS + {:.3} mem) over {:.3} ms, EDP {:.3e}",
            self.total_joules * 1e3,
            self.user_core_joules * 1e3,
            self.os_core_joules * 1e3,
            (self.cache_joules + self.dram_joules + self.coherence_joules) * 1e3,
            self.seconds * 1e3,
            self.edp
        )
    }
}

/// Evaluates a simulation report under an energy parameter set.
///
/// # Examples
///
/// ```
/// use osoffload_energy::{evaluate, EnergyParams};
/// use osoffload_system::{PolicyKind, Simulation, SystemConfig};
/// use osoffload_workload::Profile;
///
/// let report = Simulation::new(
///     SystemConfig::builder()
///         .profile(Profile::apache())
///         .policy(PolicyKind::HardwarePredictor { threshold: 500 })
///         .migration_latency(1_000)
///         .instructions(100_000)
///         .seed(1)
///         .build(),
/// )
/// .run();
/// let energy = evaluate(&report, &EnergyParams::homogeneous());
/// assert!(energy.total_joules > 0.0);
/// assert!(energy.os_core_joules > 0.0);
/// ```
pub fn evaluate(report: &SimReport, params: &EnergyParams) -> EnergyReport {
    let seconds = report.cycles as f64 / params.frequency_hz;

    // --- Cores -------------------------------------------------------
    // "While system calls are executing on the low-power OS core, the
    // aggressively designed user core can enter a low-power state"
    // (§VI-B): a user core draws active power only while executing;
    // during its thread's off-loaded excursions it clock-gates to idle
    // power. The simulator reports both busy fractions directly.
    let os_busy_s = report.os_core_busy_frac * seconds;
    let os_idle_s = seconds - os_busy_s;
    let os_core_joules = if report.os_cores == 0 {
        0.0
    } else {
        os_busy_s * params.os_core.active_watts + os_idle_s * params.os_core.idle_watts
    };
    // Aggregate busy/idle seconds across all user cores; throttled
    // (resource-adaptation) execution bills at the low-power mode
    // instead of full active power.
    let cores = report.user_cores as f64;
    let busy_total_s = report.user_cores_busy_frac * seconds * cores;
    let idle_total_s = seconds * cores - busy_total_s;
    let throttled_s = (report.throttled_cycles as f64 / params.frequency_hz).min(busy_total_s);
    let user_core_joules = (busy_total_s - throttled_s) * params.user_core.active_watts
        + throttled_s * params.user_core.throttled_watts
        + idle_total_s * params.user_core.idle_watts;

    // --- Memory system -------------------------------------------------
    let m = &params.memory;
    let cache_joules = ((report.l1d_accesses + report.l1i_accesses) as f64 * m.l1_access_nj
        + report.l2_accesses as f64 * m.l2_access_nj)
        * 1e-9;
    let dram_joules = report.dram_accesses as f64 * m.dram_access_nj * 1e-9;
    let coherence_joules =
        (report.c2c_transfers + report.invalidation_rounds) as f64 * m.coherence_msg_nj * 1e-9;
    let migration_joules = report.offloads as f64 * 2.0 * params.migration_nj * 1e-9;

    let total_joules = user_core_joules
        + os_core_joules
        + cache_joules
        + dram_joules
        + coherence_joules
        + migration_joules;

    EnergyReport {
        seconds,
        user_core_joules,
        os_core_joules,
        cache_joules,
        dram_joules,
        coherence_joules,
        migration_joules,
        total_joules,
        edp: total_joules * seconds,
        nj_per_instruction: total_joules * 1e9 / report.instructions.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_system::{PolicyKind, Simulation, SystemConfig};
    use osoffload_workload::Profile;

    fn run(policy: PolicyKind, slowdown: u64) -> SimReport {
        Simulation::new(
            SystemConfig::builder()
                .profile(Profile::apache())
                .policy(policy)
                .migration_latency(1_000)
                .os_core_slowdown_milli(slowdown)
                .instructions(250_000)
                .warmup(150_000)
                .seed(5)
                .build(),
        )
        .run()
    }

    #[test]
    fn baseline_has_no_os_core_energy() {
        let r = run(PolicyKind::Baseline, 1_000);
        let e = evaluate(&r, &EnergyParams::homogeneous());
        assert_eq!(e.os_core_joules, 0.0);
        assert_eq!(e.migration_joules, 0.0);
        assert!(e.total_joules > 0.0);
        assert!(e.edp > 0.0);
        assert!(e.nj_per_instruction > 0.0);
    }

    #[test]
    fn offloading_adds_os_core_and_migration_energy() {
        let r = run(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        let e = evaluate(&r, &EnergyParams::homogeneous());
        assert!(e.os_core_joules > 0.0);
        assert!(e.migration_joules > 0.0);
    }

    #[test]
    fn efficient_os_core_cuts_os_energy() {
        let r = run(PolicyKind::HardwarePredictor { threshold: 500 }, 1_667);
        let homo = evaluate(&r, &EnergyParams::homogeneous());
        let hetero = evaluate(&r, &EnergyParams::heterogeneous());
        assert!(
            hetero.os_core_joules < homo.os_core_joules * 0.5,
            "hetero {:.6} vs homo {:.6}",
            hetero.os_core_joules,
            homo.os_core_joules
        );
        assert!(hetero.total_joules < homo.total_joules);
    }

    #[test]
    fn slow_os_core_stretches_execution() {
        let fast = run(PolicyKind::HardwarePredictor { threshold: 100 }, 1_000);
        let slow = run(PolicyKind::HardwarePredictor { threshold: 100 }, 2_000);
        assert!(
            slow.cycles > fast.cycles,
            "2x slower OS core must lengthen the run: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn components_sum_to_total() {
        let r = run(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        let e = evaluate(&r, &EnergyParams::homogeneous());
        let sum = e.user_core_joules
            + e.os_core_joules
            + e.cache_joules
            + e.dram_joules
            + e.coherence_joules
            + e.migration_joules;
        assert!((sum - e.total_joules).abs() < 1e-12);
        assert!((e.edp - e.total_joules * e.seconds).abs() < 1e-15);
    }

    #[test]
    fn normalization_helpers() {
        let r = run(PolicyKind::Baseline, 1_000);
        let e = evaluate(&r, &EnergyParams::homogeneous());
        assert!((e.edp_normalized_to(&e) - 1.0).abs() < 1e-12);
        assert!((e.energy_normalized_to(&e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let r = run(PolicyKind::Baseline, 1_000);
        let e = evaluate(&r, &EnergyParams::homogeneous());
        assert!(!e.to_string().is_empty());
    }
}
