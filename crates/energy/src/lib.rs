//! Energy and energy-delay-product modelling for OS off-loading.
//!
//! The paper's focus is performance, but §I frames off-loading's second
//! benefit as "improved power efficiency due to smarter use of
//! heterogeneous cores", and its conclusion names "the applicability of
//! the predictor for OS energy optimizations" as future work. This crate
//! builds that extension:
//!
//! * [`params`] — core types (aggressive vs Mogul-style efficiency
//!   core), per-access memory energies, migration energy;
//! * [`model`] — [`evaluate`]: score any finished simulation report for
//!   total joules and EDP.
//!
//! The simulator side is already heterogeneous-ready: configure
//! `SystemConfig::os_core_slowdown_milli` to stretch OS-core execution
//! and pair it with [`EnergyParams::heterogeneous`] to study the
//! performance/efficiency trade of a low-power OS core.
//!
//! # Examples
//!
//! ```
//! use osoffload_energy::{evaluate, EnergyParams};
//! use osoffload_system::{PolicyKind, Simulation, SystemConfig};
//! use osoffload_workload::Profile;
//!
//! let report = Simulation::new(
//!     SystemConfig::builder()
//!         .profile(Profile::blackscholes())
//!         .policy(PolicyKind::Baseline)
//!         .instructions(50_000)
//!         .seed(3)
//!         .build(),
//! )
//! .run();
//! let energy = evaluate(&report, &EnergyParams::homogeneous());
//! println!("{energy}");
//! assert!(energy.edp > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod params;

pub use model::{evaluate, EnergyReport};
pub use params::{CoreType, EnergyParams, MemoryEnergy};
