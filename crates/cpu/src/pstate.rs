//! The SPARC V9 `PSTATE` processor-state register.
//!
//! `PSTATE` "holds the current state of the processor and contains
//! information (in bit fields) such as floating-point enable, execution
//! mode (user or privilege), memory model, interrupt enable, etc." (§IV).
//! The paper's techniques use the execution-mode bit to delimit OS
//! sequences, and the whole register participates in the AState XOR hash
//! (§III-A) because it encodes the execution environment of the trap.
//!
//! Bit positions follow the SPARC Architecture Manual V9, Table 5-5.

use core::fmt;

/// The `PSTATE` register as a typed 64-bit value.
///
/// Only the fields the simulator manipulates get accessors; the raw value
/// is what feeds the predictor hash.
///
/// # Examples
///
/// ```
/// use osoffload_cpu::Pstate;
///
/// let mut p = Pstate::user_default();
/// assert!(!p.is_privileged());
/// p.set_privileged(true);
/// p.set_interrupts_enabled(false);
/// assert!(p.is_privileged());
/// assert!(!p.interrupts_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pstate(u64);

impl Pstate {
    /// AG — alternate globals active.
    pub const AG: u64 = 1 << 0;
    /// IE — interrupt enable.
    pub const IE: u64 = 1 << 1;
    /// PRIV — privileged execution mode.
    pub const PRIV: u64 = 1 << 2;
    /// AM — address masking (32-bit compatibility).
    pub const AM: u64 = 1 << 3;
    /// PEF — floating-point unit enabled.
    pub const PEF: u64 = 1 << 4;
    /// MM — memory-model field (2 bits: TSO/PSO/RMO).
    pub const MM_SHIFT: u32 = 6;

    /// A typical user-mode `PSTATE`: FP enabled, interrupts enabled, TSO.
    pub fn user_default() -> Self {
        Pstate(Self::IE | Self::PEF)
    }

    /// A typical trap-handler `PSTATE`: privileged, alternate globals,
    /// interrupts still enabled (most SPARC syscall handlers re-enable
    /// them immediately, which is what lets device interrupts extend OS
    /// invocations — §III-A).
    pub fn kernel_default() -> Self {
        Pstate(Self::IE | Self::PEF | Self::PRIV | Self::AG)
    }

    /// Creates a `PSTATE` from raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        Pstate(bits)
    }

    /// The raw register value (the predictor hashes this).
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether the processor is in privileged (OS) mode.
    pub const fn is_privileged(self) -> bool {
        self.0 & Self::PRIV != 0
    }

    /// Sets or clears the privileged-mode bit.
    pub fn set_privileged(&mut self, on: bool) {
        if on {
            self.0 |= Self::PRIV;
        } else {
            self.0 &= !Self::PRIV;
        }
    }

    /// Whether maskable interrupts are enabled.
    pub const fn interrupts_enabled(self) -> bool {
        self.0 & Self::IE != 0
    }

    /// Sets or clears the interrupt-enable bit.
    pub fn set_interrupts_enabled(&mut self, on: bool) {
        if on {
            self.0 |= Self::IE;
        } else {
            self.0 &= !Self::IE;
        }
    }

    /// Whether the FPU is enabled.
    pub const fn fpu_enabled(self) -> bool {
        self.0 & Self::PEF != 0
    }

    /// Sets or clears the FPU-enable bit.
    pub fn set_fpu_enabled(&mut self, on: bool) {
        if on {
            self.0 |= Self::PEF;
        } else {
            self.0 &= !Self::PEF;
        }
    }

    /// Whether the alternate-globals set is active (trap handlers).
    pub const fn alternate_globals(self) -> bool {
        self.0 & Self::AG != 0
    }

    /// Sets or clears the alternate-globals bit.
    pub fn set_alternate_globals(&mut self, on: bool) {
        if on {
            self.0 |= Self::AG;
        } else {
            self.0 &= !Self::AG;
        }
    }

    /// The 2-bit memory-model field (0 = TSO, 1 = PSO, 2 = RMO).
    pub const fn memory_model(self) -> u8 {
        ((self.0 >> Self::MM_SHIFT) & 0b11) as u8
    }

    /// Sets the memory-model field.
    ///
    /// # Panics
    ///
    /// Panics if `mm > 2`.
    pub fn set_memory_model(&mut self, mm: u8) {
        assert!(mm <= 2, "Pstate: memory model must be TSO(0)/PSO(1)/RMO(2)");
        self.0 = (self.0 & !(0b11 << Self::MM_SHIFT)) | ((mm as u64) << Self::MM_SHIFT);
    }
}

impl fmt::Display for Pstate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PSTATE[{}{}{}{} mm={}]",
            if self.is_privileged() { "P" } else { "u" },
            if self.interrupts_enabled() { "I" } else { "-" },
            if self.fpu_enabled() { "F" } else { "-" },
            if self.alternate_globals() { "A" } else { "-" },
            self.memory_model()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_default_is_unprivileged() {
        let p = Pstate::user_default();
        assert!(!p.is_privileged());
        assert!(p.interrupts_enabled());
        assert!(p.fpu_enabled());
        assert!(!p.alternate_globals());
    }

    #[test]
    fn kernel_default_is_privileged_with_interrupts() {
        let p = Pstate::kernel_default();
        assert!(p.is_privileged());
        // Interrupts stay enabled in handlers — the source of the paper's
        // hard-to-predict invocation extensions.
        assert!(p.interrupts_enabled());
        assert!(p.alternate_globals());
    }

    #[test]
    fn bit_toggles_round_trip() {
        let mut p = Pstate::user_default();
        p.set_privileged(true);
        assert!(p.is_privileged());
        p.set_privileged(false);
        assert!(!p.is_privileged());
        p.set_interrupts_enabled(false);
        assert!(!p.interrupts_enabled());
        p.set_fpu_enabled(false);
        assert!(!p.fpu_enabled());
        p.set_alternate_globals(true);
        assert!(p.alternate_globals());
    }

    #[test]
    fn memory_model_field_isolated() {
        let mut p = Pstate::user_default();
        p.set_memory_model(2);
        assert_eq!(p.memory_model(), 2);
        assert!(p.interrupts_enabled(), "MM write must not clobber IE");
        p.set_memory_model(0);
        assert_eq!(p.memory_model(), 0);
    }

    #[test]
    #[should_panic(expected = "memory model")]
    fn invalid_memory_model_panics() {
        Pstate::user_default().set_memory_model(3);
    }

    #[test]
    fn distinct_modes_hash_differently() {
        // The AState hash depends on PSTATE differing between contexts.
        assert_ne!(
            Pstate::user_default().bits(),
            Pstate::kernel_default().bits()
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Pstate::kernel_default().to_string().is_empty());
    }
}
