//! Property-style tests for the core-model structures, driven by seeded
//! [`Rng64`] case generation (dependency-free, bit-reproducible).

use crate::arch::ArchState;
use crate::branch::BranchPredictor;
use crate::core::{RegisterWindows, WindowEvent};
use crate::tlb::Tlb;
use osoffload_sim::Rng64;

const CASES: u64 = 64;

/// The TLB never exceeds capacity, and every address translates
/// consistently: a hit immediately after any translate of the same page
/// is free.
#[test]
fn tlb_capacity_and_rehit() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x71B0_0000 + case);
        let n = g.gen_range(1..300) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| g.gen_range(0..1 << 24)).collect();
        let mut tlb = Tlb::new(16, 4096, 50);
        for &a in &addrs {
            tlb.translate(a);
            assert!(tlb.resident() <= 16);
            assert_eq!(
                tlb.translate(a).as_u64(),
                0,
                "immediate re-hit must be free"
            );
        }
        let s = tlb.stats();
        assert_eq!(s.lookups.total(), addrs.len() as u64 * 2);
        assert!(s.lookups.hits() >= addrs.len() as u64);
    }
}

/// Register windows conserve call depth: after any call/return sequence,
/// depth equals calls minus matched returns, and returns at depth zero
/// are ignored.
#[test]
fn register_windows_conserve_depth() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x3E60_0000 + case);
        let mut w = RegisterWindows::new(8);
        let mut depth = 0u64;
        for _ in 0..g.gen_range(1..500) {
            if g.gen_bool(0.5) {
                w.call();
                depth += 1;
            } else {
                let ev = w.ret();
                if depth > 0 {
                    depth -= 1;
                } else {
                    assert_eq!(ev, WindowEvent::Ok, "underflow return must be a no-op");
                }
            }
            assert_eq!(w.depth(), depth);
        }
    }
}

/// A branch predictor trained on a perfectly biased branch converges to
/// 100% accuracy after warm-up, for any PC.
#[test]
fn bimodal_converges_on_biased_branches() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xB4A0_0000 + case);
        let pc = g.next_u64();
        let taken = g.gen_bool(0.5);
        let mut bp = BranchPredictor::new(1024, 10);
        for _ in 0..4 {
            bp.execute(pc, taken);
        }
        for _ in 0..20 {
            assert_eq!(bp.execute(pc, taken).as_u64(), 0);
        }
    }
}

/// AState inputs are a pure function of the registers: setting the same
/// values always produces the same inputs, and `%g0` never leaks a
/// written value.
#[test]
fn arch_state_inputs_are_pure() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xA57A_0000 + case);
        let number = g.next_u64();
        let a0 = g.next_u64();
        let a1 = g.next_u64();
        let junk = g.next_u64();
        let mut x = ArchState::new();
        x.set_global(0, junk); // discarded: %g0 is hardwired zero
        x.set_syscall_registers(number, a0, a1);
        x.enter_privileged();
        let first = x.astate_inputs();
        x.exit_privileged();

        let mut y = ArchState::new();
        y.set_syscall_registers(number, a0, a1);
        y.enter_privileged();
        assert_eq!(first, y.astate_inputs());
        assert_eq!(first[1], 0, "%g0 must read as zero");
    }
}
