//! Property-based tests for the core-model structures.

use crate::arch::ArchState;
use crate::branch::BranchPredictor;
use crate::core::{RegisterWindows, WindowEvent};
use crate::tlb::Tlb;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The TLB never exceeds capacity, and every address translates
    /// consistently: a hit immediately after any translate of the same
    /// page is free.
    #[test]
    fn tlb_capacity_and_rehit(addrs in prop::collection::vec(0u64..1 << 24, 1..300)) {
        let mut tlb = Tlb::new(16, 4096, 50);
        for &a in &addrs {
            tlb.translate(a);
            prop_assert!(tlb.resident() <= 16);
            prop_assert_eq!(tlb.translate(a).as_u64(), 0, "immediate re-hit must be free");
        }
        let s = tlb.stats();
        prop_assert_eq!(s.lookups.total(), addrs.len() as u64 * 2);
        prop_assert!(s.lookups.hits() >= addrs.len() as u64);
    }

    /// Register windows conserve call depth: after any call/return
    /// sequence, depth equals calls minus matched returns, and returns
    /// at depth zero are ignored.
    #[test]
    fn register_windows_conserve_depth(ops in prop::collection::vec(prop::bool::ANY, 1..500)) {
        let mut w = RegisterWindows::new(8);
        let mut depth = 0u64;
        for &call in &ops {
            if call {
                w.call();
                depth += 1;
            } else {
                let ev = w.ret();
                if depth > 0 {
                    depth -= 1;
                } else {
                    prop_assert_eq!(ev, WindowEvent::Ok, "underflow return must be a no-op");
                }
            }
            prop_assert_eq!(w.depth(), depth);
        }
    }

    /// A branch predictor trained on a perfectly biased branch converges
    /// to 100% accuracy after warm-up, for any PC.
    #[test]
    fn bimodal_converges_on_biased_branches(pc in prop::num::u64::ANY, taken in prop::bool::ANY) {
        let mut bp = BranchPredictor::new(1024, 10);
        for _ in 0..4 {
            bp.execute(pc, taken);
        }
        for _ in 0..20 {
            prop_assert_eq!(bp.execute(pc, taken).as_u64(), 0);
        }
    }

    /// AState inputs are a pure function of the registers: setting the
    /// same values always produces the same inputs, and `%g0` never
    /// leaks a written value.
    #[test]
    fn arch_state_inputs_are_pure(
        number in prop::num::u64::ANY,
        a0 in prop::num::u64::ANY,
        a1 in prop::num::u64::ANY,
        junk in prop::num::u64::ANY,
    ) {
        let mut x = ArchState::new();
        x.set_global(0, junk); // discarded: %g0 is hardwired zero
        x.set_syscall_registers(number, a0, a1);
        x.enter_privileged();
        let first = x.astate_inputs();
        x.exit_privileged();

        let mut y = ArchState::new();
        y.set_syscall_registers(number, a0, a1);
        y.enter_privileged();
        prop_assert_eq!(first, y.astate_inputs());
        prop_assert_eq!(first[1], 0, "%g0 must read as zero");
    }
}
