//! Translation look-aside buffer.
//!
//! Table II specifies a 128-entry fully-associative TLB. TLB behaviour
//! matters to the off-loading study because OS invocations touch kernel
//! pages that evict user translations (and vice versa) — one of the
//! interference channels that off-loading removes.

use core::fmt;
use osoffload_sim::{Counter, Cycle, Ratio};

/// Statistics for one TLB.
#[derive(Debug, Clone, Default)]
pub struct TlbStats {
    /// Hit/miss record.
    pub lookups: Ratio,
    /// Entries displaced while the TLB was full.
    pub evictions: Counter,
}

impl TlbStats {
    /// Zeroes the counters (used when discarding warm-up statistics).
    pub fn reset(&mut self) {
        self.lookups.take();
        self.evictions.take();
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lookups={} evictions={}", self.lookups, self.evictions)
    }
}

/// A fully-associative, LRU-replaced TLB.
///
/// # Examples
///
/// ```
/// use osoffload_cpu::Tlb;
/// use osoffload_sim::Cycle;
///
/// let mut tlb = Tlb::paper_default();
/// let miss = tlb.translate(0x123456789);
/// let hit = tlb.translate(0x123456789 + 8); // same page
/// assert!(miss > hit);
/// assert_eq!(hit, Cycle::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    page_shift: u32,
    miss_penalty: u64,
    entries: Vec<(u64, u64)>, // (vpn, last_use)
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given entry count, page size, and software
    /// miss-handler penalty in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64, miss_penalty: u64) -> Self {
        assert!(capacity > 0, "Tlb: capacity must be positive");
        assert!(
            page_bytes.is_power_of_two(),
            "Tlb: page size must be a power of two"
        );
        Tlb {
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            miss_penalty,
            entries: Vec::with_capacity(capacity),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The paper's configuration: 128 entries, fully associative
    /// (Table II), 8 KB SPARC pages, and a TSB-hit software refill cost
    /// of ~30 cycles (UltraSPARC handles TLB misses with a short
    /// privileged handler that usually hits the translation storage
    /// buffer).
    pub fn paper_default() -> Self {
        Tlb::new(128, 8192, 30)
    }

    /// Translates a byte address, returning the added latency
    /// ([`Cycle::ZERO`] on hit, the miss penalty on a refill).
    pub fn translate(&mut self, addr: u64) -> Cycle {
        let vpn = addr >> self.page_shift;
        self.clock += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            entry.1 = self.clock;
            self.stats.lookups.record(true);
            return Cycle::ZERO;
        }
        self.stats.lookups.record(false);
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru);
            self.stats.evictions.incr();
        }
        self.entries.push((vpn, self.clock));
        Cycle::new(self.miss_penalty)
    }

    /// Number of valid translations currently held.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Invalidates every translation (context switch / ASID wipe).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Statistics view.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Zeroes the statistics without invalidating translations.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry TLB ({} resident, {})",
            self.capacity,
            self.entries.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 4096, 50);
        assert_eq!(t.translate(0x1000), Cycle::new(50));
        assert_eq!(t.translate(0x1fff), Cycle::ZERO);
        assert_eq!(t.stats().lookups.hits(), 1);
        assert_eq!(t.stats().lookups.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096, 50);
        t.translate(0x1000); // page 1
        t.translate(0x2000); // page 2
        t.translate(0x1000); // touch page 1 -> page 2 is LRU
        t.translate(0x3000); // evicts page 2
        assert_eq!(t.translate(0x1000), Cycle::ZERO, "page 1 retained");
        assert_eq!(t.translate(0x2000), Cycle::new(50), "page 2 evicted");
        assert!(t.stats().evictions.get() >= 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = Tlb::new(8, 4096, 50);
        for i in 0..100u64 {
            t.translate(i * 4096);
            assert!(t.resident() <= 8);
        }
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn flush_forces_refills() {
        let mut t = Tlb::paper_default();
        t.translate(0x8000);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.translate(0x8000), Cycle::new(30));
    }

    #[test]
    fn paper_default_shape() {
        let t = Tlb::paper_default();
        assert_eq!(t.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_pages() {
        Tlb::new(4, 3000, 50);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tlb::paper_default().to_string().is_empty());
    }
}
