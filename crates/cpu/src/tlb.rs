//! Translation look-aside buffer.
//!
//! Table II specifies a 128-entry fully-associative TLB. TLB behaviour
//! matters to the off-loading study because OS invocations touch kernel
//! pages that evict user translations (and vice versa) — one of the
//! interference channels that off-loading removes.

use core::fmt;
use osoffload_sim::{Counter, Cycle, Ratio};

/// Statistics for one TLB.
#[derive(Debug, Clone, Default)]
pub struct TlbStats {
    /// Hit/miss record.
    pub lookups: Ratio,
    /// Entries displaced while the TLB was full.
    pub evictions: Counter,
}

impl TlbStats {
    /// Zeroes the counters (used when discarding warm-up statistics).
    pub fn reset(&mut self) {
        self.lookups.take();
        self.evictions.take();
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lookups={} evictions={}", self.lookups, self.evictions)
    }
}

/// Sentinel for an empty index slot.
const INDEX_NONE: u32 = u32::MAX;

/// A fully-associative, LRU-replaced TLB.
///
/// Lookups are O(1): a preallocated open-addressing hash index maps VPNs
/// to entry slots, replacing the linear scan of the associative array.
/// The clock/stamp discipline is exactly that of the plain scan, so hit
/// and eviction behaviour (including LRU victim choice) is bit-identical;
/// only the search is faster.
///
/// # Examples
///
/// ```
/// use osoffload_cpu::Tlb;
/// use osoffload_sim::Cycle;
///
/// let mut tlb = Tlb::paper_default();
/// let miss = tlb.translate(0x123456789);
/// let hit = tlb.translate(0x123456789 + 8); // same page
/// assert!(miss > hit);
/// assert_eq!(hit, Cycle::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    page_shift: u32,
    miss_penalty: u64,
    entries: Vec<(u64, u64)>, // (vpn, last_use)
    /// Open-addressing (linear-probe) hash index: `(vpn, slot)` pairs,
    /// slot `INDEX_NONE` marking an empty position. Sized to a power of
    /// two at least 4x `capacity`, so load stays below 25% and probe
    /// chains are short. Removal uses backward-shift deletion, so the
    /// table never holds tombstones.
    index: Vec<(u64, u32)>,
    index_mask: usize,
    /// Self-verifying memo of the last two translated `(vpn, slot)`
    /// pairs. Two entries because the core interleaves instruction-page
    /// and data-page translations through this one TLB; one entry would
    /// thrash on every instruction with a memory operand. The fast path
    /// re-checks `entries[slot]` still holds the vpn, so a stale memo
    /// (the slot was recycled) simply falls back — no invalidation
    /// bookkeeping.
    last: [(u64, u32); 2],
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given entry count, page size, and software
    /// miss-handler penalty in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64, miss_penalty: u64) -> Self {
        assert!(capacity > 0, "Tlb: capacity must be positive");
        assert!(
            page_bytes.is_power_of_two(),
            "Tlb: page size must be a power of two"
        );
        let index_size = (capacity * 4).next_power_of_two();
        Tlb {
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            miss_penalty,
            entries: Vec::with_capacity(capacity),
            index: vec![(0, INDEX_NONE); index_size],
            index_mask: index_size - 1,
            last: [(u64::MAX, INDEX_NONE); 2],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Home position of `vpn` in the hash index (Fibonacci hashing).
    #[inline]
    fn index_home(&self, vpn: u64) -> usize {
        (vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & self.index_mask
    }

    /// Finds the index position holding `vpn`, or `None`.
    #[inline]
    fn index_find(&self, vpn: u64) -> Option<usize> {
        let mut pos = self.index_home(vpn);
        loop {
            let (v, slot) = self.index[pos];
            if slot == INDEX_NONE {
                return None;
            }
            if v == vpn {
                return Some(pos);
            }
            pos = (pos + 1) & self.index_mask;
        }
    }

    /// Inserts a `vpn -> slot` mapping (the vpn must not be present).
    fn index_insert(&mut self, vpn: u64, slot: u32) {
        let mut pos = self.index_home(vpn);
        while self.index[pos].1 != INDEX_NONE {
            pos = (pos + 1) & self.index_mask;
        }
        self.index[pos] = (vpn, slot);
    }

    /// Points an existing `vpn` mapping at a new entry slot (used when a
    /// `swap_remove` moves the tail entry into the vacated slot).
    fn index_update(&mut self, vpn: u64, slot: u32) {
        let pos = self.index_find(vpn).expect("vpn must be indexed");
        self.index[pos].1 = slot;
    }

    /// Removes `vpn` from the index with backward-shift deletion, which
    /// keeps every remaining key reachable from its home position.
    fn index_remove(&mut self, vpn: u64) {
        let mask = self.index_mask;
        let mut hole = self.index_find(vpn).expect("vpn must be indexed");
        loop {
            self.index[hole].1 = INDEX_NONE;
            let mut probe = hole;
            loop {
                probe = (probe + 1) & mask;
                let (v, slot) = self.index[probe];
                if slot == INDEX_NONE {
                    return;
                }
                // The entry at `probe` may fill the hole only if its home
                // position is cyclically outside (hole, probe].
                let home = self.index_home(v);
                if (probe.wrapping_sub(home) & mask) >= (probe.wrapping_sub(hole) & mask) {
                    self.index[hole] = self.index[probe];
                    hole = probe;
                    break;
                }
            }
        }
    }

    /// The paper's configuration: 128 entries, fully associative
    /// (Table II), 8 KB SPARC pages, and a TSB-hit software refill cost
    /// of ~30 cycles (UltraSPARC handles TLB misses with a short
    /// privileged handler that usually hits the translation storage
    /// buffer).
    pub fn paper_default() -> Self {
        Tlb::new(128, 8192, 30)
    }

    /// Translates a byte address, returning the added latency
    /// ([`Cycle::ZERO`] on hit, the miss penalty on a refill).
    ///
    /// The memo check is inlineable so repeat-page translations resolve
    /// in the caller; everything past the memo is kept out of line.
    #[inline]
    pub fn translate(&mut self, addr: u64) -> Cycle {
        let vpn = addr >> self.page_shift;
        self.clock += 1;
        for &(mv, ms) in &self.last {
            if vpn == mv {
                let slot = ms as usize;
                if slot < self.entries.len() && self.entries[slot].0 == vpn {
                    self.entries[slot].1 = self.clock;
                    self.stats.lookups.record(true);
                    return Cycle::ZERO;
                }
            }
        }
        self.translate_indexed(vpn)
    }

    /// Memo-miss tail of [`Tlb::translate`]: full index lookup or refill.
    #[inline(never)]
    fn translate_indexed(&mut self, vpn: u64) -> Cycle {
        if let Some(pos) = self.index_find(vpn) {
            let slot = self.index[pos].1 as usize;
            self.entries[slot].1 = self.clock;
            self.last = [(vpn, slot as u32), self.last[0]];
            self.stats.lookups.record(true);
            return Cycle::ZERO;
        }
        self.stats.lookups.record(false);
        self.refill(vpn);
        self.last = [(vpn, (self.entries.len() - 1) as u32), self.last[0]];
        Cycle::new(self.miss_penalty)
    }

    /// Translates `count` back-to-back accesses that all fall on the same
    /// page, returning the total added latency. Bit-identical to calling
    /// [`Tlb::translate`] `count` times with same-page addresses: the
    /// clock advances by `count`, the entry's stamp lands on the final
    /// tick, and at most the first access misses.
    pub fn translate_run(&mut self, addr: u64, count: u64) -> Cycle {
        if count == 0 {
            return Cycle::ZERO;
        }
        let vpn = addr >> self.page_shift;
        if let Some(pos) = self.index_find(vpn) {
            self.clock += count;
            let slot = self.index[pos].1 as usize;
            self.entries[slot].1 = self.clock;
            self.stats.lookups.record_bulk(count, count);
            return Cycle::ZERO;
        }
        self.clock += 1;
        self.stats.lookups.record(false);
        self.refill(vpn);
        if count > 1 {
            // The remaining accesses hit the just-installed entry.
            self.clock += count - 1;
            let tail = self.entries.len() - 1;
            self.entries[tail].1 = self.clock;
            self.stats.lookups.record_bulk(count - 1, count - 1);
        }
        Cycle::new(self.miss_penalty)
    }

    /// Installs `vpn`, evicting the LRU entry when full. The caller has
    /// already advanced the clock and recorded the miss.
    fn refill(&mut self, vpn: u64) {
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            let victim_vpn = self.entries[lru].0;
            self.entries.swap_remove(lru);
            self.index_remove(victim_vpn);
            if lru < self.entries.len() {
                // swap_remove moved the tail entry into `lru`.
                self.index_update(self.entries[lru].0, lru as u32);
            }
            self.stats.evictions.incr();
        }
        self.index_insert(vpn, self.entries.len() as u32);
        self.entries.push((vpn, self.clock));
    }

    /// Number of valid translations currently held.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Invalidates every translation (context switch / ASID wipe).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.index.fill((0, INDEX_NONE));
        self.last = [(u64::MAX, INDEX_NONE); 2];
    }

    /// Statistics view.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Zeroes the statistics without invalidating translations.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry TLB ({} resident, {})",
            self.capacity,
            self.entries.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 4096, 50);
        assert_eq!(t.translate(0x1000), Cycle::new(50));
        assert_eq!(t.translate(0x1fff), Cycle::ZERO);
        assert_eq!(t.stats().lookups.hits(), 1);
        assert_eq!(t.stats().lookups.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2, 4096, 50);
        t.translate(0x1000); // page 1
        t.translate(0x2000); // page 2
        t.translate(0x1000); // touch page 1 -> page 2 is LRU
        t.translate(0x3000); // evicts page 2
        assert_eq!(t.translate(0x1000), Cycle::ZERO, "page 1 retained");
        assert_eq!(t.translate(0x2000), Cycle::new(50), "page 2 evicted");
        assert!(t.stats().evictions.get() >= 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = Tlb::new(8, 4096, 50);
        for i in 0..100u64 {
            t.translate(i * 4096);
            assert!(t.resident() <= 8);
        }
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn flush_forces_refills() {
        let mut t = Tlb::paper_default();
        t.translate(0x8000);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.translate(0x8000), Cycle::new(30));
    }

    #[test]
    fn paper_default_shape() {
        let t = Tlb::paper_default();
        assert_eq!(t.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_pages() {
        Tlb::new(4, 3000, 50);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tlb::paper_default().to_string().is_empty());
    }

    /// The pre-index implementation, kept as a behavioural oracle.
    struct ScanTlb {
        capacity: usize,
        page_shift: u32,
        miss_penalty: u64,
        entries: Vec<(u64, u64)>,
        clock: u64,
    }

    impl ScanTlb {
        fn new(capacity: usize, page_bytes: u64, miss_penalty: u64) -> Self {
            ScanTlb {
                capacity,
                page_shift: page_bytes.trailing_zeros(),
                miss_penalty,
                entries: Vec::new(),
                clock: 0,
            }
        }

        fn translate(&mut self, addr: u64) -> Cycle {
            let vpn = addr >> self.page_shift;
            self.clock += 1;
            if let Some(entry) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
                entry.1 = self.clock;
                return Cycle::ZERO;
            }
            if self.entries.len() == self.capacity {
                let lru = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(i, _)| i)
                    .unwrap();
                self.entries.swap_remove(lru);
            }
            self.entries.push((vpn, self.clock));
            Cycle::new(self.miss_penalty)
        }
    }

    /// The indexed TLB returns the same latency on every access as the
    /// plain linear scan (hence identical hit/miss/eviction behaviour),
    /// across random streams that thrash small capacities, and the bulk
    /// same-page API decomposes into repeated single translations.
    #[test]
    fn indexed_tlb_matches_reference_scan() {
        use osoffload_sim::Rng64;
        for case in 0..32u64 {
            let mut g = Rng64::seed_from(0x71B0_0000 + case);
            let capacity = g.gen_range(1..12) as usize;
            let mut indexed = Tlb::new(capacity, 4096, 30);
            let mut batched = Tlb::new(capacity, 4096, 30);
            let mut reference = ScanTlb::new(capacity, 4096, 30);
            for _ in 0..2_000 {
                let addr = g.gen_range(0..4 * capacity as u64) * 4096 + g.gen_range(0..4096);
                let run = g.gen_range(1..4);
                let mut want = Cycle::ZERO;
                let mut got = Cycle::ZERO;
                for _ in 0..run {
                    want += reference.translate(addr);
                    got += indexed.translate(addr);
                }
                assert_eq!(got, want, "capacity {capacity}");
                assert_eq!(
                    batched.translate_run(addr, run),
                    want,
                    "capacity {capacity}"
                );
                if g.gen_range(0..512) == 0 {
                    indexed.flush();
                    batched.flush();
                    reference.entries.clear();
                }
            }
            assert_eq!(indexed.resident(), reference.entries.len());
            assert_eq!(
                indexed.stats().lookups.hits(),
                batched.stats().lookups.hits()
            );
            assert_eq!(
                indexed.stats().evictions.get(),
                batched.stats().evictions.get()
            );
            // Entry state (and therefore future LRU victims) agrees too.
            let mut a = indexed.entries.clone();
            let mut b = reference.entries.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
