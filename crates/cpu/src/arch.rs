//! Architected register state.
//!
//! The hardware predictor's input is the *AState*: "the XOR of PSTATE,
//! g0 and g1 (global registers), and i0 and i1 (input argument registers)"
//! sampled at every switch to privileged mode (§III-A). [`ArchState`]
//! models exactly the registers that participate, plus the program
//! counter and the trap entry/exit protocol that updates them.
//!
//! On SPARC the syscall convention places the syscall number in `%g1` and
//! the first arguments in `%o0`/`%o1` — which become the handler's
//! `%i0`/`%i1` after the trap's register-window shift. The workload
//! models set these registers before raising a trap, so the AState really
//! does encode "the type of OS invocation, input values, and the
//! execution environment".

use crate::pstate::Pstate;
use core::fmt;

/// Architected register state of one hardware thread.
///
/// # Examples
///
/// ```
/// use osoffload_cpu::ArchState;
///
/// let mut arch = ArchState::new();
/// arch.set_syscall_registers(167 /* read */, 3, 8192);
/// arch.enter_privileged();
/// let a = arch.astate_inputs();
/// arch.exit_privileged();
/// assert!(!arch.pstate().is_privileged());
/// // Same registers => same AState inputs on the next trap.
/// arch.enter_privileged();
/// assert_eq!(arch.astate_inputs(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    pstate: Pstate,
    globals: [u64; 8],
    ins: [u64; 8],
    pc: u64,
    saved_user_pstate: Pstate,
}

impl ArchState {
    /// Creates a thread in user mode with zeroed registers.
    pub fn new() -> Self {
        ArchState {
            pstate: Pstate::user_default(),
            globals: [0; 8],
            ins: [0; 8],
            pc: 0,
            saved_user_pstate: Pstate::user_default(),
        }
    }

    /// Current `PSTATE`.
    pub fn pstate(&self) -> Pstate {
        self.pstate
    }

    /// Mutable `PSTATE` (interrupt masking etc.).
    pub fn pstate_mut(&mut self) -> &mut Pstate {
        &mut self.pstate
    }

    /// Reads global register `%g<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn global(&self, i: usize) -> u64 {
        self.globals[i]
    }

    /// Writes global register `%g<i>`. Writes to `%g0` are discarded —
    /// it is hardwired to zero on SPARC.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn set_global(&mut self, i: usize, value: u64) {
        assert!(i < 8, "ArchState: global register index out of range");
        if i != 0 {
            self.globals[i] = value;
        }
    }

    /// Reads input register `%i<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn input(&self, n: usize) -> u64 {
        self.ins[n]
    }

    /// Writes input register `%i<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn set_input(&mut self, n: usize, value: u64) {
        self.ins[n] = value;
    }

    /// Program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Convenience for the SPARC syscall convention: `%g1` = syscall
    /// number, `%i0`/`%i1` = first two arguments (as seen by the handler
    /// after the trap's window shift).
    pub fn set_syscall_registers(&mut self, number: u64, arg0: u64, arg1: u64) {
        self.set_global(1, number);
        self.set_input(0, arg0);
        self.set_input(1, arg1);
    }

    /// Enters privileged mode (trap taken): saves the user `PSTATE`,
    /// sets `PRIV` and the alternate-globals bit.
    pub fn enter_privileged(&mut self) {
        self.saved_user_pstate = self.pstate;
        self.pstate.set_privileged(true);
        self.pstate.set_alternate_globals(true);
    }

    /// Exits privileged mode (trap return): restores the saved user
    /// `PSTATE`.
    pub fn exit_privileged(&mut self) {
        self.pstate = self.saved_user_pstate;
    }

    /// The five register values the predictor XOR-hashes, in paper order:
    /// `PSTATE`, `%g0`, `%g1`, `%i0`, `%i1` (§III-A).
    pub fn astate_inputs(&self) -> [u64; 5] {
        [
            self.pstate.bits(),
            self.globals[0],
            self.globals[1],
            self.ins[0],
            self.ins[1],
        ]
    }
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for ArchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pc={:#x} g1={:#x} i0={:#x} i1={:#x}",
            self.pstate, self.pc, self.globals[1], self.ins[0], self.ins[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g0_is_hardwired_zero() {
        let mut a = ArchState::new();
        a.set_global(0, 0xdead);
        assert_eq!(a.global(0), 0);
        a.set_global(1, 0xdead);
        assert_eq!(a.global(1), 0xdead);
    }

    #[test]
    fn trap_entry_exit_restores_user_pstate() {
        let mut a = ArchState::new();
        a.pstate_mut().set_fpu_enabled(false);
        let user = a.pstate();
        a.enter_privileged();
        assert!(a.pstate().is_privileged());
        assert!(a.pstate().alternate_globals());
        a.exit_privileged();
        assert_eq!(a.pstate(), user);
    }

    #[test]
    fn nested_interrupt_inside_trap_keeps_priv() {
        let mut a = ArchState::new();
        a.enter_privileged();
        // An interrupt handler may mask interrupts while in the kernel.
        a.pstate_mut().set_interrupts_enabled(false);
        assert!(a.pstate().is_privileged());
        a.exit_privileged();
        assert!(a.pstate().interrupts_enabled(), "user IE restored");
    }

    #[test]
    fn astate_inputs_track_syscall_registers() {
        let mut a = ArchState::new();
        a.set_syscall_registers(5, 100, 200);
        a.enter_privileged();
        let x = a.astate_inputs();
        assert_eq!(x[1], 0, "g0 always zero");
        assert_eq!(x[2], 5);
        assert_eq!(x[3], 100);
        assert_eq!(x[4], 200);
        a.exit_privileged();

        // Different args => different inputs.
        a.set_syscall_registers(5, 100, 300);
        a.enter_privileged();
        assert_ne!(a.astate_inputs(), x);
    }

    #[test]
    fn astate_distinguishes_user_and_kernel_pstate() {
        let mut a = ArchState::new();
        let user_inputs = a.astate_inputs();
        a.enter_privileged();
        assert_ne!(a.astate_inputs()[0], user_inputs[0]);
    }

    #[test]
    fn pc_round_trips() {
        let mut a = ArchState::new();
        a.set_pc(0x4_0000);
        assert_eq!(a.pc(), 0x4_0000);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ArchState::new().to_string().is_empty());
    }
}
