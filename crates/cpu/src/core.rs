//! Per-core microarchitectural state.
//!
//! [`CoreState`] bundles the structures that belong to a *physical core*
//! — TLB, branch predictor, retirement counters. Architected thread state
//! ([`ArchState`](crate::arch::ArchState)) deliberately lives outside: it
//! migrates with the thread during off-loading while the TLB and branch
//! predictor stay put (which is precisely why off-loading changes their
//! hit rates).
//!
//! The module also models SPARC register windows, whose spill/fill traps
//! are the ultra-short privileged invocations §IV discusses excluding
//! from the headline graphs.

use crate::branch::BranchPredictor;
use crate::tlb::Tlb;
use core::fmt;
use osoffload_sim::{Counter, Cycle, Instret};

/// Fixed timing parameters of the in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Cycles consumed by any instruction before memory/branch penalties
    /// (1 for the paper's single-issue in-order core).
    pub base_cycles_per_instr: u64,
    /// Number of register windows (SPARC implementations: 3–32; 8 is
    /// typical of UltraSPARC-III).
    pub register_windows: u32,
}

impl CoreParams {
    /// The paper's Table II design point.
    pub fn paper_default() -> Self {
        CoreParams {
            base_cycles_per_instr: 1,
            register_windows: 8,
        }
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of a call/return against the register-window file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowEvent {
    /// The window shift succeeded without a trap.
    Ok,
    /// A `save` found no clean window: spill trap (privileged, ~20 insn).
    SpillTrap,
    /// A `restore` found no valid window: fill trap (privileged, ~20 insn).
    FillTrap,
}

/// SPARC rotating register windows.
///
/// Tracks call depth against the physical window count; overflowing calls
/// raise spill traps and underflowing returns raise fill traps, exactly
/// the short (<25 instruction) privileged invocations the paper calls out
/// as a SPARC artefact (§IV).
///
/// # Examples
///
/// ```
/// use osoffload_cpu::core::{RegisterWindows, WindowEvent};
///
/// let mut w = RegisterWindows::new(3);
/// assert_eq!(w.call(), WindowEvent::Ok);
/// assert_eq!(w.call(), WindowEvent::Ok);
/// // Third call exceeds the 3-window file (one reserved): spill.
/// assert_eq!(w.call(), WindowEvent::SpillTrap);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterWindows {
    physical: u32,
    /// Call frames currently backed by physical windows.
    resident: u32,
    /// Total call depth (frames spilled to memory are still on the stack).
    depth: u64,
    spills: Counter,
    fills: Counter,
}

impl RegisterWindows {
    /// Creates a window file with `physical` windows.
    ///
    /// # Panics
    ///
    /// Panics if `physical < 2` (SPARC requires one window reserved for
    /// trap handlers).
    pub fn new(physical: u32) -> Self {
        assert!(physical >= 2, "RegisterWindows: need at least 2 windows");
        RegisterWindows {
            physical,
            resident: 0,
            depth: 0,
            spills: Counter::new(),
            fills: Counter::new(),
        }
    }

    /// Executes a `save` (function call). Returns whether a spill trap
    /// was raised.
    pub fn call(&mut self) -> WindowEvent {
        self.depth += 1;
        // One window is reserved for the trap handler itself.
        if self.resident + 1 >= self.physical {
            self.spills.incr();
            // The spill handler frees older windows; model half the file
            // being written out, which is what Solaris does.
            self.resident = self.physical / 2;
            WindowEvent::SpillTrap
        } else {
            self.resident += 1;
            WindowEvent::Ok
        }
    }

    /// Executes a `restore` (function return). Returns whether a fill
    /// trap was raised. Returns at depth zero are ignored (top frame).
    pub fn ret(&mut self) -> WindowEvent {
        if self.depth == 0 {
            return WindowEvent::Ok;
        }
        self.depth -= 1;
        if self.resident == 0 {
            self.fills.incr();
            // The fill handler reloads a batch of windows from memory.
            self.resident = (self.physical / 2).min(self.depth.min(u32::MAX as u64) as u32);
            WindowEvent::FillTrap
        } else {
            self.resident -= 1;
            WindowEvent::Ok
        }
    }

    /// Spill traps raised so far.
    pub fn spills(&self) -> u64 {
        self.spills.get()
    }

    /// Fill traps raised so far.
    pub fn fills(&self) -> u64 {
        self.fills.get()
    }

    /// Current call depth.
    pub fn depth(&self) -> u64 {
        self.depth
    }
}

/// Microarchitectural state of one physical core.
///
/// # Examples
///
/// ```
/// use osoffload_cpu::{CoreParams, CoreState};
///
/// let mut core = CoreState::new(CoreParams::paper_default());
/// core.retire_user(100);
/// core.retire_privileged(50);
/// assert_eq!(core.retired_total().as_u64(), 150);
/// assert!((core.privileged_fraction() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct CoreState {
    params: CoreParams,
    tlb: Tlb,
    branch: BranchPredictor,
    windows: RegisterWindows,
    user_retired: Instret,
    priv_retired: Instret,
    busy: Cycle,
}

impl CoreState {
    /// Creates a core with cold structures.
    pub fn new(params: CoreParams) -> Self {
        CoreState {
            params,
            tlb: Tlb::paper_default(),
            branch: BranchPredictor::paper_default(),
            windows: RegisterWindows::new(params.register_windows),
            user_retired: Instret::ZERO,
            priv_retired: Instret::ZERO,
            busy: Cycle::ZERO,
        }
    }

    /// Pipeline parameters.
    pub fn params(&self) -> &CoreParams {
        &self.params
    }

    /// The core's TLB.
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// TLB (read-only).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The core's branch predictor.
    pub fn branch_mut(&mut self) -> &mut BranchPredictor {
        &mut self.branch
    }

    /// Branch predictor (read-only).
    pub fn branch(&self) -> &BranchPredictor {
        &self.branch
    }

    /// The core's register-window file.
    pub fn windows_mut(&mut self) -> &mut RegisterWindows {
        &mut self.windows
    }

    /// Register windows (read-only).
    pub fn windows(&self) -> &RegisterWindows {
        &self.windows
    }

    /// Records `n` retired user-mode instructions.
    pub fn retire_user(&mut self, n: u64) {
        self.user_retired += n;
    }

    /// Records `n` retired privileged-mode instructions.
    pub fn retire_privileged(&mut self, n: u64) {
        self.priv_retired += n;
    }

    /// Total instructions retired on this core.
    pub fn retired_total(&self) -> Instret {
        self.user_retired + self.priv_retired
    }

    /// Privileged instructions retired on this core.
    pub fn retired_privileged(&self) -> Instret {
        self.priv_retired
    }

    /// Fraction of retired instructions that were privileged (0 when the
    /// core has retired nothing).
    pub fn privileged_fraction(&self) -> f64 {
        let total = self.retired_total().as_u64();
        if total == 0 {
            0.0
        } else {
            self.priv_retired.as_f64() / total as f64
        }
    }

    /// Cycles this core has spent executing (busy time, for OS-core
    /// utilisation: Table III).
    pub fn busy(&self) -> Cycle {
        self.busy
    }

    /// Adds busy time.
    pub fn add_busy(&mut self, c: Cycle) {
        self.busy += c;
    }

    /// Zeroes retirement counters, busy time, and the TLB/branch
    /// statistics, keeping all microarchitectural state warm (used when
    /// discarding warm-up statistics).
    pub fn reset_stats(&mut self) {
        self.user_retired = Instret::ZERO;
        self.priv_retired = Instret::ZERO;
        self.busy = Cycle::ZERO;
        self.tlb.reset_stats();
        self.branch.reset_stats();
    }
}

impl fmt::Display for CoreState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core: {} retired ({:.1}% priv), busy {}",
            self.retired_total(),
            self.privileged_fraction() * 100.0,
            self.busy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_call_chain_spills() {
        let mut w = RegisterWindows::new(8);
        let mut spills = 0;
        for _ in 0..20 {
            if w.call() == WindowEvent::SpillTrap {
                spills += 1;
            }
        }
        assert!(spills >= 2, "spills = {spills}");
        assert_eq!(w.depth(), 20);
    }

    #[test]
    fn return_chain_fills() {
        let mut w = RegisterWindows::new(8);
        for _ in 0..20 {
            w.call();
        }
        let mut fills = 0;
        for _ in 0..20 {
            if w.ret() == WindowEvent::FillTrap {
                fills += 1;
            }
        }
        assert!(fills >= 1, "fills = {fills}");
        assert_eq!(w.depth(), 0);
    }

    #[test]
    fn shallow_recursion_never_traps() {
        let mut w = RegisterWindows::new(8);
        for _ in 0..100 {
            assert_eq!(w.call(), WindowEvent::Ok);
            assert_eq!(w.call(), WindowEvent::Ok);
            assert_eq!(w.ret(), WindowEvent::Ok);
            assert_eq!(w.ret(), WindowEvent::Ok);
        }
        assert_eq!(w.spills(), 0);
        assert_eq!(w.fills(), 0);
    }

    #[test]
    fn return_at_depth_zero_is_noop() {
        let mut w = RegisterWindows::new(4);
        assert_eq!(w.ret(), WindowEvent::Ok);
        assert_eq!(w.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_window_rejected() {
        RegisterWindows::new(1);
    }

    #[test]
    fn core_state_counters() {
        let mut c = CoreState::new(CoreParams::paper_default());
        assert_eq!(c.privileged_fraction(), 0.0);
        c.retire_user(90);
        c.retire_privileged(10);
        assert!((c.privileged_fraction() - 0.1).abs() < 1e-12);
        c.add_busy(Cycle::new(500));
        assert_eq!(c.busy(), Cycle::new(500));
        assert_eq!(c.retired_privileged().as_u64(), 10);
    }

    #[test]
    fn core_structures_accessible() {
        let mut c = CoreState::new(CoreParams::paper_default());
        assert_eq!(c.tlb().capacity(), 128);
        assert_eq!(c.branch().entries(), 4096);
        c.tlb_mut().translate(0x1000);
        c.branch_mut().execute(0x2000, true);
        c.windows_mut().call();
        assert_eq!(c.windows().depth(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CoreState::new(CoreParams::default()).to_string().is_empty());
    }
}
