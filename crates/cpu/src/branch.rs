//! Bimodal branch predictor.
//!
//! Gloy et al. and others (the paper's §VI-A) showed OS execution degrades
//! branch-prediction accuracy for user code: kernel branches alias into
//! the same pattern tables. Our bimodal predictor reproduces that channel
//! — when user and OS streams share one core they share (and pollute) one
//! counter table; off-loading gives each its own.

use core::fmt;
use osoffload_sim::{Cycle, Ratio};

/// Statistics for one branch predictor.
#[derive(Debug, Clone, Default)]
pub struct BranchStats {
    /// Correct/incorrect predictions.
    pub predictions: Ratio,
}

impl BranchStats {
    /// Zeroes the counters (used when discarding warm-up statistics).
    pub fn reset(&mut self) {
        self.predictions.take();
    }
}

impl fmt::Display for BranchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "predictions={}", self.predictions)
    }
}

/// A table of 2-bit saturating counters indexed by low PC bits.
///
/// # Examples
///
/// ```
/// use osoffload_cpu::BranchPredictor;
///
/// let mut bp = BranchPredictor::paper_default();
/// // Train a loop branch at one PC.
/// for _ in 0..10 {
///     bp.execute(0x4000, true);
/// }
/// let penalty = bp.execute(0x4000, true);
/// assert_eq!(penalty.as_u64(), 0); // predicted correctly
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    mask: u64,
    mispredict_penalty: u64,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` 2-bit counters and the given
    /// mispredict penalty in cycles.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize, mispredict_penalty: u64) -> Self {
        assert!(
            entries.is_power_of_two(),
            "BranchPredictor: entries must be a power of two"
        );
        BranchPredictor {
            table: vec![1; entries], // weakly not-taken
            mask: entries as u64 - 1,
            mispredict_penalty,
            stats: BranchStats::default(),
        }
    }

    /// A 4K-entry table with a 6-cycle flush penalty, representative of
    /// the short in-order pipeline the paper simulates.
    pub fn paper_default() -> Self {
        BranchPredictor::new(4096, 6)
    }

    /// Predicts the branch at `pc`, updates the table with the actual
    /// `taken` outcome, and returns the mispredict penalty (zero when the
    /// prediction was correct).
    #[inline]
    pub fn execute(&mut self, pc: u64, taken: bool) -> Cycle {
        // Drop the 2 alignment bits so consecutive branches spread out.
        let idx = ((pc >> 2) & self.mask) as usize;
        let counter = &mut self.table[idx];
        let predicted_taken = *counter >= 2;
        let correct = predicted_taken == taken;
        if taken {
            if *counter < 3 {
                *counter += 1;
            }
        } else if *counter > 0 {
            *counter -= 1;
        }
        self.stats.predictions.record(correct);
        if correct {
            Cycle::ZERO
        } else {
            Cycle::new(self.mispredict_penalty)
        }
    }

    /// Statistics view.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    /// Zeroes the statistics without untraining the table.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of counters in the table.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl fmt::Display for BranchPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-entry bimodal ({})", self.table.len(), self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut bp = BranchPredictor::new(64, 10);
        for _ in 0..4 {
            bp.execute(0x100, true);
        }
        assert_eq!(bp.execute(0x100, true), Cycle::ZERO);
        let acc = bp.stats().predictions.rate();
        assert!(acc > 0.5, "accuracy = {acc}");
    }

    #[test]
    fn mispredict_costs_penalty() {
        let mut bp = BranchPredictor::new(64, 10);
        for _ in 0..4 {
            bp.execute(0x100, true);
        }
        assert_eq!(bp.execute(0x100, false), Cycle::new(10));
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut bp = BranchPredictor::new(64, 10);
        for _ in 0..4 {
            bp.execute(0x100, true);
        }
        bp.execute(0x100, false); // strongly-taken -> weakly-taken
                                  // Still predicts taken.
        assert_eq!(bp.execute(0x100, true), Cycle::ZERO);
    }

    #[test]
    fn aliasing_interference_is_real() {
        // Two perfectly biased branches that alias to the same counter
        // (same index after masking) interfere destructively.
        let mut shared = BranchPredictor::new(16, 10);
        let pc_a = 0x0u64;
        let pc_b = pc_a + 16 * 4; // same index in a 16-entry table
        let mut mispredicts = 0;
        for _ in 0..100 {
            if shared.execute(pc_a, true).as_u64() > 0 {
                mispredicts += 1;
            }
            if shared.execute(pc_b, false).as_u64() > 0 {
                mispredicts += 1;
            }
        }
        assert!(mispredicts > 50, "aliasing should thrash: {mispredicts}");

        // The same streams in separate predictors are near-perfect.
        let mut private_a = BranchPredictor::new(16, 10);
        let mut private_b = BranchPredictor::new(16, 10);
        let mut clean_mispredicts = 0;
        for _ in 0..100 {
            if private_a.execute(pc_a, true).as_u64() > 0 {
                clean_mispredicts += 1;
            }
            if private_b.execute(pc_b, false).as_u64() > 0 {
                clean_mispredicts += 1;
            }
        }
        assert!(
            clean_mispredicts <= 4,
            "separate tables: {clean_mispredicts}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        BranchPredictor::new(100, 10);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!BranchPredictor::paper_default().to_string().is_empty());
    }
}
