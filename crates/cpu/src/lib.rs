//! In-order core model for the `osoffload` CMP simulator.
//!
//! The paper simulates in-order UltraSPARC-III cores (§IV, Table II). This
//! crate models the per-core microarchitectural state that matters to the
//! off-loading study:
//!
//! * [`pstate`] — the SPARC `PSTATE` register, whose privileged-mode bit
//!   defines what counts as "OS execution" (§IV) and which feeds the
//!   AState hash;
//! * [`arch`] — architected register state ([`ArchState`]): the globals
//!   and input-argument registers the hardware predictor XOR-hashes at
//!   every user→privileged transition (§III-A);
//! * [`tlb`] — a 128-entry fully-associative TLB (Table II);
//! * [`branch`] — a bimodal branch predictor, capturing the user/OS
//!   aliasing interference that off-loading removes;
//! * [`core`] — [`CoreState`], bundling the above per hardware thread,
//!   plus the register-window spill/fill trap mechanics unique to SPARC
//!   (§IV discusses excluding these ultra-short traps).
//!
//! # Examples
//!
//! ```
//! use osoffload_cpu::{ArchState, Pstate};
//!
//! let mut arch = ArchState::new();
//! arch.set_syscall_registers(4 /* write */, 0xbeef, 4096);
//! arch.enter_privileged();
//! assert!(arch.pstate().is_privileged());
//! let inputs = arch.astate_inputs();
//! assert_eq!(inputs.len(), 5); // PSTATE, g0, g1, i0, i1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod branch;
pub mod core;
pub mod pstate;
pub mod tlb;

#[cfg(test)]
mod proptests;

pub use arch::ArchState;
pub use branch::{BranchPredictor, BranchStats};
pub use core::{CoreParams, CoreState};
pub use pstate::Pstate;
pub use tlb::{Tlb, TlbStats};
