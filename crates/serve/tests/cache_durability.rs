//! Durability proofs for the serve result cache, mirroring
//! `tests/crash_recovery.rs`: truncation at every byte offset is
//! tolerated, corrupt records are skipped (not poison), duplicates are
//! last-wins, and eviction compacts the WAL atomically.

use osoffload_runner::journal::envelope;
use osoffload_runner::{record_plan, run_plan, RunnerOptions};
use osoffload_serve::cache::{read_entries, ResultCache, HEADER_BODY};
use osoffload_serve::wire;
use osoffload_system::experiments::{single_config, Scale};
use osoffload_system::PolicyKind;
use osoffload_workload::Profile;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osoffload_cachedur_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Computes three real rows (distinct configurations) and their wire
/// texts — the material every durability scenario is built from.
fn sample_rows() -> Vec<(String, osoffload_runner::PointResult)> {
    let scale = Scale {
        instructions: 30_000,
        warmup: 10_000,
        seed: 5,
        compute_profiles: 1,
    };
    let plan = record_plan("cache-dur", scale.seed, |ev| {
        for threshold in [0, 500, 5_000] {
            ev(single_config(
                Profile::apache(),
                PolicyKind::HardwarePredictor { threshold },
                1_000,
                1,
                scale,
            ));
        }
    });
    let opts = RunnerOptions {
        workers: 2,
        quiet: true,
        canonical: true,
        out_dir: std::env::temp_dir(),
        ..RunnerOptions::default()
    };
    let sweep = run_plan(&plan, &opts);
    plan.points()
        .iter()
        .zip(sweep.rows)
        .map(|(p, row)| {
            assert!(row.is_ok());
            (wire::config_to_json(&p.config).expect("wire"), row)
        })
        .collect()
}

fn populated_cache(dir: &Path, rows: &[(String, osoffload_runner::PointResult)]) -> PathBuf {
    let path = dir.join("cache.wal");
    let mut cache = ResultCache::open(&path, 0).expect("open");
    for (wire_text, row) in rows {
        assert!(cache.insert(wire_text, row).expect("insert"));
    }
    path
}

#[test]
fn every_truncation_offset_is_tolerated() {
    let rows = sample_rows();
    let dir = scratch("trunc");
    let path = populated_cache(&dir, &rows);
    let intact = std::fs::read(&path).expect("read cache");

    // Line boundaries tell us how many entries a prefix should preserve.
    let mut boundaries = Vec::new(); // (offset, complete lines up to it)
    for (i, b) in intact.iter().enumerate() {
        if *b == b'\n' {
            boundaries.push(i + 1);
        }
    }
    assert_eq!(
        boundaries.len(),
        1 + rows.len(),
        "header + one line per row"
    );

    let probe = dir.join("probe.wal");
    for cut in 0..=intact.len() {
        std::fs::write(&probe, &intact[..cut]).expect("truncate");
        // Lines fully inside the prefix survive; a torn tail is dropped.
        let complete = boundaries.iter().filter(|&&end| end <= cut).count();
        if complete == 0 {
            // Header gone: opening must fail loudly, never misread.
            assert!(
                ResultCache::open(&probe, 0).is_err(),
                "cut at {cut} lost the header and must refuse to open"
            );
            continue;
        }
        let mut cache =
            ResultCache::open(&probe, 0).unwrap_or_else(|e| panic!("cut at {cut} must open: {e}"));
        assert_eq!(
            cache.len(),
            complete - 1,
            "cut at {cut}: wrong survivor count"
        );
        assert!(
            cache.warnings().is_empty(),
            "cut at {cut}: a torn tail is expected, not warned about"
        );
        for (wire_text, row) in &rows[..complete - 1] {
            let digest = row.config_digest();
            let served = cache
                .serve(&digest, wire_text, row.index, &row.id, row.seed)
                .unwrap_or_else(|| panic!("cut at {cut}: {digest} must be servable"));
            assert_eq!(served.stable_json(), row.stable_json());
        }
        // The healed file must append cleanly after any truncation.
        let (extra_wire, extra_row) = &rows[rows.len() - 1];
        if cache
            .lookup(&extra_row.config_digest(), extra_wire)
            .is_none()
        {
            assert!(cache
                .insert(extra_wire, extra_row)
                .expect("insert after heal"));
            assert_eq!(cache.len(), complete);
        }
        drop(cache);
        let reopened = ResultCache::open(&probe, 0).expect("reopen healed cache");
        assert!(
            reopened.warnings().is_empty(),
            "cut at {cut}: heal left damage"
        );
    }
}

#[test]
fn corrupt_and_garbage_records_are_skipped_not_poison() {
    let rows = sample_rows();
    let dir = scratch("corrupt");
    let path = populated_cache(&dir, &rows);
    let text = std::fs::read_to_string(&path).expect("read cache");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);

    // Flip a byte inside the MIDDLE record's body (checksum mismatch),
    // and splice in garbage lines; later records must survive — unlike
    // the runner journal, which stops at the first bad line.
    let mut corrupted = lines[1].to_string();
    let flip = corrupted.len() - 10;
    let old = corrupted.remove(flip);
    corrupted.insert(flip, if old == 'x' { 'y' } else { 'x' });
    // `envelope` already newline-terminates its line.
    let unrestorable = envelope("{\"digest\":\"0123456789abcdef\",\"config\":{},\"stable\":{}}");
    let mangled = format!(
        "{}\n{}\nnot an envelope at all\n{}\n{}{}\n",
        lines[0], lines[1], corrupted, unrestorable, lines[3]
    );
    std::fs::write(&path, mangled).expect("mangle cache");

    let cache = ResultCache::open(&path, 0).expect("open survives corruption");
    assert_eq!(
        cache.warnings().len(),
        3,
        "bad checksum + garbage + unrestorable record each warn: {:?}",
        cache.warnings()
    );
    assert_eq!(
        cache.len(),
        2,
        "rows 0 and 2 survive; the mangled middle is dropped"
    );
    for (wire_text, row) in [&rows[0], &rows[2]] {
        assert!(cache.lookup(&row.config_digest(), wire_text).is_some());
    }
    drop(cache);
    // Healing compacted the damage away: a reopen is clean.
    let clean = ResultCache::open(&path, 0).expect("reopen");
    assert!(clean.warnings().is_empty(), "{:?}", clean.warnings());
    assert_eq!(clean.len(), 2);
}

#[test]
fn duplicate_digests_are_last_wins() {
    let rows = sample_rows();
    let dir = scratch("dup");
    let path = dir.join("cache.wal");
    let mut cache = ResultCache::open(&path, 0).expect("open");
    let (wire_text, row) = &rows[0];
    assert!(cache.insert(wire_text, row).expect("insert"));

    // The natural duplicate: the same configuration served at another
    // plan position (different index/id), re-inserted by a later sweep.
    let moved = cache
        .serve(
            &row.config_digest(),
            wire_text,
            7,
            "moved/position",
            row.seed,
        )
        .expect("serve rekeyed");
    assert!(cache.insert(wire_text, &moved).expect("insert duplicate"));
    assert_eq!(cache.len(), 1, "duplicate digest replaces, never grows");
    let entry = cache
        .lookup(&row.config_digest(), wire_text)
        .expect("lookup");
    assert_eq!(entry.row.index, 7, "the newer record wins");
    drop(cache);

    // Both appends are on disk; replay collapses them the same way.
    let reopened = ResultCache::open(&path, 0).expect("reopen");
    assert_eq!(reopened.len(), 1);
    assert_eq!(
        reopened
            .lookup(&row.config_digest(), wire_text)
            .expect("lookup")
            .row
            .index,
        7
    );
}

#[test]
fn digest_collision_requires_config_equality() {
    let rows = sample_rows();
    let dir = scratch("collide");
    let path = populated_cache(&dir, &rows[..1]);
    let cache = ResultCache::open(&path, 0).expect("open");
    let (wire_text, row) = &rows[0];
    let digest = row.config_digest();
    assert!(cache.lookup(&digest, wire_text).is_some());
    // Same digest, different full configuration: must MISS (the
    // archive-side config_json omits topology fields, so collisions are
    // possible; serving across one would return the wrong row).
    let other = wire_text.replace("\"os_cores\":1", "\"os_cores\":2");
    assert_ne!(&other, wire_text);
    assert!(cache.lookup(&digest, &other).is_none());
    assert!(cache.serve(&digest, &other, 0, "x", row.seed).is_none());
}

#[test]
fn eviction_is_oldest_first_and_compacts() {
    let rows = sample_rows();
    let dir = scratch("evict");
    let path = dir.join("cache.wal");
    let mut cache = ResultCache::open(&path, 2).expect("open");
    for (wire_text, row) in &rows {
        assert!(cache.insert(wire_text, row).expect("insert"));
    }
    assert_eq!(cache.enforce_capacity().expect("evict"), 1);
    assert_eq!(cache.len(), 2);
    assert!(
        cache
            .lookup(&rows[0].1.config_digest(), &rows[0].0)
            .is_none(),
        "the oldest entry is evicted first"
    );
    for (wire_text, row) in &rows[1..] {
        assert!(cache.lookup(&row.config_digest(), wire_text).is_some());
    }
    drop(cache);
    // The eviction is durable: the WAL was compacted, not just trimmed
    // in memory.
    let (entries, warnings) = read_entries(&path).expect("read");
    assert!(warnings.is_empty(), "{warnings:?}");
    assert_eq!(entries.len(), 2);

    // Opening with a tighter capacity evicts on open too.
    let tight = ResultCache::open(&path, 1).expect("open tight");
    assert_eq!(tight.len(), 1);
    assert!(tight
        .lookup(&rows[2].1.config_digest(), &rows[2].0)
        .is_some());
}

#[test]
fn foreign_envelope_files_are_refused() {
    let dir = scratch("foreign");
    let path = dir.join("cache.wal");
    // A runner journal header, not a serve cache header.
    std::fs::write(
        &path,
        envelope("{\"journal\":\"osoffload-runner\",\"version\":1,\"experiment\":\"x\",\"master_seed\":1,\"points\":1}"),
    )
    .expect("write journal header");
    assert!(
        ResultCache::open(&path, 0).is_err(),
        "a runner journal must not be silently treated as a cache"
    );
    assert!(read_entries(&path).is_err());
    // And the header constant is what the daemon writes.
    assert!(HEADER_BODY.contains("osoffload-serve-cache"));
}

#[test]
fn ttl_eviction_is_by_stamp_age_and_durable() {
    let rows = sample_rows();
    let dir = scratch("ttl");
    let path = dir.join("cache.wal");
    // Plant entries of known virtual ages via explicit stamps; the
    // cache clock itself never consults wall time.
    let mut cache = ResultCache::open(&path, 0).expect("open");
    for ((wire_text, row), stamp) in rows.iter().zip([0u64, 1_000, 1_990]) {
        assert!(cache
            .insert_stamped(wire_text, row, stamp)
            .expect("insert stamped"));
    }
    assert_eq!(cache.len(), 3);
    drop(cache);

    // Reopen with a TTL: the clock resumes from the largest stamp on
    // disk (1990), so ages are 1990, 990, and 0 — only the newest entry
    // survives a 100-second limit.
    let cache = ResultCache::open_limited(&path, 0, 100).expect("reopen with ttl");
    assert_eq!(cache.len(), 1, "stale entries must be evicted on open");
    assert!(cache
        .lookup(&rows[2].1.config_digest(), &rows[2].0)
        .is_some());
    drop(cache);

    // The eviction compacted the WAL: even a TTL-free reopen sees only
    // the survivor, and the file replays without warnings.
    let (entries, warnings) = read_entries(&path).expect("read");
    assert!(warnings.is_empty(), "{warnings:?}");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].stamp, 1_990);
    let unlimited = ResultCache::open(&path, 0).expect("reopen unlimited");
    assert_eq!(unlimited.len(), 1, "TTL eviction must be durable");
}

#[test]
fn stampless_legacy_records_load_as_maximally_old() {
    let rows = sample_rows();
    let dir = scratch("legacy");
    let path = dir.join("cache.wal");
    // A record written before stamps existed: no "stamp" key at all.
    let (wire_text, row) = &rows[0];
    let legacy_body = format!(
        "{{\"digest\":\"{}\",\"config\":{},\"stable\":{}}}",
        row.config_digest(),
        wire_text,
        row.stable_json()
    );
    std::fs::write(
        &path,
        format!("{}{}", envelope(HEADER_BODY), envelope(&legacy_body)),
    )
    .expect("write legacy cache");

    let mut cache = ResultCache::open(&path, 0).expect("open legacy");
    assert!(cache.warnings().is_empty(), "{:?}", cache.warnings());
    assert_eq!(cache.len(), 1);
    assert_eq!(
        cache.entries()[0].stamp,
        0,
        "stampless records are maximally old"
    );
    assert!(
        cache.lookup(&row.config_digest(), wire_text).is_some(),
        "legacy records stay servable"
    );

    // Advance the cache clock by inserting a newer entry, then apply a
    // TTL: the legacy record (age 500) expires, the fresh one survives.
    let (new_wire, new_row) = &rows[1];
    assert!(cache
        .insert_stamped(new_wire, new_row, 500)
        .expect("insert newer"));
    drop(cache);
    let aged = ResultCache::open_limited(&path, 0, 100).expect("reopen with ttl");
    assert_eq!(aged.len(), 1);
    assert!(
        aged.lookup(&new_row.config_digest(), new_wire).is_some(),
        "only the fresh entry survives the TTL"
    );
}

#[test]
fn failed_rows_are_never_cached() {
    let rows = sample_rows();
    let dir = scratch("failed");
    let path = dir.join("cache.wal");
    let mut cache = ResultCache::open(&path, 0).expect("open");
    let (wire_text, row) = &rows[0];
    let mut failed = row.clone();
    failed.outcome = osoffload_runner::Outcome::Failed {
        panic: "boom".to_string(),
        attempts: 1,
    };
    failed.restored = None;
    assert!(!cache.insert(wire_text, &failed).expect("insert refused"));
    assert!(cache.is_empty());
}
