//! The chaos campaign: concurrent clients submitting through the
//! deterministic fault-injecting proxy, with torn writes, stalls, and
//! mid-stream disconnects landing at seeded byte offsets.
//!
//! Whatever the proxy does to the byte streams, three invariants must
//! hold afterwards: the cache WAL replays without a single bad line
//! (every acknowledged point fully journaled or absent), a restarted
//! daemon — even over a torn WAL tail — serves a clean resubmission
//! 100% from cache, and that archive is byte-identical to a clean
//! direct canonical run of the same plan.

use osoffload_runner::journal::{scan_envelope_lines, ScanMode};
use osoffload_runner::{record_plan, report, run_plan, RunnerOptions};
use osoffload_serve::cache::read_entries;
use osoffload_serve::chaos::{plan_connection, ChaosConfig, ChaosProxy, Fault};
use osoffload_serve::client::{self, RetryPolicy};
use osoffload_serve::daemon::{Daemon, ServeOptions};
use osoffload_system::experiments::{single_config, Evaluator, Scale};
use osoffload_system::PolicyKind;
use osoffload_workload::Profile;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

/// The fixed campaign seed; a failure names the schedule to replay.
const CAMPAIGN_SEED: u64 = 0xC4A0_5C4A;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osoffload_chaos_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny() -> Scale {
    Scale {
        instructions: 40_000,
        warmup: 10_000,
        seed: 3,
        compute_profiles: 1,
    }
}

fn campaign_driver(ev: Evaluator<'_>) {
    let scale = tiny();
    ev(single_config(
        Profile::apache(),
        PolicyKind::Baseline,
        0,
        1,
        scale,
    ));
    ev(single_config(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        1_000,
        1,
        scale,
    ));
    ev(single_config(
        Profile::specjbb(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        1,
        scale,
    ));
}

fn request_line() -> String {
    let plan = record_plan("chaos", tiny().seed, campaign_driver);
    client::submit_request_line(&plan).expect("render request")
}

fn direct_archive(dir: &Path) -> Vec<u8> {
    let plan = record_plan("chaos", tiny().seed, campaign_driver);
    let opts = RunnerOptions {
        workers: 2,
        quiet: true,
        canonical: true,
        out_dir: dir.to_path_buf(),
        ..RunnerOptions::default()
    };
    let sweep = run_plan(&plan, &opts);
    let path = report::write_sweep(&sweep, dir).expect("write direct archive");
    std::fs::read(path).expect("read direct archive")
}

fn serve_opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        port: 0,
        cache: dir.join("cache.wal"),
        out_dir: dir.join("served"),
        workers: 2,
        submit_slots: 4,
        admit_queue: 8,
        quiet: true,
        ..ServeOptions::default()
    }
}

fn start_daemon(opts: ServeOptions) -> (u16, JoinHandle<Result<(), String>>) {
    let mut daemon = Daemon::bind(opts).expect("bind daemon");
    let port = daemon.local_addr().port();
    (port, std::thread::spawn(move || daemon.run()))
}

#[test]
fn fault_plans_are_deterministic_in_the_seed() {
    let cfg = ChaosConfig::default();
    for seed in [0u64, 1, CAMPAIGN_SEED, u64::MAX] {
        assert_eq!(plan_connection(seed, &cfg), plan_connection(seed, &cfg));
    }
    // A high fault rate plans a fault on (almost) every direction, and
    // the offsets respect the configured bound.
    let eager = ChaosConfig {
        fault_rate: 1.0,
        max_offset: 64,
        ..ChaosConfig::default()
    };
    let mut kinds = [0usize; 3];
    for seed in 0..64u64 {
        for fault in plan_connection(seed, &eager).into_iter().flatten() {
            let (at, kind) = match fault {
                Fault::Stall { at, .. } => (at, 0),
                Fault::TornWrite { at } => (at, 1),
                Fault::Disconnect { at } => (at, 2),
            };
            assert!(at < 64, "offset {at} escaped the bound");
            kinds[kind] += 1;
        }
    }
    assert!(
        kinds.iter().all(|&n| n > 0),
        "64 seeds must exercise every fault kind: {kinds:?}"
    );
}

#[test]
fn chaos_campaign_never_corrupts_the_wal_and_recovers_clean() {
    let dir = scratch("campaign");
    let direct = direct_archive(&dir.join("direct"));
    let (port, handle) = start_daemon(serve_opts(&dir));

    // A proxy mean enough that nearly every connection gets hurt.
    let fault_log = dir.join("faults.log");
    let proxy = ChaosProxy::start(
        0,
        ([127, 0, 0, 1], port).into(),
        CAMPAIGN_SEED,
        ChaosConfig {
            fault_rate: 0.9,
            stall_ms: 20,
            max_offset: 2_048,
        },
        Some(&fault_log),
    )
    .expect("start proxy");
    let proxy_port = proxy.port();

    // Four concurrent clients hammer the daemon through the proxy.
    // Success is NOT required here — the proxy may tear every attempt —
    // only that nothing the daemon acknowledged is ever lost or torn.
    let clients: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    retries: 4,
                    backoff_ms: 5,
                    seed: i,
                };
                client::submit_with_retry(proxy_port, &request_line(), policy, |_| {}).is_ok()
            })
        })
        .collect();
    let survived = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .filter(|&ok| ok)
        .count();
    assert!(
        proxy.injected() > 0,
        "a 90% fault rate over >=4 connections must inject something"
    );
    let log = proxy.fault_log();
    assert_eq!(proxy.injected() as usize, log.len(), "{log:?}");
    assert!(
        std::fs::read_to_string(&fault_log)
            .expect("fault log written")
            .lines()
            .count()
            >= log.len(),
        "every injected fault lands in the on-disk log"
    );
    proxy.stop();

    // One clean submission off the proxy completes whatever the chaos
    // runs left unfinished (idempotent through the digest cache).
    let settle = client::submit_with_retry(
        port,
        &request_line(),
        RetryPolicy {
            retries: 8,
            backoff_ms: 50,
            seed: 99,
        },
        |_| {},
    )
    .expect("clean submission settles the campaign");
    assert_eq!((settle.points, settle.failed), (3, 0));
    eprintln!(
        "chaos campaign: {} faults injected, {survived}/4 proxied clients succeeded",
        log.len()
    );

    // Invariant 1: the WAL replays without a single bad line — every
    // acknowledged point is fully journaled or absent, never torn.
    let ack = client::stop(port).expect("graceful stop");
    assert!(ack.contains("\"drained\":true"), "{ack}");
    handle.join().expect("daemon thread").expect("daemon exit");
    let wal_path = dir.join("cache.wal");
    let wal = std::fs::read_to_string(&wal_path).expect("read WAL");
    let (lines, issues) = scan_envelope_lines(&wal, ScanMode::Tolerant);
    assert!(issues.is_empty(), "torn or corrupt WAL lines: {issues:?}");
    // Concurrent overlapping submissions may append duplicate records
    // (collapsed last-wins on replay), but never fewer than the header
    // plus one record per distinct point — and never a partial line.
    assert!(lines.len() > 3, "only {} WAL lines", lines.len());
    let (entries, warnings) = read_entries(&wal_path).expect("read entries");
    assert!(warnings.is_empty(), "{warnings:?}");
    assert_eq!(entries.len(), 3);

    // Now the harshest restart: tear the WAL tail as a kill -9 would.
    let mut bytes = std::fs::read(&wal_path).expect("read WAL bytes");
    bytes.extend_from_slice(b"{\"fnv\":\"0123456789abcdef\",\"body\":{\"digest\":\"tor");
    std::fs::write(&wal_path, bytes).expect("tear WAL tail");

    // Invariant 2 + 3: the restarted daemon serves a clean resubmission
    // 100% from cache, and the archive is byte-identical to the direct
    // canonical run.
    let (port, handle) = start_daemon(serve_opts(&dir));
    let warm = client::submit(port, &request_line(), |_| {}).expect("warm submission");
    assert_eq!(
        (warm.points, warm.hits, warm.misses, warm.failed),
        (3, 3, 0, 0),
        "the post-chaos restart must serve everything from cache"
    );
    assert_eq!(
        std::fs::read(&warm.archive).expect("read archive"),
        direct,
        "post-chaos archive != direct canonical archive"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}
