//! End-to-end proofs for the serve daemon: a resubmitted sweep is
//! served entirely from cache with a byte-identical canonical archive,
//! a restarted daemon comes back warm (torn WAL tails tolerated), and
//! cached rows re-key to new plan positions.

use osoffload_runner::{record_plan, report, run_plan, RunnerOptions};
use osoffload_serve::client;
use osoffload_serve::daemon::{Daemon, ServeOptions};
use osoffload_system::experiments::{single_config, Evaluator, Scale};
use osoffload_system::PolicyKind;
use osoffload_workload::Profile;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osoffload_serve_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny() -> Scale {
    Scale {
        instructions: 40_000,
        warmup: 10_000,
        seed: 3,
        compute_profiles: 1,
    }
}

/// Three distinct configurations — enough to exercise plan order,
/// rekeying, and per-point cache traffic while staying fast.
fn full_driver(ev: Evaluator<'_>) {
    let scale = tiny();
    ev(single_config(
        Profile::apache(),
        PolicyKind::Baseline,
        0,
        1,
        scale,
    ));
    ev(single_config(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        1_000,
        1,
        scale,
    ));
    ev(single_config(
        Profile::specjbb(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        1,
        scale,
    ));
}

/// The same configurations as [`full_driver`] indices 2 and 0, in that
/// order — new plan positions and ids for known-cached work.
fn subset_driver(ev: Evaluator<'_>) {
    let scale = tiny();
    ev(single_config(
        Profile::specjbb(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        1,
        scale,
    ));
    ev(single_config(
        Profile::apache(),
        PolicyKind::Baseline,
        0,
        1,
        scale,
    ));
}

/// Runs `driver`'s plan directly on the runner in canonical mode and
/// returns the archive bytes — the reference every served archive must
/// match byte for byte.
fn direct_archive(name: &str, dir: &Path, driver: impl Fn(Evaluator<'_>)) -> Vec<u8> {
    let plan = record_plan(name, tiny().seed, |ev| driver(ev));
    let opts = RunnerOptions {
        workers: 2,
        quiet: true,
        canonical: true,
        out_dir: dir.to_path_buf(),
        ..RunnerOptions::default()
    };
    let sweep = run_plan(&plan, &opts);
    let path = report::write_sweep(&sweep, dir).expect("write direct archive");
    std::fs::read(path).expect("read direct archive")
}

fn start_daemon(opts: ServeOptions) -> (u16, JoinHandle<Result<(), String>>) {
    let mut daemon = Daemon::bind(opts).expect("bind daemon");
    let port = daemon.local_addr().port();
    (port, std::thread::spawn(move || daemon.run()))
}

fn serve_opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        port: 0,
        cache: dir.join("cache.wal"),
        out_dir: dir.join("served"),
        workers: 2,
        quiet: true,
        ..ServeOptions::default()
    }
}

fn submit(port: u16, name: &str, driver: impl Fn(Evaluator<'_>)) -> client::SubmitOutcome {
    let plan = record_plan(name, tiny().seed, |ev| driver(ev));
    let request = client::submit_request_line(&plan).expect("render request");
    client::submit(port, &request, |_| {}).expect("submit")
}

#[test]
fn resubmitted_sweep_is_all_hits_and_byte_identical() {
    let dir = scratch("warm");
    let direct = direct_archive("e2e-warm", &dir.join("direct"), full_driver);
    let (port, handle) = start_daemon(serve_opts(&dir));

    let cold = submit(port, "e2e-warm", full_driver);
    assert_eq!(
        (cold.points, cold.hits, cold.misses, cold.failed),
        (3, 0, 3, 0)
    );
    let served = std::fs::read(&cold.archive).expect("read served archive");
    assert_eq!(
        served, direct,
        "cold served archive != direct canonical archive"
    );

    let warm = submit(port, "e2e-warm", full_driver);
    assert_eq!(
        (warm.points, warm.hits, warm.misses, warm.failed),
        (3, 3, 0, 0),
        "resubmission must be served entirely from cache"
    );
    assert_eq!(
        std::fs::read(&warm.archive).expect("read rewarmed archive"),
        direct,
        "warm served archive != direct canonical archive"
    );

    let stats = client::stats(port).expect("stats");
    assert!(stats.contains("\"entries\":3"), "{stats}");
    assert!(stats.contains("\"hits\":3"), "{stats}");
    assert!(stats.contains("\"misses\":3"), "{stats}");
    assert!(stats.contains("\"submissions\":2"), "{stats}");
    assert!(client::ping(port)
        .expect("ping")
        .contains("osoffload-serve"));

    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");

    let metrics =
        std::fs::read_to_string(dir.join("served/serve-metrics.csv")).expect("metrics exported");
    assert!(metrics.contains("serve.cache.hits"), "{metrics}");
}

#[test]
fn restarted_daemon_is_warm_despite_torn_tail() {
    let dir = scratch("restart");
    let direct = direct_archive("e2e-restart", &dir.join("direct"), full_driver);

    let (port, handle) = start_daemon(serve_opts(&dir));
    let cold = submit(port, "e2e-restart", full_driver);
    assert_eq!(cold.misses, 3);
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");

    // The classic kill -9 artefact: a torn, unterminated append.
    let cache = dir.join("cache.wal");
    let mut bytes = std::fs::read(&cache).expect("read cache");
    bytes.extend_from_slice(b"{\"fnv\":\"0123456789abcdef\",\"body\":{\"digest\":\"tor");
    std::fs::write(&cache, bytes).expect("tear cache tail");

    let (port, handle) = start_daemon(serve_opts(&dir));
    let warm = submit(port, "e2e-restart", full_driver);
    assert_eq!(
        (warm.hits, warm.misses),
        (3, 0),
        "restart must replay the WAL and serve everything from cache"
    );
    assert_eq!(
        std::fs::read(&warm.archive).expect("read archive"),
        direct,
        "post-restart archive != direct canonical archive"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn cached_rows_rekey_to_new_plan_positions() {
    let dir = scratch("rekey");
    let direct_subset = direct_archive("e2e-rekey", &dir.join("direct"), subset_driver);

    let (port, handle) = start_daemon(serve_opts(&dir));
    // Warm the cache with the full plan, then submit a permuted subset:
    // the same configurations at different indices under different ids.
    let cold = submit(port, "e2e-full", full_driver);
    assert_eq!(cold.misses, 3);
    let subset = submit(port, "e2e-rekey", subset_driver);
    assert_eq!(
        (subset.points, subset.hits, subset.misses),
        (2, 2, 0),
        "every subset point was cached under another plan position"
    );
    assert_eq!(
        std::fs::read(&subset.archive).expect("read archive"),
        direct_subset,
        "rekeyed archive != direct canonical archive of the subset plan"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn fault_injected_sweep_still_archives_byte_identically() {
    let dir = scratch("faults");
    let direct = direct_archive("e2e-faults", &dir.join("direct"), full_driver);

    let opts = ServeOptions {
        retries: 5,
        fault_seed: Some(9),
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);
    let outcome = submit(port, "e2e-faults", full_driver);
    assert_eq!(outcome.failed, 0, "retries must absorb the injected faults");
    assert_eq!(
        std::fs::read(&outcome.archive).expect("read archive"),
        direct,
        "fault-injected archive != clean direct canonical archive"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn hostile_requests_get_errors_not_panics() {
    let dir = scratch("hostile");
    let (port, handle) = start_daemon(serve_opts(&dir));

    for request in [
        "this is not json\n",
        "{\"op\":\"frobnicate\"}\n",
        "{\"op\":\"submit\"}\n",
        "{\"op\":\"submit\",\"experiment\":\"../etc\",\"master_seed\":1,\"points\":[]}\n",
        // Config that would trip a builder assertion if range checks
        // did not run first.
        "{\"op\":\"submit\",\"experiment\":\"x\",\"master_seed\":1,\"points\":[{\"id\":\"p\",\
         \"config\":{\"profile\":\"apache\",\"phases\":[],\"policy\":{\"kind\":\"baseline\"},\
         \"mechanism\":\"thread-migration\",\"migration_one_way\":0,\
         \"os_core_slowdown_milli\":0,\"os_core_contexts\":1,\"os_cores\":1,\
         \"dispatch\":\"least-loaded\",\"os_cold_penalty\":0,\"resource_adaptation\":null,\
         \"user_cores\":1,\"instructions\":1000,\"warmup\":100,\"seed\":1,\"tuner\":null,\
         \"half_l2_cores\":null}}]}\n",
    ] {
        let err = client::submit(port, request, |_| {}).expect_err("must be refused");
        assert!(err.contains("refused") || err.contains("closed"), "{err}");
    }

    // The daemon survives all of it.
    assert!(client::ping(port).expect("ping").contains("\"ok\":true"));
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}
