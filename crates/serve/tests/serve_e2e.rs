//! End-to-end proofs for the serve daemon: a resubmitted sweep is
//! served entirely from cache with a byte-identical canonical archive,
//! a restarted daemon comes back warm (torn WAL tails tolerated),
//! cached rows re-key to new plan positions, overload is shed with a
//! structured retryable refusal, shutdown drains gracefully, and
//! hostile framing (oversized lines, garbage, vanishing clients,
//! slow-loris) gets errors or silence — never a panic or a hang.

use osoffload_runner::{record_plan, report, run_plan, RunnerOptions};
use osoffload_serve::client::{self, RetryPolicy, SubmitError};
use osoffload_serve::daemon::{Daemon, ServeOptions};
use osoffload_system::experiments::{single_config, Evaluator, Scale};
use osoffload_system::PolicyKind;
use osoffload_workload::Profile;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osoffload_serve_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tiny() -> Scale {
    Scale {
        instructions: 40_000,
        warmup: 10_000,
        seed: 3,
        compute_profiles: 1,
    }
}

/// Three distinct configurations — enough to exercise plan order,
/// rekeying, and per-point cache traffic while staying fast.
fn full_driver(ev: Evaluator<'_>) {
    let scale = tiny();
    ev(single_config(
        Profile::apache(),
        PolicyKind::Baseline,
        0,
        1,
        scale,
    ));
    ev(single_config(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        1_000,
        1,
        scale,
    ));
    ev(single_config(
        Profile::specjbb(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        1,
        scale,
    ));
}

/// The same configurations as [`full_driver`] indices 2 and 0, in that
/// order — new plan positions and ids for known-cached work.
fn subset_driver(ev: Evaluator<'_>) {
    let scale = tiny();
    ev(single_config(
        Profile::specjbb(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        100,
        1,
        scale,
    ));
    ev(single_config(
        Profile::apache(),
        PolicyKind::Baseline,
        0,
        1,
        scale,
    ));
}

/// Runs `driver`'s plan directly on the runner in canonical mode and
/// returns the archive bytes — the reference every served archive must
/// match byte for byte.
fn direct_archive(name: &str, dir: &Path, driver: impl Fn(Evaluator<'_>)) -> Vec<u8> {
    let plan = record_plan(name, tiny().seed, |ev| driver(ev));
    let opts = RunnerOptions {
        workers: 2,
        quiet: true,
        canonical: true,
        out_dir: dir.to_path_buf(),
        ..RunnerOptions::default()
    };
    let sweep = run_plan(&plan, &opts);
    let path = report::write_sweep(&sweep, dir).expect("write direct archive");
    std::fs::read(path).expect("read direct archive")
}

fn start_daemon(opts: ServeOptions) -> (u16, JoinHandle<Result<(), String>>) {
    let mut daemon = Daemon::bind(opts).expect("bind daemon");
    let port = daemon.local_addr().port();
    (port, std::thread::spawn(move || daemon.run()))
}

fn serve_opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        port: 0,
        cache: dir.join("cache.wal"),
        out_dir: dir.join("served"),
        workers: 2,
        quiet: true,
        ..ServeOptions::default()
    }
}

fn submit(port: u16, name: &str, driver: impl Fn(Evaluator<'_>)) -> client::SubmitOutcome {
    client::submit(port, &request_line(name, driver), |_| {}).expect("submit")
}

fn request_line(name: &str, driver: impl Fn(Evaluator<'_>)) -> String {
    let plan = record_plan(name, tiny().seed, |ev| driver(ev));
    client::submit_request_line(&plan).expect("render request")
}

/// One point big enough (~1.5 s) to hold a submit slot while the test
/// provokes the admission gate from other connections.
fn slow_driver(ev: Evaluator<'_>) {
    ev(single_config(
        Profile::apache(),
        PolicyKind::HardwarePredictor { threshold: 500 },
        1_000,
        1,
        Scale {
            instructions: 15_000_000,
            warmup: 1_000_000,
            seed: 3,
            compute_profiles: 1,
        },
    ));
}

/// Polls `stats` until `pred` holds (the admission gate's state is only
/// observable through it), failing the test after a generous timeout.
fn wait_stats(port: u16, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(stats) = client::stats(port) {
            if pred(&stats) {
                return stats;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for stats to show {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn resubmitted_sweep_is_all_hits_and_byte_identical() {
    let dir = scratch("warm");
    let direct = direct_archive("e2e-warm", &dir.join("direct"), full_driver);
    let (port, handle) = start_daemon(serve_opts(&dir));

    let cold = submit(port, "e2e-warm", full_driver);
    assert_eq!(
        (cold.points, cold.hits, cold.misses, cold.failed),
        (3, 0, 3, 0)
    );
    let served = std::fs::read(&cold.archive).expect("read served archive");
    assert_eq!(
        served, direct,
        "cold served archive != direct canonical archive"
    );

    let warm = submit(port, "e2e-warm", full_driver);
    assert_eq!(
        (warm.points, warm.hits, warm.misses, warm.failed),
        (3, 3, 0, 0),
        "resubmission must be served entirely from cache"
    );
    assert_eq!(
        std::fs::read(&warm.archive).expect("read rewarmed archive"),
        direct,
        "warm served archive != direct canonical archive"
    );

    let stats = client::stats(port).expect("stats");
    assert!(stats.contains("\"entries\":3"), "{stats}");
    assert!(stats.contains("\"hits\":3"), "{stats}");
    assert!(stats.contains("\"misses\":3"), "{stats}");
    assert!(stats.contains("\"submissions\":2"), "{stats}");
    assert!(client::ping(port)
        .expect("ping")
        .contains("osoffload-serve"));

    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");

    let metrics =
        std::fs::read_to_string(dir.join("served/serve-metrics.csv")).expect("metrics exported");
    assert!(metrics.contains("serve.cache.hits"), "{metrics}");
}

#[test]
fn restarted_daemon_is_warm_despite_torn_tail() {
    let dir = scratch("restart");
    let direct = direct_archive("e2e-restart", &dir.join("direct"), full_driver);

    let (port, handle) = start_daemon(serve_opts(&dir));
    let cold = submit(port, "e2e-restart", full_driver);
    assert_eq!(cold.misses, 3);
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");

    // The classic kill -9 artefact: a torn, unterminated append.
    let cache = dir.join("cache.wal");
    let mut bytes = std::fs::read(&cache).expect("read cache");
    bytes.extend_from_slice(b"{\"fnv\":\"0123456789abcdef\",\"body\":{\"digest\":\"tor");
    std::fs::write(&cache, bytes).expect("tear cache tail");

    let (port, handle) = start_daemon(serve_opts(&dir));
    let warm = submit(port, "e2e-restart", full_driver);
    assert_eq!(
        (warm.hits, warm.misses),
        (3, 0),
        "restart must replay the WAL and serve everything from cache"
    );
    assert_eq!(
        std::fs::read(&warm.archive).expect("read archive"),
        direct,
        "post-restart archive != direct canonical archive"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn cached_rows_rekey_to_new_plan_positions() {
    let dir = scratch("rekey");
    let direct_subset = direct_archive("e2e-rekey", &dir.join("direct"), subset_driver);

    let (port, handle) = start_daemon(serve_opts(&dir));
    // Warm the cache with the full plan, then submit a permuted subset:
    // the same configurations at different indices under different ids.
    let cold = submit(port, "e2e-full", full_driver);
    assert_eq!(cold.misses, 3);
    let subset = submit(port, "e2e-rekey", subset_driver);
    assert_eq!(
        (subset.points, subset.hits, subset.misses),
        (2, 2, 0),
        "every subset point was cached under another plan position"
    );
    assert_eq!(
        std::fs::read(&subset.archive).expect("read archive"),
        direct_subset,
        "rekeyed archive != direct canonical archive of the subset plan"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn fault_injected_sweep_still_archives_byte_identically() {
    let dir = scratch("faults");
    let direct = direct_archive("e2e-faults", &dir.join("direct"), full_driver);

    let opts = ServeOptions {
        retries: 5,
        fault_seed: Some(9),
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);
    let outcome = submit(port, "e2e-faults", full_driver);
    assert_eq!(outcome.failed, 0, "retries must absorb the injected faults");
    assert_eq!(
        std::fs::read(&outcome.archive).expect("read archive"),
        direct,
        "fault-injected archive != clean direct canonical archive"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn overload_is_shed_with_retry_hint_then_absorbed_by_backoff() {
    let dir = scratch("overload");
    let opts = ServeOptions {
        submit_slots: 1,
        admit_queue: 0,
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);

    // Fill the only slot with a slow sweep, then provoke the gate.
    let slow = request_line("e2e-slow", slow_driver);
    let runner = std::thread::spawn(move || client::submit(port, &slow, |_| {}));
    wait_stats(port, "running=1", |s| s.contains("\"running\":1"));

    let fast = request_line("e2e-fast", full_driver);
    let refusal = client::submit_once(port, &fast, |_| {}).expect_err("must be shed");
    match &refusal {
        SubmitError::Refused {
            error,
            retry_after_ms,
        } => {
            assert_eq!(error, "overloaded");
            assert!(
                retry_after_ms.is_some(),
                "overloaded refusals carry a backoff hint"
            );
        }
        other => panic!("expected an overloaded refusal, got {other:?}"),
    }
    assert!(refusal.is_retryable(), "overload must be marked retryable");

    // The resilient client path rides the backoff until the slot frees.
    let policy = RetryPolicy {
        retries: 60,
        backoff_ms: 20,
        seed: 7,
    };
    let absorbed =
        client::submit_with_retry(port, &fast, policy, |_| {}).expect("backoff absorbs overload");
    assert_eq!((absorbed.points, absorbed.failed), (3, 0));
    let slow_outcome = runner.join().expect("slow thread").expect("slow submit");
    assert_eq!(slow_outcome.failed, 0);

    // Shedding is observable: in the stats line and the metric export.
    let stats = client::stats(port).expect("stats");
    assert!(
        !stats.contains("\"shed\":0,"),
        "at least one shed must be counted: {stats}"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
    let metrics =
        std::fs::read_to_string(dir.join("served/serve-metrics.csv")).expect("metrics exported");
    assert!(metrics.contains("serve.queue.shed"), "{metrics}");
    assert!(metrics.contains("serve.queue.depth"), "{metrics}");
}

#[test]
fn shutdown_drains_running_and_refuses_queued() {
    let dir = scratch("drain");
    let opts = ServeOptions {
        submit_slots: 1,
        admit_queue: 2,
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);

    let slow = request_line("e2e-drain-slow", slow_driver);
    let running = std::thread::spawn(move || client::submit(port, &slow, |_| {}));
    wait_stats(port, "running=1", |s| s.contains("\"running\":1"));
    let queued_req = request_line("e2e-drain-queued", full_driver);
    let queued = std::thread::spawn(move || client::submit(port, &queued_req, |_| {}));
    wait_stats(port, "queued=1", |s| s.contains("\"queued\":1"));

    // Drain: the running sweep finishes, the queued one is refused, and
    // the acknowledgement only arrives once both are settled.
    let ack = client::stop(port).expect("graceful stop");
    assert!(ack.contains("\"drained\":true"), "{ack}");
    let finished = running.join().expect("running thread").expect("running");
    assert_eq!(
        (finished.points, finished.failed),
        (1, 0),
        "the in-flight sweep must finish, not be aborted"
    );
    let refused = queued.join().expect("queued thread").expect_err("refused");
    assert!(refused.contains("draining"), "{refused}");
    handle.join().expect("daemon thread").expect("daemon exit");

    // The drained daemon journaled its sweep: a restart serves it warm.
    let (port, handle) = start_daemon(ServeOptions {
        submit_slots: 1,
        admit_queue: 2,
        ..serve_opts(&dir)
    });
    let warm = submit(port, "e2e-drain-slow", slow_driver);
    assert_eq!((warm.hits, warm.misses), (1, 0));
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn queued_submissions_respect_the_request_deadline() {
    let dir = scratch("deadline");
    let opts = ServeOptions {
        submit_slots: 1,
        admit_queue: 2,
        request_deadline_ms: 300,
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);

    let slow = request_line("e2e-deadline-slow", slow_driver);
    let running = std::thread::spawn(move || client::submit(port, &slow, |_| {}));
    wait_stats(port, "running=1", |s| s.contains("\"running\":1"));

    // This submission queues behind the slow one and must be bounced
    // once its 300 ms budget is gone — not parked indefinitely.
    let bounced = client::submit_once(
        port,
        &request_line("e2e-deadline-fast", full_driver),
        |_| {},
    )
    .expect_err("deadline must fire");
    match &bounced {
        SubmitError::Refused { error, .. } => assert_eq!(error, "deadline"),
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    assert!(
        !bounced.is_retryable(),
        "a blown deadline is the caller's problem, not a retry hint"
    );

    // The slow sweep itself ran under the same deadline, so its point
    // was cut off by the runner's watchdog rather than running forever.
    let slow_outcome = running.join().expect("slow thread").expect("slow submit");
    assert_eq!(
        slow_outcome.failed, 1,
        "the watchdog must bound execution to the remaining budget"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

/// Writes raw bytes as one request and returns the response line (empty
/// when the daemon hangs up without answering).
fn raw_request(port: u16, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream.write_all(bytes).expect("send");
    let mut line = String::new();
    let _ = BufReader::new(&stream).read_line(&mut line);
    line
}

#[test]
fn oversized_and_garbage_frames_are_bounced_within_limits() {
    let dir = scratch("framing");
    let opts = ServeOptions {
        max_line_bytes: 1024,
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);

    // An 8 KiB line against a 1 KiB bound: refused by length, buffered
    // bounded — never accumulated until memory or patience runs out.
    let mut oversized = vec![b'a'; 8 * 1024];
    oversized.push(b'\n');
    let answer = raw_request(port, &oversized);
    assert!(answer.contains("exceeds 1024 bytes"), "{answer}");

    // Bytes that are not UTF-8 at all.
    let answer = raw_request(port, b"{\"op\":\"\xff\xfe\"}\n");
    assert!(answer.contains("not UTF-8"), "{answer}");

    // Valid UTF-8, but NUL-riddled garbage mid-frame.
    let answer = raw_request(port, b"{\"op\":\"sub\x00mit\"}\n");
    assert!(answer.contains("\"ok\":false"), "{answer}");

    // The daemon survives all of it.
    assert!(client::ping(port).expect("ping").contains("\"ok\":true"));
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn client_vanishing_after_accepted_still_journals_every_point() {
    let dir = scratch("vanish");
    let direct = direct_archive("e2e-vanish", &dir.join("direct"), full_driver);
    let (port, handle) = start_daemon(serve_opts(&dir));

    // Submit, read only the `accepted` event, then vanish mid-stream.
    {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        (&stream)
            .write_all(request_line("e2e-vanish", full_driver).as_bytes())
            .expect("send");
        let mut accepted = String::new();
        BufReader::new(&stream)
            .read_line(&mut accepted)
            .expect("read accepted");
        assert!(accepted.contains("\"event\":\"accepted\""), "{accepted}");
        drop(stream);
    }

    // The sweep must run to completion and journal everything anyway.
    wait_stats(port, "the orphaned sweep to finish", |s| {
        s.contains("\"submissions\":1") && s.contains("\"misses\":3")
    });
    let warm = submit(port, "e2e-vanish", full_driver);
    assert_eq!(
        (warm.points, warm.hits, warm.misses, warm.failed),
        (3, 3, 0, 0),
        "every point the vanished client submitted must have been cached"
    );
    assert_eq!(
        std::fs::read(&warm.archive).expect("read archive"),
        direct,
        "archive after an abandoned submission != direct canonical archive"
    );
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn slow_loris_is_timed_out_without_wedging_the_daemon() {
    let dir = scratch("loris");
    let opts = ServeOptions {
        read_timeout_ms: 200,
        ..serve_opts(&dir)
    };
    let (port, handle) = start_daemon(opts);

    // Half a request, then silence: the read timeout must reclaim the
    // connection instead of letting it pin a worker forever.
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream.write_all(b"{\"op\":\"pi").expect("send half");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a timed-out half-frame gets silence, not an answer");

    assert!(client::ping(port).expect("ping").contains("\"ok\":true"));
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}

#[test]
fn hostile_requests_get_errors_not_panics() {
    let dir = scratch("hostile");
    let (port, handle) = start_daemon(serve_opts(&dir));

    for request in [
        "this is not json\n",
        "{\"op\":\"frobnicate\"}\n",
        "{\"op\":\"submit\"}\n",
        "{\"op\":\"submit\",\"experiment\":\"../etc\",\"master_seed\":1,\"points\":[]}\n",
        // Config that would trip a builder assertion if range checks
        // did not run first.
        "{\"op\":\"submit\",\"experiment\":\"x\",\"master_seed\":1,\"points\":[{\"id\":\"p\",\
         \"config\":{\"profile\":\"apache\",\"phases\":[],\"policy\":{\"kind\":\"baseline\"},\
         \"mechanism\":\"thread-migration\",\"migration_one_way\":0,\
         \"os_core_slowdown_milli\":0,\"os_core_contexts\":1,\"os_cores\":1,\
         \"dispatch\":\"least-loaded\",\"os_cold_penalty\":0,\"resource_adaptation\":null,\
         \"user_cores\":1,\"instructions\":1000,\"warmup\":100,\"seed\":1,\"tuner\":null,\
         \"half_l2_cores\":null}}]}\n",
    ] {
        let err = client::submit(port, request, |_| {}).expect_err("must be refused");
        assert!(err.contains("refused") || err.contains("closed"), "{err}");
    }

    // The daemon survives all of it.
    assert!(client::ping(port).expect("ping").contains("\"ok\":true"));
    client::stop(port).expect("stop");
    handle.join().expect("daemon thread").expect("daemon exit");
}
