//! Cached experiment service: a localhost daemon that schedules
//! submitted sweeps on the parallel runner behind a persistent,
//! digest-keyed result cache.
//!
//! `osoffload serve start` boots the [`daemon`]; clients (the
//! `osoffload serve submit` subcommand, or anything speaking
//! newline-delimited JSON over TCP) submit experiment plans as wire
//! configurations ([`wire`]), watch per-point progress events stream
//! back, and receive a canonical archive path when the sweep completes.
//!
//! The cache ([`cache`]) memoizes completed rows keyed by the same
//! configuration digest the archives and `osoffload inspect find
//! --digest` use. Its on-disk format is the runner's checksummed
//! journal-envelope WAL, appended fsynced as points finish — so a
//! `kill -9` mid-campaign loses nothing acknowledged, a restarted
//! daemon comes back warm, and a resubmitted sweep is served entirely
//! from cache with a byte-identical canonical archive. The proof
//! obligations live in `tests/serve_e2e.rs` and
//! `tests/cache_durability.rs`; protocol and format documentation in
//! `SERVING.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod daemon;
pub mod wire;

pub use cache::{CacheEntry, ResultCache};
pub use chaos::{ChaosConfig, ChaosProxy, Fault};
pub use client::{
    submit, submit_once, submit_request_line, submit_with_retry, RetryPolicy, SubmitError,
    SubmitOutcome,
};
pub use daemon::{Daemon, ServeOptions, DEFAULT_PORT};
