//! The serve daemon: a localhost TCP accept loop scheduling submitted
//! sweeps on the runner behind the result cache, concurrently and with
//! explicit admission control.
//!
//! The protocol is newline-delimited JSON over one connection per
//! request. A client connects, writes a single request line, and reads
//! response lines until the connection closes:
//!
//! - `{"op":"ping"}` → one `{"ok":true,...}` line.
//! - `{"op":"stats"}` → one line of cache/counter totals.
//! - `{"op":"shutdown"}` → graceful drain: in-flight submissions finish
//!   and fsync, queued ones get a `draining` refusal, then the
//!   acknowledgement line is written and the listener closes.
//! - `{"op":"submit","experiment":..,"master_seed":..,"points":[..]}` →
//!   an `accepted` event, one `point` event per point as it completes
//!   (cached points first, announced before any computation starts),
//!   and a final `done` event carrying hit/miss totals and the archive
//!   path.
//!
//! # Concurrency and admission control
//!
//! Accepted connections are handed to a bounded worker pool over a
//! bounded connection queue; when even that queue is full the daemon
//! answers `{"ok":false,"error":"overloaded","retry_after_ms":N}` and
//! closes, never blocking the accept loop. Submissions then pass an
//! admission gate: at most `submit_slots` sweeps run concurrently, at
//! most `admit_queue` wait behind them, and everything beyond that is
//! shed with the same structured `overloaded` line. Shedding is safe
//! because resubmission is idempotent — the digest cache serves
//! whatever already completed. WAL appends stay single-writer (the
//! cache sits behind one mutex), so concurrent submissions of
//! overlapping configurations dedupe through the digest index without
//! torn records.
//!
//! Requests are bounded in every dimension: a configurable max line
//! length (slow-loris / oversized-frame protection), configurable
//! read/write socket timeouts, and an optional per-request deadline
//! (`request_deadline_ms`) that bounds both the time queued at the
//! admission gate and — via the runner's per-point watchdog — the
//! execution itself.
//!
//! Every submitted configuration is rebuilt through
//! [`wire::config_from_json`] — and therefore through
//! `SystemConfig::try_build` — before it can reach the executor, so a
//! malformed or hostile request gets an error line, never a panic.
//! Completed points are appended to the cache WAL as they finish
//! (fsynced, inside the executor's completion callback), which is what
//! makes a `kill -9` mid-campaign recoverable: the restarted daemon
//! replays the WAL and serves every acknowledged point from cache.
//! (SIGTERM cannot be trapped without `unsafe` or a signal dependency;
//! use the `shutdown` op for a graceful drain, and rely on the WAL for
//! anything harsher.)
//!
//! Sweeps always run in canonical mode, and the daemon additionally
//! normalises the run-shape fields (`attempts`, `attempt_ms`,
//! `injected_faults`) of every row before archiving. A sweep served
//! from cache, recomputed after a crash, or retried under fault
//! injection therefore produces a byte-identical archive to a clean
//! direct `--canonical` run of the same plan.

use crate::cache::ResultCache;
use crate::wire;
use osoffload_obs::{atomic_write, json_escape, MetricId, MetricsRegistry};
use osoffload_runner::jsonv::{self, Value};
use osoffload_runner::report::write_sweep;
use osoffload_runner::{run_plan_hooked, ExecHooks, ExperimentPlan, Outcome, RunnerOptions};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default TCP port of the serve daemon.
pub const DEFAULT_PORT: u16 = 7411;

/// Default read/write socket timeout in milliseconds.
pub const DEFAULT_SOCKET_TIMEOUT_MS: u64 = 60_000;

/// Default maximum request line length in bytes (1 MiB).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Port to listen on (localhost only); `0` picks an ephemeral port.
    pub port: u16,
    /// Path of the cache WAL file.
    pub cache: PathBuf,
    /// Directory archives and metrics are written into.
    pub out_dir: PathBuf,
    /// Maximum cached entries (`0` = unbounded); oldest evicted first.
    pub cache_capacity: usize,
    /// Cache entry TTL in virtual seconds (`0` = no age limit); entries
    /// older than this are evicted at open/compaction time.
    pub cache_ttl_secs: u64,
    /// Worker threads per sweep (`0` = one per hardware thread).
    pub workers: usize,
    /// Lane-pack width (`0` = auto; only used for sweeps with no cached
    /// points, since lane packs would straddle served rows).
    pub lanes: usize,
    /// Retries per failing point.
    pub retries: u32,
    /// Fault-injection seed (chaos testing; see `ROBUSTNESS.md`).
    pub fault_seed: Option<u64>,
    /// Concurrent submissions executed at once (minimum 1).
    pub submit_slots: usize,
    /// Submissions allowed to wait behind the running ones; anything
    /// beyond is shed with an `overloaded` response.
    pub admit_queue: usize,
    /// Connection-handling threads (`0` = sized from
    /// `submit_slots + admit_queue` with headroom for quick ops).
    pub conn_workers: usize,
    /// Socket read timeout in milliseconds (must be positive).
    pub read_timeout_ms: u64,
    /// Socket write timeout in milliseconds (must be positive).
    pub write_timeout_ms: u64,
    /// Per-request deadline in milliseconds (`0` = none): bounds the
    /// admission-queue wait, and the remaining budget bounds each point
    /// through the runner's watchdog.
    pub request_deadline_ms: u64,
    /// Maximum request line length in bytes.
    pub max_line_bytes: usize,
    /// Suppresses stderr chatter.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: DEFAULT_PORT,
            cache: PathBuf::from("results/serve/cache.wal"),
            out_dir: PathBuf::from("results/serve"),
            cache_capacity: 0,
            cache_ttl_secs: 0,
            workers: 0,
            lanes: 0,
            retries: 0,
            fault_seed: None,
            submit_slots: 2,
            admit_queue: 4,
            conn_workers: 0,
            read_timeout_ms: DEFAULT_SOCKET_TIMEOUT_MS,
            write_timeout_ms: DEFAULT_SOCKET_TIMEOUT_MS,
            request_deadline_ms: 0,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            quiet: false,
        }
    }
}

impl ServeOptions {
    fn slots(&self) -> usize {
        self.submit_slots.max(1)
    }

    /// The connection pool is always large enough that every runnable
    /// and queued submission can hold a connection while at least one
    /// thread stays free for quick ops (`ping`/`stats`/`shutdown`) — a
    /// drain request must never be starved by the very load it is meant
    /// to resolve.
    fn pool(&self) -> usize {
        let floor = self.slots() + self.admit_queue + 1;
        if self.conn_workers == 0 {
            floor + 1
        } else {
            self.conn_workers.max(floor)
        }
    }
}

/// Totals across the daemon's lifetime, exported as epoch-sampled
/// metrics after every submission or shed.
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    hits: u64,
    misses: u64,
    evictions: u64,
    submissions: u64,
    shed: u64,
    drain_refused: u64,
    deadline_refused: u64,
}

struct Metrics {
    registry: MetricsRegistry,
    hits: MetricId,
    misses: MetricId,
    evictions: MetricId,
    entries: MetricId,
    submissions: MetricId,
    depth: MetricId,
    shed: MetricId,
    drain_refused: MetricId,
}

impl Metrics {
    fn new() -> Metrics {
        let mut registry = MetricsRegistry::new();
        let hits = registry.register_counter("serve.cache.hits");
        let misses = registry.register_counter("serve.cache.misses");
        let evictions = registry.register_counter("serve.cache.evictions");
        let entries = registry.register_gauge("serve.cache.entries");
        let submissions = registry.register_counter("serve.submissions");
        let depth = registry.register_gauge("serve.queue.depth");
        let shed = registry.register_counter("serve.queue.shed");
        let drain_refused = registry.register_counter("serve.drain.refused");
        Metrics {
            registry,
            hits,
            misses,
            evictions,
            entries,
            submissions,
            depth,
            shed,
            drain_refused,
        }
    }
}

/// The admission gate: how many sweeps are running, how many are
/// parked waiting for a slot, and whether a drain is in progress.
#[derive(Debug, Default)]
struct Gate {
    running: usize,
    queued: usize,
    draining: bool,
}

/// State shared between the accept loop and the connection workers.
struct Shared {
    addr: SocketAddr,
    opts: ServeOptions,
    cache: Mutex<ResultCache>,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
    totals: Mutex<Totals>,
    metrics: Mutex<Metrics>,
    samples: AtomicU64,
    stop: AtomicBool,
}

/// A bound serve daemon, ready to [`run`](Daemon::run).
pub struct Daemon {
    listener: TcpListener,
    shared: Shared,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.shared.addr)
            .field("cache_entries", &self.cache_len())
            .finish()
    }
}

fn err_line(why: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}\n", json_escape(why))
}

fn valid_experiment_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// One lowered, validated submission point.
struct SubmitPoint {
    id: String,
    wire: String,
    digest: String,
    config: osoffload_system::SystemConfig,
}

/// A bounded handoff queue between the accept loop and the worker pool.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Hands a connection to the pool, or returns it when the queue is
    /// full (the caller sheds it) or already closed.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        if state.1 || state.0.len() >= self.capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once the queue is closed
    /// and empty (worker shutdown).
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).expect("conn queue wait");
        }
    }

    /// Closes the queue, waking every worker, and returns the
    /// connections nobody will serve so the caller can refuse them.
    fn close(&self) -> Vec<TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        state.1 = true;
        self.cv.notify_all();
        state.0.drain(..).collect()
    }
}

/// The admission verdict for one submission.
enum Admit {
    Go,
    Refuse { line: String, kind: RefuseKind },
}

#[derive(Clone, Copy)]
enum RefuseKind {
    Overloaded,
    Draining,
    Deadline,
}

impl Daemon {
    /// Opens the cache and binds the listener on `127.0.0.1`.
    pub fn bind(opts: ServeOptions) -> Result<Daemon, String> {
        if opts.read_timeout_ms == 0 || opts.write_timeout_ms == 0 {
            return Err("socket timeouts must be positive".into());
        }
        if opts.max_line_bytes == 0 {
            return Err("max_line_bytes must be positive".into());
        }
        let cache =
            ResultCache::open_limited(&opts.cache, opts.cache_capacity, opts.cache_ttl_secs)?;
        for warning in cache.warnings() {
            eprintln!("serve: {warning}");
        }
        let listener = TcpListener::bind(("127.0.0.1", opts.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        Ok(Daemon {
            listener,
            shared: Shared {
                addr,
                opts,
                cache: Mutex::new(cache),
                gate: Mutex::new(Gate::default()),
                gate_cv: Condvar::new(),
                totals: Mutex::new(Totals::default()),
                metrics: Mutex::new(Metrics::new()),
                samples: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            },
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.shared.addr
    }

    /// Cached entry count.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().expect("cache lock").len()
    }

    /// Serves connections until a `shutdown` request drains the daemon.
    pub fn run(&mut self) -> Result<(), String> {
        let shared = &self.shared;
        let pool = shared.opts.pool();
        let queue = ConnQueue::new(pool * 2);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| {
                    while let Some(stream) = queue.pop() {
                        handle_connection(shared, stream);
                    }
                });
            }
            let result = loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) => break Err(format!("accept failed: {e}")),
                };
                if shared.stop.load(Ordering::SeqCst) {
                    // Drain complete: this is the shutdown wake-up (or a
                    // straggler, told cleanly to go away).
                    refuse_late(stream, "draining");
                    break Ok(());
                }
                if let Err(stream) = queue.push(stream) {
                    // Even the handoff queue is full: shed at the door
                    // rather than letting the accept loop block or the
                    // backlog grow without bound.
                    shed_connection(shared, stream);
                }
            };
            for stream in queue.close() {
                refuse_late(stream, "draining");
            }
            result
        })
    }
}

/// Writes one refusal line to a connection nobody will serve, bounded
/// by a short write timeout so teardown cannot wedge on a dead peer.
fn refuse_late(stream: TcpStream, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = (&stream).write_all(err_line(why).as_bytes());
}

fn overloaded_line(depth: usize) -> String {
    // A deterministic hint that grows with queue pressure; clients cap
    // and jitter it themselves (see `client::submit_with_retry`).
    format!(
        "{{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":{}}}\n",
        250 * (depth as u64 + 1)
    )
}

fn shed_connection(shared: &Shared, stream: TcpStream) {
    let depth = {
        let gate = shared.gate.lock().expect("gate lock");
        gate.running + gate.queued
    };
    {
        let mut totals = shared.totals.lock().expect("totals lock");
        totals.shed += 1;
    }
    export_metrics(shared);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = (&stream).write_all(overloaded_line(depth).as_bytes());
}

/// How reading the request line failed.
enum ReadLineError {
    /// The line exceeded the configured maximum length.
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
    /// The peer vanished or the socket timed out; nothing to answer.
    Gone,
}

/// Reads one `\n`-terminated request line with a hard length bound, so
/// a slow-loris or oversized frame can never buffer unboundedly.
fn read_request_line(stream: &TcpStream, max: usize) -> Result<String, ReadLineError> {
    let mut reader = std::io::BufReader::with_capacity(8 * 1024, stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (found, used) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(_) => return Err(ReadLineError::Gone),
            };
            if chunk.is_empty() {
                return Err(ReadLineError::Gone);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&chunk[..pos]);
                    (true, pos + 1)
                }
                None => {
                    line.extend_from_slice(chunk);
                    (false, chunk.len())
                }
            }
        };
        reader.consume(used);
        if line.len() > max {
            return Err(ReadLineError::TooLong);
        }
        if found {
            return String::from_utf8(line).map_err(|_| ReadLineError::BadUtf8);
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let opts = &shared.opts;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(opts.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(opts.write_timeout_ms)));
    let mut out = &stream;
    let line = match read_request_line(&stream, opts.max_line_bytes) {
        Ok(line) => line,
        Err(ReadLineError::TooLong) => {
            let _ = out.write_all(
                err_line(&format!(
                    "request line exceeds {} bytes",
                    opts.max_line_bytes
                ))
                .as_bytes(),
            );
            return;
        }
        Err(ReadLineError::BadUtf8) => {
            let _ = out.write_all(err_line("request is not UTF-8").as_bytes());
            return;
        }
        // A timed-out or vanished client gets dropped silently — there
        // is nobody left to answer, and answering a half-written frame
        // would only confuse a confused peer further.
        Err(ReadLineError::Gone) => return,
    };
    let request = match jsonv::parse(line.trim_end()) {
        Ok(v) => v,
        Err(why) => {
            let _ = out.write_all(err_line(&format!("bad request: {why}")).as_bytes());
            return;
        }
    };
    match request.get("op").and_then(Value::as_str) {
        Some("ping") => {
            let draining = shared.gate.lock().expect("gate lock").draining;
            let _ = out.write_all(
                format!(
                    "{{\"ok\":true,\"service\":\"osoffload-serve\",\"version\":2,\
                     \"draining\":{draining}}}\n"
                )
                .as_bytes(),
            );
        }
        Some("stats") => {
            let (running, queued, draining) = {
                let gate = shared.gate.lock().expect("gate lock");
                (gate.running, gate.queued, gate.draining)
            };
            let t = *shared.totals.lock().expect("totals lock");
            let entries = shared.cache.lock().expect("cache lock").len();
            let _ = out.write_all(
                format!(
                    "{{\"ok\":true,\"entries\":{entries},\"hits\":{},\"misses\":{},\
                     \"evictions\":{},\"submissions\":{},\"shed\":{},\
                     \"drain_refused\":{},\"deadline_refused\":{},\"running\":{running},\
                     \"queued\":{queued},\"draining\":{draining}}}\n",
                    t.hits,
                    t.misses,
                    t.evictions,
                    t.submissions,
                    t.shed,
                    t.drain_refused,
                    t.deadline_refused,
                )
                .as_bytes(),
            );
        }
        Some("shutdown") => handle_shutdown(shared, out),
        Some("submit") => submit_entry(shared, &request, &stream),
        _ => {
            let _ = out.write_all(err_line("unknown op").as_bytes());
        }
    }
}

/// Graceful drain: flag the gate (waking every queued submission into a
/// `draining` refusal), wait until nothing is running or queued, then
/// acknowledge, raise the stop flag, and poke the accept loop awake.
fn handle_shutdown(shared: &Shared, mut out: &TcpStream) {
    {
        let mut gate = shared.gate.lock().expect("gate lock");
        gate.draining = true;
        shared.gate_cv.notify_all();
        while gate.running > 0 || gate.queued > 0 {
            gate = shared.gate_cv.wait(gate).expect("gate wait");
        }
    }
    export_metrics(shared);
    let _ = out.write_all(b"{\"ok\":true,\"stopping\":true,\"drained\":true}\n");
    shared.stop.store(true, Ordering::SeqCst);
    // The accept loop is blocked in accept(); a throwaway connection
    // wakes it to observe the stop flag.
    let _ = TcpStream::connect(shared.addr);
}

/// Decides whether a submission may run now, must wait, or is refused.
fn admit(shared: &Shared) -> Admit {
    let opts = &shared.opts;
    let deadline = (opts.request_deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(opts.request_deadline_ms));
    let mut gate = shared.gate.lock().expect("gate lock");
    if gate.draining {
        return Admit::Refuse {
            line: err_line("draining"),
            kind: RefuseKind::Draining,
        };
    }
    if gate.running < opts.slots() {
        gate.running += 1;
        return Admit::Go;
    }
    if gate.queued >= opts.admit_queue {
        return Admit::Refuse {
            line: overloaded_line(gate.running + gate.queued),
            kind: RefuseKind::Overloaded,
        };
    }
    gate.queued += 1;
    loop {
        if gate.draining {
            gate.queued -= 1;
            shared.gate_cv.notify_all();
            return Admit::Refuse {
                line: err_line("draining"),
                kind: RefuseKind::Draining,
            };
        }
        if gate.running < opts.slots() {
            gate.queued -= 1;
            gate.running += 1;
            shared.gate_cv.notify_all();
            return Admit::Go;
        }
        match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    gate.queued -= 1;
                    shared.gate_cv.notify_all();
                    return Admit::Refuse {
                        line: format!(
                            "{{\"ok\":false,\"error\":\"deadline\",\
                             \"deadline_ms\":{}}}\n",
                            opts.request_deadline_ms
                        ),
                        kind: RefuseKind::Deadline,
                    };
                }
                let (g, _) = shared
                    .gate_cv
                    .wait_timeout(gate, d - now)
                    .expect("gate wait");
                gate = g;
            }
            None => gate = shared.gate_cv.wait(gate).expect("gate wait"),
        }
    }
}

/// Admission wrapper around [`handle_submit`]: passes the gate, runs
/// the sweep, and releases the slot whatever happens.
fn submit_entry(shared: &Shared, request: &Value, out: &TcpStream) {
    let wait_start = Instant::now();
    match admit(shared) {
        Admit::Go => {}
        Admit::Refuse { line, kind } => {
            {
                let mut totals = shared.totals.lock().expect("totals lock");
                match kind {
                    RefuseKind::Overloaded => totals.shed += 1,
                    RefuseKind::Draining => totals.drain_refused += 1,
                    RefuseKind::Deadline => totals.deadline_refused += 1,
                }
            }
            export_metrics(shared);
            let mut w = out;
            let _ = w.write_all(line.as_bytes());
            return;
        }
    }
    let result = handle_submit(shared, request, out, wait_start.elapsed());
    {
        let mut gate = shared.gate.lock().expect("gate lock");
        gate.running -= 1;
        shared.gate_cv.notify_all();
    }
    if let Err(why) = result {
        let mut w = out;
        let _ = w.write_all(err_line(&why).as_bytes());
    }
}

fn lower_submit(request: &Value) -> Result<(String, u64, Vec<SubmitPoint>), String> {
    let experiment = request
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or("submit missing experiment")?;
    if !valid_experiment_name(experiment) {
        return Err(format!(
            "experiment name {experiment:?} must be 1-64 chars of [A-Za-z0-9._-]"
        ));
    }
    let master_seed = request
        .get("master_seed")
        .and_then(Value::as_u64)
        .ok_or("submit missing master_seed")?;
    let raw_points = request
        .get("points")
        .and_then(Value::as_arr)
        .ok_or("submit missing points")?;
    if raw_points.is_empty() {
        return Err("submit has no points".into());
    }
    let mut points = Vec::with_capacity(raw_points.len());
    for (i, p) in raw_points.iter().enumerate() {
        let id = p
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("point {i}: missing id"))?;
        let config = wire::config_from_json(
            p.get("config")
                .ok_or_else(|| format!("point {i}: missing config"))?,
        )
        .map_err(|why| format!("point {i}: {why}"))?;
        // Re-canonicalise: cache comparisons use the daemon's own
        // rendering, never client-supplied bytes.
        let wire_text = wire::config_to_json(&config).map_err(|why| format!("point {i}: {why}"))?;
        points.push(SubmitPoint {
            id: id.to_string(),
            digest: wire::digest(&config),
            wire: wire_text,
            config,
        });
    }
    Ok((experiment.to_string(), master_seed, points))
}

fn handle_submit(
    shared: &Shared,
    request: &Value,
    out: &TcpStream,
    queue_wait: Duration,
) -> Result<(), String> {
    let opts = &shared.opts;
    let (experiment, master_seed, points) = lower_submit(request)?;
    // Whatever request budget survived the admission queue bounds each
    // point through the runner's watchdog.
    let deadline_ms = if opts.request_deadline_ms > 0 {
        let remaining = opts
            .request_deadline_ms
            .saturating_sub(queue_wait.as_millis() as u64);
        if remaining == 0 {
            return Err("deadline".into());
        }
        Some(remaining)
    } else {
        None
    };
    let mut plan = ExperimentPlan::new(&experiment, master_seed);
    let mut prefill = Vec::with_capacity(points.len());
    {
        let cache = shared.cache.lock().expect("cache lock");
        for p in &points {
            let index = plan.push_pinned(p.id.clone(), p.config.clone());
            prefill.push(cache.serve(&p.digest, &p.wire, index, &p.id, p.config.seed));
        }
    }
    let mut writer = out;
    let _ = writer
        .write_all(format!("{{\"event\":\"accepted\",\"points\":{}}}\n", points.len()).as_bytes());

    let ropts = RunnerOptions {
        workers: opts.workers,
        lanes: opts.lanes,
        retries: opts.retries,
        quiet: true,
        canonical: true,
        out_dir: opts.out_dir.clone(),
        fault_seed: opts.fault_seed,
        deadline_ms,
        ..RunnerOptions::default()
    };

    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let stream = Mutex::new(out);
    let wires: Vec<&str> = points.iter().map(|p| p.wire.as_str()).collect();
    let digests: Vec<&str> = points.iter().map(|p| p.digest.as_str()).collect();
    let on_point = |row: &osoffload_runner::PointResult, cached: bool| {
        if cached {
            hits.fetch_add(1, Ordering::Relaxed);
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
            // Cache the fresh row before acknowledging it: after a
            // kill -9 the WAL holds everything the client saw done.
            match shared
                .cache
                .lock()
                .expect("cache lock")
                .insert(wires[row.index], row)
            {
                Ok(_) => {}
                Err(why) => eprintln!("serve: {why}"),
            }
        }
        let status = match &row.outcome {
            Outcome::Ok(_) => "ok",
            Outcome::Failed { .. } => "failed",
            Outcome::TimedOut { .. } => "timeout",
        };
        let line = format!(
            "{{\"event\":\"point\",\"index\":{},\"id\":\"{}\",\"digest\":\"{}\",\
             \"cached\":{},\"status\":\"{}\"}}\n",
            row.index,
            json_escape(&row.id),
            digests[row.index],
            cached,
            status
        );
        // A vanished client must not abort the sweep: results still
        // land in the cache for the next submission.
        let mut s = stream.lock().expect("stream lock");
        let _ = (&mut *s).write_all(line.as_bytes());
    };
    let hooks = ExecHooks {
        prefill,
        on_point: Some(&on_point),
    };
    let mut sweep = run_plan_hooked(&plan, &ropts, hooks);

    // Normalise run-shape fields so retried / fault-injected /
    // cache-served sweeps archive byte-identically to a clean
    // direct canonical run.
    for row in &mut sweep.rows {
        row.wall_ms = 0.0;
        row.start_ms = 0.0;
        row.worker = 0;
        row.attempts = 1;
        row.attempt_ms = vec![0.0];
        row.injected_faults = 0;
    }
    let archive =
        write_sweep(&sweep, &opts.out_dir).map_err(|e| format!("cannot write archive: {e}"))?;

    let hits = hits.into_inner();
    let misses = misses.into_inner();
    let failed = sweep.rows.iter().filter(|r| !r.is_ok()).count();
    let evicted = shared.cache.lock().expect("cache lock").enforce_limits()? as u64;

    {
        let mut totals = shared.totals.lock().expect("totals lock");
        totals.hits += hits;
        totals.misses += misses;
        totals.evictions += evicted;
        totals.submissions += 1;
    }
    export_metrics(shared);
    if !opts.quiet {
        eprintln!(
            "serve: {experiment}: {} points, {hits} hits, {misses} misses, {failed} failed",
            sweep.rows.len()
        );
    }

    let _ = writer.write_all(
        format!(
            "{{\"event\":\"done\",\"ok\":true,\"points\":{},\"hits\":{hits},\
             \"misses\":{misses},\"failed\":{failed},\"evicted\":{evicted},\
             \"archive\":\"{}\"}}\n",
            sweep.rows.len(),
            json_escape(&archive.display().to_string())
        )
        .as_bytes(),
    );
    Ok(())
}

/// Commits one epoch sample and writes `serve-metrics.csv` /
/// `serve-metrics.json` atomically.
fn export_metrics(shared: &Shared) {
    let t = *shared.totals.lock().expect("totals lock");
    let entries = shared.cache.lock().expect("cache lock").len();
    let depth = {
        let gate = shared.gate.lock().expect("gate lock");
        gate.running + gate.queued
    };
    let epoch = shared.samples.fetch_add(1, Ordering::Relaxed);
    let mut m = shared.metrics.lock().expect("metrics lock");
    let (hits, misses, evictions, entries_id, submissions, depth_id, shed, drain_refused) = (
        m.hits,
        m.misses,
        m.evictions,
        m.entries,
        m.submissions,
        m.depth,
        m.shed,
        m.drain_refused,
    );
    m.registry.set(hits, t.hits as f64);
    m.registry.set(misses, t.misses as f64);
    m.registry.set(evictions, t.evictions as f64);
    m.registry.set(entries_id, entries as f64);
    m.registry.set(submissions, t.submissions as f64);
    m.registry.set(depth_id, depth as f64);
    m.registry.set(shed, t.shed as f64);
    m.registry.set(drain_refused, t.drain_refused as f64);
    m.registry.commit_sample(epoch, 0, 0);
    let csv = shared.opts.out_dir.join("serve-metrics.csv");
    let json = shared.opts.out_dir.join("serve-metrics.json");
    if let Err(e) = atomic_write(&csv, m.registry.to_csv().as_bytes())
        .and_then(|()| atomic_write(&json, m.registry.to_json().as_bytes()))
    {
        eprintln!("serve: cannot write metrics: {e}");
    }
}
