//! The serve daemon: a localhost TCP accept loop scheduling submitted
//! sweeps on the runner behind the result cache.
//!
//! The protocol is newline-delimited JSON over one connection per
//! request. A client connects, writes a single request line, and reads
//! response lines until the connection closes:
//!
//! - `{"op":"ping"}` → one `{"ok":true,...}` line.
//! - `{"op":"stats"}` → one line of cache/counter totals.
//! - `{"op":"shutdown"}` → one acknowledgement line; the daemon then
//!   exits its accept loop.
//! - `{"op":"submit","experiment":..,"master_seed":..,"points":[..]}` →
//!   an `accepted` event, one `point` event per point as it completes
//!   (cached points first, announced before any computation starts),
//!   and a final `done` event carrying hit/miss totals and the archive
//!   path.
//!
//! Every submitted configuration is rebuilt through
//! [`wire::config_from_json`] — and therefore through
//! `SystemConfig::try_build` — before it can reach the executor, so a
//! malformed or hostile request gets an error line, never a panic.
//! Completed points are appended to the cache WAL as they finish
//! (fsynced, inside the executor's completion callback), which is what
//! makes a `kill -9` mid-campaign recoverable: the restarted daemon
//! replays the WAL and serves every acknowledged point from cache.
//!
//! Sweeps always run in canonical mode, and the daemon additionally
//! normalises the run-shape fields (`attempts`, `attempt_ms`,
//! `injected_faults`) of every row before archiving. A sweep served
//! from cache, recomputed after a crash, or retried under fault
//! injection therefore produces a byte-identical archive to a clean
//! direct `--canonical` run of the same plan.

use crate::cache::ResultCache;
use crate::wire;
use osoffload_obs::{atomic_write, json_escape, MetricId, MetricsRegistry};
use osoffload_runner::jsonv::{self, Value};
use osoffload_runner::report::write_sweep;
use osoffload_runner::{run_plan_hooked, ExecHooks, ExperimentPlan, Outcome, RunnerOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default TCP port of the serve daemon.
pub const DEFAULT_PORT: u16 = 7411;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Port to listen on (localhost only); `0` picks an ephemeral port.
    pub port: u16,
    /// Path of the cache WAL file.
    pub cache: PathBuf,
    /// Directory archives and metrics are written into.
    pub out_dir: PathBuf,
    /// Maximum cached entries (`0` = unbounded); oldest evicted first.
    pub cache_capacity: usize,
    /// Worker threads per sweep (`0` = one per hardware thread).
    pub workers: usize,
    /// Lane-pack width (`0` = auto; only used for sweeps with no cached
    /// points, since lane packs would straddle served rows).
    pub lanes: usize,
    /// Retries per failing point.
    pub retries: u32,
    /// Fault-injection seed (chaos testing; see `ROBUSTNESS.md`).
    pub fault_seed: Option<u64>,
    /// Suppresses stderr chatter.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: DEFAULT_PORT,
            cache: PathBuf::from("results/serve/cache.wal"),
            out_dir: PathBuf::from("results/serve"),
            cache_capacity: 0,
            workers: 0,
            lanes: 0,
            retries: 0,
            fault_seed: None,
            quiet: false,
        }
    }
}

/// Totals across the daemon's lifetime, exported as epoch-sampled
/// metrics after every submission.
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    hits: u64,
    misses: u64,
    evictions: u64,
    submissions: u64,
}

struct Metrics {
    registry: MetricsRegistry,
    hits: MetricId,
    misses: MetricId,
    evictions: MetricId,
    entries: MetricId,
    submissions: MetricId,
}

impl Metrics {
    fn new() -> Metrics {
        let mut registry = MetricsRegistry::new();
        let hits = registry.register_counter("serve.cache.hits");
        let misses = registry.register_counter("serve.cache.misses");
        let evictions = registry.register_counter("serve.cache.evictions");
        let entries = registry.register_gauge("serve.cache.entries");
        let submissions = registry.register_counter("serve.submissions");
        Metrics {
            registry,
            hits,
            misses,
            evictions,
            entries,
            submissions,
        }
    }
}

/// A bound serve daemon, ready to [`run`](Daemon::run).
pub struct Daemon {
    listener: TcpListener,
    cache: ResultCache,
    opts: ServeOptions,
    totals: Totals,
    metrics: Metrics,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.listener.local_addr().ok())
            .field("cache_entries", &self.cache.len())
            .finish()
    }
}

fn err_line(why: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}\n", json_escape(why))
}

fn valid_experiment_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// One lowered, validated submission point.
struct SubmitPoint {
    id: String,
    wire: String,
    digest: String,
    config: osoffload_system::SystemConfig,
}

impl Daemon {
    /// Opens the cache and binds the listener on `127.0.0.1`.
    pub fn bind(opts: ServeOptions) -> Result<Daemon, String> {
        let cache = ResultCache::open(&opts.cache, opts.cache_capacity)?;
        for warning in cache.warnings() {
            eprintln!("serve: {warning}");
        }
        let listener = TcpListener::bind(("127.0.0.1", opts.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
        Ok(Daemon {
            listener,
            cache,
            opts,
            totals: Totals::default(),
            metrics: Metrics::new(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr().expect("listener is bound")
    }

    /// Cached entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Serves connections until a `shutdown` request arrives.
    pub fn run(&mut self) -> Result<(), String> {
        loop {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| format!("accept failed: {e}"))?;
            match self.handle(stream) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(why) => eprintln!("serve: connection error: {why}"),
            }
        }
    }

    /// Handles one connection; `Ok(true)` means shutdown was requested.
    fn handle(&mut self, stream: TcpStream) -> Result<bool, String> {
        // A wedged client must not hang the daemon forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let mut line = String::new();
        BufReader::new(&stream)
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        let mut out = &stream;
        let request = match jsonv::parse(line.trim_end()) {
            Ok(v) => v,
            Err(why) => {
                let _ = out.write_all(err_line(&format!("bad request: {why}")).as_bytes());
                return Ok(false);
            }
        };
        match request.get("op").and_then(Value::as_str) {
            Some("ping") => {
                let _ =
                    out.write_all(b"{\"ok\":true,\"service\":\"osoffload-serve\",\"version\":1}\n");
                Ok(false)
            }
            Some("stats") => {
                let t = self.totals;
                let _ = out.write_all(
                    format!(
                        "{{\"ok\":true,\"entries\":{},\"hits\":{},\"misses\":{},\
                         \"evictions\":{},\"submissions\":{}}}\n",
                        self.cache.len(),
                        t.hits,
                        t.misses,
                        t.evictions,
                        t.submissions
                    )
                    .as_bytes(),
                );
                Ok(false)
            }
            Some("shutdown") => {
                let _ = out.write_all(b"{\"ok\":true,\"stopping\":true}\n");
                Ok(true)
            }
            Some("submit") => {
                if let Err(why) = self.handle_submit(&request, out) {
                    let _ = out.write_all(err_line(&why).as_bytes());
                }
                Ok(false)
            }
            _ => {
                let _ = out.write_all(err_line("unknown op").as_bytes());
                Ok(false)
            }
        }
    }

    fn lower_submit(&self, request: &Value) -> Result<(String, u64, Vec<SubmitPoint>), String> {
        let experiment = request
            .get("experiment")
            .and_then(Value::as_str)
            .ok_or("submit missing experiment")?;
        if !valid_experiment_name(experiment) {
            return Err(format!(
                "experiment name {experiment:?} must be 1-64 chars of [A-Za-z0-9._-]"
            ));
        }
        let master_seed = request
            .get("master_seed")
            .and_then(Value::as_u64)
            .ok_or("submit missing master_seed")?;
        let raw_points = request
            .get("points")
            .and_then(Value::as_arr)
            .ok_or("submit missing points")?;
        if raw_points.is_empty() {
            return Err("submit has no points".into());
        }
        let mut points = Vec::with_capacity(raw_points.len());
        for (i, p) in raw_points.iter().enumerate() {
            let id = p
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("point {i}: missing id"))?;
            let config = wire::config_from_json(
                p.get("config")
                    .ok_or_else(|| format!("point {i}: missing config"))?,
            )
            .map_err(|why| format!("point {i}: {why}"))?;
            // Re-canonicalise: cache comparisons use the daemon's own
            // rendering, never client-supplied bytes.
            let wire_text =
                wire::config_to_json(&config).map_err(|why| format!("point {i}: {why}"))?;
            points.push(SubmitPoint {
                id: id.to_string(),
                digest: wire::digest(&config),
                wire: wire_text,
                config,
            });
        }
        Ok((experiment.to_string(), master_seed, points))
    }

    fn handle_submit(&mut self, request: &Value, out: &TcpStream) -> Result<(), String> {
        let (experiment, master_seed, points) = self.lower_submit(request)?;
        let mut plan = ExperimentPlan::new(&experiment, master_seed);
        let mut prefill = Vec::with_capacity(points.len());
        for p in &points {
            let index = plan.push_pinned(p.id.clone(), p.config.clone());
            prefill.push(
                self.cache
                    .serve(&p.digest, &p.wire, index, &p.id, p.config.seed),
            );
        }
        let mut writer = out;
        let _ = writer.write_all(
            format!("{{\"event\":\"accepted\",\"points\":{}}}\n", points.len()).as_bytes(),
        );

        let ropts = RunnerOptions {
            workers: self.opts.workers,
            lanes: self.opts.lanes,
            retries: self.opts.retries,
            quiet: true,
            canonical: true,
            out_dir: self.opts.out_dir.clone(),
            fault_seed: self.opts.fault_seed,
            ..RunnerOptions::default()
        };

        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let cache = Mutex::new(&mut self.cache);
        let stream = Mutex::new(out);
        let wires: Vec<&str> = points.iter().map(|p| p.wire.as_str()).collect();
        let digests: Vec<&str> = points.iter().map(|p| p.digest.as_str()).collect();
        let on_point = |row: &osoffload_runner::PointResult, cached: bool| {
            if cached {
                hits.fetch_add(1, Ordering::Relaxed);
            } else {
                misses.fetch_add(1, Ordering::Relaxed);
                // Cache the fresh row before acknowledging it: after a
                // kill -9 the WAL holds everything the client saw done.
                match cache
                    .lock()
                    .expect("cache lock")
                    .insert(wires[row.index], row)
                {
                    Ok(_) => {}
                    Err(why) => eprintln!("serve: {why}"),
                }
            }
            let status = match &row.outcome {
                Outcome::Ok(_) => "ok",
                Outcome::Failed { .. } => "failed",
                Outcome::TimedOut { .. } => "timeout",
            };
            let line = format!(
                "{{\"event\":\"point\",\"index\":{},\"id\":\"{}\",\"digest\":\"{}\",\
                 \"cached\":{},\"status\":\"{}\"}}\n",
                row.index,
                json_escape(&row.id),
                digests[row.index],
                cached,
                status
            );
            // A vanished client must not abort the sweep: results still
            // land in the cache for the next submission.
            let mut s = stream.lock().expect("stream lock");
            let _ = (&mut *s).write_all(line.as_bytes());
        };
        let hooks = ExecHooks {
            prefill,
            on_point: Some(&on_point),
        };
        let mut sweep = run_plan_hooked(&plan, &ropts, hooks);

        // Normalise run-shape fields so retried / fault-injected /
        // cache-served sweeps archive byte-identically to a clean
        // direct canonical run.
        for row in &mut sweep.rows {
            row.wall_ms = 0.0;
            row.start_ms = 0.0;
            row.worker = 0;
            row.attempts = 1;
            row.attempt_ms = vec![0.0];
            row.injected_faults = 0;
        }
        let archive = write_sweep(&sweep, &self.opts.out_dir)
            .map_err(|e| format!("cannot write archive: {e}"))?;

        let hits = hits.into_inner();
        let misses = misses.into_inner();
        let failed = sweep.rows.iter().filter(|r| !r.is_ok()).count();
        let evicted = self.cache.enforce_capacity()? as u64;

        self.totals.hits += hits;
        self.totals.misses += misses;
        self.totals.evictions += evicted;
        self.totals.submissions += 1;
        self.export_metrics();
        if !self.opts.quiet {
            eprintln!(
                "serve: {experiment}: {} points, {hits} hits, {misses} misses, {failed} failed",
                sweep.rows.len()
            );
        }

        let _ = writer.write_all(
            format!(
                "{{\"event\":\"done\",\"ok\":true,\"points\":{},\"hits\":{hits},\
                 \"misses\":{misses},\"failed\":{failed},\"evicted\":{evicted},\
                 \"archive\":\"{}\"}}\n",
                sweep.rows.len(),
                json_escape(&archive.display().to_string())
            )
            .as_bytes(),
        );
        Ok(())
    }

    /// Commits one epoch sample (epoch = submission ordinal) and writes
    /// `serve-metrics.csv` / `serve-metrics.json` atomically.
    fn export_metrics(&mut self) {
        let m = &mut self.metrics;
        let t = self.totals;
        m.registry.set(m.hits, t.hits as f64);
        m.registry.set(m.misses, t.misses as f64);
        m.registry.set(m.evictions, t.evictions as f64);
        m.registry.set(m.entries, self.cache.len() as f64);
        m.registry.set(m.submissions, t.submissions as f64);
        m.registry.commit_sample(t.submissions, 0, 0);
        let csv = self.opts.out_dir.join("serve-metrics.csv");
        let json = self.opts.out_dir.join("serve-metrics.json");
        if let Err(e) = atomic_write(&csv, self.metrics.registry.to_csv().as_bytes())
            .and_then(|()| atomic_write(&json, self.metrics.registry.to_json().as_bytes()))
        {
            eprintln!("serve: cannot write metrics: {e}");
        }
    }
}
