//! Digest-keyed result cache with the runner's checksummed journal
//! format as its write-ahead log.
//!
//! The cache file reuses the envelope line format of
//! [`osoffload_runner::journal`]: line one is a header
//! (`{"journal":"osoffload-serve-cache","version":1}`), and every
//! subsequent line records one completed point as
//! `{"digest":"<16-hex>","config":<wire config>,"stable":<stable row>}`
//! — the `stable` key deliberately last, like the runner's journal, so
//! the original archive text can be sliced back out byte-for-byte.
//! Every insert is an fsynced append, so a killed daemon restarts warm
//! with everything it ever acknowledged.
//!
//! Two deliberate differences from the runner's journal loader:
//!
//! - **Corrupt lines are skipped, not fatal.** `journal::load` stops at
//!   the first bad line because later records may depend on a prefix; a
//!   cache is content-addressed, so a record that fails its checksum or
//!   its digest recomputation is dropped with a warning and the rest of
//!   the file stays usable. A torn, unterminated tail (the classic
//!   `kill -9` artefact) is discarded silently, exactly as the runner's
//!   `--resume` does.
//! - **Records store the full wire configuration.** The 64-bit digest
//!   keys the index, but the archive-side `config_json` it hashes omits
//!   topology fields, so colliding configurations are possible. Lookup
//!   therefore requires digest *and* wire-config equality: a collision
//!   recomputes rather than ever serving the wrong row.
//!
//! Duplicate digests are last-wins (a re-inserted row supersedes the
//! old one and counts as freshest for eviction). When the loader had to
//! drop anything, or eviction trims the cache, the file is compacted
//! through [`osoffload_obs::atomic_write`] — temp file, fsync, rename —
//! so a crash mid-compaction leaves either the old or the new cache,
//! never a mangled hybrid.

use osoffload_obs::atomic_write;
use osoffload_runner::journal::{envelope, restore_from_stable, unwrap_envelope, Journal};
use osoffload_runner::jsonv;
use osoffload_runner::PointResult;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Header body of a serve cache file (line one, enveloped).
pub const HEADER_BODY: &str = "{\"journal\":\"osoffload-serve-cache\",\"version\":1}";

/// One cached point: its digest key, the full wire configuration the
/// digest was computed from, and the restored result row (whose
/// `stable_json` is the verbatim archive text).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// 16-hex-digit FNV-1a digest of the point's archive `config_json`.
    pub digest: String,
    /// The point's full wire configuration (collision guard).
    pub config: String,
    /// The cached row, restored as if resumed from a journal.
    pub row: PointResult,
}

impl CacheEntry {
    fn body(&self) -> String {
        format!(
            "{{\"digest\":\"{}\",\"config\":{},\"stable\":{}}}",
            self.digest,
            self.config,
            self.row.stable_json()
        )
    }
}

/// A persistent digest-keyed result cache.
///
/// Entries are held oldest-first; the in-memory index maps digests to
/// positions. All mutation goes through the WAL before it is visible.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    capacity: usize,
    entries: Vec<CacheEntry>,
    index: HashMap<String, usize>,
    writer: Option<Journal>,
    warnings: Vec<String>,
}

fn parse_record(body: &str) -> Result<CacheEntry, String> {
    let rest = body
        .strip_prefix("{\"digest\":\"")
        .ok_or("record does not start with a digest")?;
    let digest = rest.get(..16).ok_or("record digest truncated")?;
    if !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("record digest {digest:?} is not hex"));
    }
    let rest = rest[16..]
        .strip_prefix("\",\"config\":")
        .ok_or("record missing config")?;
    let stable_at = rest
        .find(",\"stable\":")
        .ok_or("record missing stable row")?;
    let config = &rest[..stable_at];
    jsonv::parse(config).map_err(|e| format!("record config unparsable: {e}"))?;
    let stable = rest[stable_at + ",\"stable\":".len()..]
        .strip_suffix('}')
        .ok_or("record not brace-terminated")?;
    let row = restore_from_stable(stable).ok_or("record stable row does not restore")?;
    if !row.is_ok() {
        return Err("record row is not a completed point".into());
    }
    if row.config_digest() != digest {
        return Err(format!(
            "record digest {digest} does not match its row ({})",
            row.config_digest()
        ));
    }
    Ok(CacheEntry {
        digest: digest.to_string(),
        config: config.to_string(),
        row,
    })
}

fn load_entries(path: &Path) -> Result<(Vec<CacheEntry>, Vec<String>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read cache {}: {e}", path.display()))?;
    let mut lines = Vec::new();
    let mut rest = text.as_str();
    // Only newline-terminated lines are records; an unterminated tail is
    // a torn in-flight append and is discarded without comment.
    while let Some(nl) = rest.find('\n') {
        lines.push(&rest[..nl]);
        rest = &rest[nl + 1..];
    }
    let header = lines
        .first()
        .ok_or_else(|| format!("cache {} has no header line", path.display()))?;
    if unwrap_envelope(header) != Some(HEADER_BODY) {
        return Err(format!(
            "cache {} has an unrecognised header; refusing to treat it as a serve cache",
            path.display()
        ));
    }
    let mut entries: Vec<CacheEntry> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut warnings = Vec::new();
    for (lineno, line) in lines.iter().enumerate().skip(1) {
        let parsed = unwrap_envelope(line)
            .ok_or_else(|| "bad envelope or checksum".to_string())
            .and_then(parse_record);
        match parsed {
            Ok(entry) => {
                if let Some(&old) = index.get(&entry.digest) {
                    // Last-wins: drop the superseded record and shift
                    // the index left over the removed slot.
                    entries.remove(old);
                    for pos in index.values_mut() {
                        if *pos > old {
                            *pos -= 1;
                        }
                    }
                }
                index.insert(entry.digest.clone(), entries.len());
                entries.push(entry);
            }
            Err(why) => warnings.push(format!(
                "cache {} line {}: {why}; record skipped",
                path.display(),
                lineno + 1
            )),
        }
    }
    Ok((entries, warnings))
}

/// Reads a cache file without opening it for writing or healing it:
/// the surviving entries (duplicates already collapsed last-wins) plus
/// warnings for skipped records. This is the read-only loader
/// `osoffload inspect` uses, so inspection never mutates an artefact.
pub fn read_entries(path: &Path) -> Result<(Vec<CacheEntry>, Vec<String>), String> {
    load_entries(path)
}

impl ResultCache {
    /// Opens (or creates) the cache at `path`. `capacity` bounds the
    /// entry count (`0` = unbounded). Unreadable records are skipped
    /// with warnings (see [`ResultCache::warnings`]) and the file is
    /// compacted to drop them; a file that is not a serve cache at all
    /// is an error rather than silently overwritten.
    pub fn open(path: &Path, capacity: usize) -> Result<ResultCache, String> {
        let (entries, warnings) = if path.exists() {
            load_entries(path)?
        } else {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
                }
            }
            atomic_write(path, envelope(HEADER_BODY).as_bytes())
                .map_err(|e| format!("cannot create cache {}: {e}", path.display()))?;
            (Vec::new(), Vec::new())
        };
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.digest.clone(), i))
            .collect();
        let mut cache = ResultCache {
            path: path.to_path_buf(),
            capacity,
            entries,
            index,
            writer: None,
            warnings,
        };
        // Heal: rewrite the file whenever replay dropped anything (bad
        // records, torn tail, superseded duplicates) so damage cannot
        // accumulate across restarts.
        if cache.canonical_bytes() != std::fs::read(path).unwrap_or_default() {
            cache.compact()?;
        }
        cache.enforce_capacity()?;
        cache.writer = Some(
            Journal::open_append(path)
                .map_err(|e| format!("cannot append to cache {}: {e}", path.display()))?,
        );
        Ok(cache)
    }

    /// Warnings emitted while replaying the WAL (skipped records).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// The entry for `digest` — only if its stored wire configuration is
    /// byte-equal to `config` (the digest-collision guard).
    pub fn lookup(&self, digest: &str, config: &str) -> Option<&CacheEntry> {
        let entry = &self.entries[*self.index.get(digest)?];
        (entry.config == config).then_some(entry)
    }

    /// Serves a cached row re-keyed to a new plan position: the stored
    /// verbatim stable text gets `index`/`id`/`seed` spliced in, then is
    /// restored like a journal resume — so the served row's archive text
    /// is byte-identical to a fresh computation at that position.
    pub fn serve(
        &self,
        digest: &str,
        config: &str,
        index: usize,
        id: &str,
        seed: u64,
    ) -> Option<PointResult> {
        let entry = self.lookup(digest, config)?;
        let rekeyed =
            osoffload_runner::journal::rekey_stable(&entry.row.stable_json(), index, id, seed)?;
        restore_from_stable(&rekeyed)
    }

    /// Inserts a completed row under its configuration digest, appending
    /// it to the WAL (fsynced) before it becomes visible. Returns `true`
    /// if the row was cached, `false` if it was refused (failed rows are
    /// never cached). A duplicate digest supersedes the old entry.
    pub fn insert(&mut self, config: &str, row: &PointResult) -> Result<bool, String> {
        if !row.is_ok() {
            return Ok(false);
        }
        let entry = CacheEntry {
            digest: row.config_digest(),
            config: config.to_string(),
            row: row.clone(),
        };
        self.writer
            .as_mut()
            .expect("cache writer is open outside compaction")
            .append(&entry.body())
            .map_err(|e| format!("cache append failed: {e}"))?;
        if let Some(&old) = self.index.get(&entry.digest) {
            self.entries.remove(old);
            for pos in self.index.values_mut() {
                if *pos > old {
                    *pos -= 1;
                }
            }
        }
        self.index.insert(entry.digest.clone(), self.entries.len());
        self.entries.push(entry);
        Ok(true)
    }

    /// Evicts oldest entries beyond the configured capacity, compacting
    /// the file if anything was dropped. Returns the eviction count.
    pub fn enforce_capacity(&mut self) -> Result<usize, String> {
        if self.capacity == 0 || self.entries.len() <= self.capacity {
            return Ok(0);
        }
        let evict = self.entries.len() - self.capacity;
        self.entries.drain(..evict);
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.digest.clone(), i))
            .collect();
        self.compact()?;
        Ok(evict)
    }

    fn canonical_bytes(&self) -> Vec<u8> {
        let mut bytes = envelope(HEADER_BODY).into_bytes();
        for entry in &self.entries {
            bytes.extend_from_slice(envelope(&entry.body()).as_bytes());
        }
        bytes
    }

    /// Rewrites the cache file to exactly the in-memory entries, via an
    /// atomic temp-file + fsync + rename, and reopens the append handle
    /// on the new file.
    pub fn compact(&mut self) -> Result<(), String> {
        // Drop the append handle first: after the rename it would point
        // at the unlinked old inode and appends would vanish.
        self.writer = None;
        atomic_write(&self.path, &self.canonical_bytes())
            .map_err(|e| format!("cache compaction failed: {e}"))?;
        self.writer = Some(
            Journal::open_append(&self.path)
                .map_err(|e| format!("cannot reopen cache {}: {e}", self.path.display()))?,
        );
        Ok(())
    }
}
