//! Digest-keyed result cache with the runner's checksummed journal
//! format as its write-ahead log.
//!
//! The cache file reuses the envelope line format of
//! [`osoffload_runner::journal`]: line one is a header
//! (`{"journal":"osoffload-serve-cache","version":1}`), and every
//! subsequent line records one completed point as
//! `{"digest":"<16-hex>","stamp":N,"config":<wire config>,"stable":<stable row>}`
//! — the `stable` key deliberately last, like the runner's journal, so
//! the original archive text can be sliced back out byte-for-byte.
//! Every insert is an fsynced append, so a killed daemon restarts warm
//! with everything it ever acknowledged.
//!
//! Both files share one line reader,
//! [`osoffload_runner::journal::scan_envelope_lines`]; the cache runs
//! it in [`ScanMode::Tolerant`] where the journal runs it in strict
//! mode. Two deliberate differences from the runner's journal loader
//! follow from that:
//!
//! - **Corrupt lines are skipped, not fatal.** `journal::load` stops at
//!   the first bad line because later records may depend on a prefix; a
//!   cache is content-addressed, so a record that fails its checksum or
//!   its digest recomputation is dropped with a warning and the rest of
//!   the file stays usable. A torn, unterminated tail (the classic
//!   `kill -9` artefact) is discarded silently, exactly as the runner's
//!   `--resume` does.
//! - **Records store the full wire configuration.** The 64-bit digest
//!   keys the index, but the archive-side `config_json` it hashes omits
//!   topology fields, so colliding configurations are possible. Lookup
//!   therefore requires digest *and* wire-config equality: a collision
//!   recomputes rather than ever serving the wrong row.
//!
//! Each record carries a monotone **stamp** — virtual seconds since the
//! cache was first created, never wall-clock time, so replaying a WAL
//! is deterministic. A freshly opened cache resumes its clock from the
//! largest stamp on disk and advances it with a monotonic timer; when a
//! TTL is configured ([`ResultCache::open_limited`]), entries whose age
//! exceeds it are evicted durably at open/compaction time. Records
//! written before stamps existed load as stamp `0` (maximally old).
//!
//! Duplicate digests are last-wins (a re-inserted row supersedes the
//! old one and counts as freshest for eviction). When the loader had to
//! drop anything, or eviction trims the cache, the file is compacted
//! through [`osoffload_obs::atomic_write`] — temp file, fsync, rename —
//! so a crash mid-compaction leaves either the old or the new cache,
//! never a mangled hybrid.

use osoffload_obs::atomic_write;
use osoffload_runner::journal::{
    envelope, restore_from_stable, scan_envelope_lines, Journal, ScanMode,
};
use osoffload_runner::jsonv;
use osoffload_runner::PointResult;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Header body of a serve cache file (line one, enveloped).
pub const HEADER_BODY: &str = "{\"journal\":\"osoffload-serve-cache\",\"version\":1}";

/// One cached point: its digest key, the full wire configuration the
/// digest was computed from, and the restored result row (whose
/// `stable_json` is the verbatim archive text).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// 16-hex-digit FNV-1a digest of the point's archive `config_json`.
    pub digest: String,
    /// Monotone insertion stamp (virtual seconds, not wall clock).
    pub stamp: u64,
    /// The point's full wire configuration (collision guard).
    pub config: String,
    /// The cached row, restored as if resumed from a journal.
    pub row: PointResult,
}

impl CacheEntry {
    fn body(&self) -> String {
        format!(
            "{{\"digest\":\"{}\",\"stamp\":{},\"config\":{},\"stable\":{}}}",
            self.digest,
            self.stamp,
            self.config,
            self.row.stable_json()
        )
    }
}

/// A persistent digest-keyed result cache.
///
/// Entries are held oldest-first; the in-memory index maps digests to
/// positions. All mutation goes through the WAL before it is visible.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    capacity: usize,
    ttl_secs: u64,
    stamp_base: u64,
    opened: Instant,
    entries: Vec<CacheEntry>,
    index: HashMap<String, usize>,
    writer: Option<Journal>,
    warnings: Vec<String>,
}

fn parse_record(body: &str) -> Result<CacheEntry, String> {
    let rest = body
        .strip_prefix("{\"digest\":\"")
        .ok_or("record does not start with a digest")?;
    let digest = rest.get(..16).ok_or("record digest truncated")?;
    if !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("record digest {digest:?} is not hex"));
    }
    // The stamp is optional: records written before cache TTLs existed
    // omit it and load as maximally old.
    let mut stamp = 0u64;
    let rest = if let Some(after) = rest[16..].strip_prefix("\",\"stamp\":") {
        let digits = after.bytes().take_while(u8::is_ascii_digit).count();
        stamp = after[..digits]
            .parse()
            .map_err(|_| "record stamp is not a number".to_string())?;
        after[digits..]
            .strip_prefix(",\"config\":")
            .ok_or("record missing config")?
    } else {
        rest[16..]
            .strip_prefix("\",\"config\":")
            .ok_or("record missing config")?
    };
    let stable_at = rest
        .find(",\"stable\":")
        .ok_or("record missing stable row")?;
    let config = &rest[..stable_at];
    jsonv::parse(config).map_err(|e| format!("record config unparsable: {e}"))?;
    let stable = rest[stable_at + ",\"stable\":".len()..]
        .strip_suffix('}')
        .ok_or("record not brace-terminated")?;
    let row = restore_from_stable(stable).ok_or("record stable row does not restore")?;
    if !row.is_ok() {
        return Err("record row is not a completed point".into());
    }
    if row.config_digest() != digest {
        return Err(format!(
            "record digest {digest} does not match its row ({})",
            row.config_digest()
        ));
    }
    Ok(CacheEntry {
        digest: digest.to_string(),
        stamp,
        config: config.to_string(),
        row,
    })
}

fn load_entries(path: &Path) -> Result<(Vec<CacheEntry>, Vec<String>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read cache {}: {e}", path.display()))?;
    let (lines, issues) = scan_envelope_lines(&text, ScanMode::Tolerant);
    let Some(&(header_lineno, header_body)) = lines.first() else {
        return Err(format!("cache {} has no header line", path.display()));
    };
    if header_lineno != 1 || header_body != HEADER_BODY {
        return Err(format!(
            "cache {} has an unrecognised header; refusing to treat it as a serve cache",
            path.display()
        ));
    }
    let mut entries: Vec<CacheEntry> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut warnings: Vec<String> = issues
        .iter()
        .map(|i| {
            format!(
                "cache {} line {}: {}; record skipped",
                path.display(),
                i.lineno,
                i.why
            )
        })
        .collect();
    for &(lineno, body) in &lines[1..] {
        match parse_record(body) {
            Ok(entry) => {
                if let Some(&old) = index.get(&entry.digest) {
                    // Last-wins: drop the superseded record and shift
                    // the index left over the removed slot.
                    entries.remove(old);
                    for pos in index.values_mut() {
                        if *pos > old {
                            *pos -= 1;
                        }
                    }
                }
                index.insert(entry.digest.clone(), entries.len());
                entries.push(entry);
            }
            Err(why) => warnings.push(format!(
                "cache {} line {lineno}: {why}; record skipped",
                path.display()
            )),
        }
    }
    Ok((entries, warnings))
}

/// Reads a cache file without opening it for writing or healing it:
/// the surviving entries (duplicates already collapsed last-wins) plus
/// warnings for skipped records. This is the read-only loader
/// `osoffload inspect` uses, so inspection never mutates an artefact.
pub fn read_entries(path: &Path) -> Result<(Vec<CacheEntry>, Vec<String>), String> {
    load_entries(path)
}

impl ResultCache {
    /// Opens (or creates) the cache at `path`. `capacity` bounds the
    /// entry count (`0` = unbounded). Unreadable records are skipped
    /// with warnings (see [`ResultCache::warnings`]) and the file is
    /// compacted to drop them; a file that is not a serve cache at all
    /// is an error rather than silently overwritten.
    pub fn open(path: &Path, capacity: usize) -> Result<ResultCache, String> {
        ResultCache::open_limited(path, capacity, 0)
    }

    /// [`ResultCache::open`] with an additional age limit: entries whose
    /// stamp age exceeds `ttl_secs` (`0` = no limit) are evicted — and
    /// the file compacted — before the cache is usable.
    pub fn open_limited(
        path: &Path,
        capacity: usize,
        ttl_secs: u64,
    ) -> Result<ResultCache, String> {
        let (entries, warnings) = if path.exists() {
            load_entries(path)?
        } else {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
                }
            }
            atomic_write(path, envelope(HEADER_BODY).as_bytes())
                .map_err(|e| format!("cannot create cache {}: {e}", path.display()))?;
            (Vec::new(), Vec::new())
        };
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.digest.clone(), i))
            .collect();
        let stamp_base = entries.iter().map(|e| e.stamp).max().unwrap_or(0);
        let mut cache = ResultCache {
            path: path.to_path_buf(),
            capacity,
            ttl_secs,
            stamp_base,
            opened: Instant::now(),
            entries,
            index,
            writer: None,
            warnings,
        };
        // Heal: rewrite the file whenever replay dropped anything (bad
        // records, torn tail, superseded duplicates) so damage cannot
        // accumulate across restarts.
        if cache.canonical_bytes() != std::fs::read(path).unwrap_or_default() {
            cache.compact()?;
        }
        cache.evict_expired()?;
        cache.enforce_capacity()?;
        cache.writer = Some(
            Journal::open_append(path)
                .map_err(|e| format!("cannot append to cache {}: {e}", path.display()))?,
        );
        Ok(cache)
    }

    /// Warnings emitted while replaying the WAL (skipped records).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// The cache's current monotone stamp: virtual seconds resumed from
    /// the largest stamp on disk and advanced by a monotonic timer —
    /// never wall-clock time, so WAL replay stays deterministic.
    pub fn now_stamp(&self) -> u64 {
        self.stamp_base + self.opened.elapsed().as_secs()
    }

    /// The entry for `digest` — only if its stored wire configuration is
    /// byte-equal to `config` (the digest-collision guard).
    pub fn lookup(&self, digest: &str, config: &str) -> Option<&CacheEntry> {
        let entry = &self.entries[*self.index.get(digest)?];
        (entry.config == config).then_some(entry)
    }

    /// Serves a cached row re-keyed to a new plan position: the stored
    /// verbatim stable text gets `index`/`id`/`seed` spliced in, then is
    /// restored like a journal resume — so the served row's archive text
    /// is byte-identical to a fresh computation at that position.
    pub fn serve(
        &self,
        digest: &str,
        config: &str,
        index: usize,
        id: &str,
        seed: u64,
    ) -> Option<PointResult> {
        let entry = self.lookup(digest, config)?;
        let rekeyed =
            osoffload_runner::journal::rekey_stable(&entry.row.stable_json(), index, id, seed)?;
        restore_from_stable(&rekeyed)
    }

    /// Inserts a completed row under its configuration digest, appending
    /// it to the WAL (fsynced) before it becomes visible. Returns `true`
    /// if the row was cached, `false` if it was refused (failed rows are
    /// never cached). A duplicate digest supersedes the old entry.
    pub fn insert(&mut self, config: &str, row: &PointResult) -> Result<bool, String> {
        self.insert_stamped(config, row, self.now_stamp())
    }

    /// [`ResultCache::insert`] with an explicit stamp instead of the
    /// cache's current one — how TTL tests plant entries of known age.
    pub fn insert_stamped(
        &mut self,
        config: &str,
        row: &PointResult,
        stamp: u64,
    ) -> Result<bool, String> {
        if !row.is_ok() {
            return Ok(false);
        }
        let entry = CacheEntry {
            digest: row.config_digest(),
            stamp,
            config: config.to_string(),
            row: row.clone(),
        };
        self.writer
            .as_mut()
            .expect("cache writer is open outside compaction")
            .append(&entry.body())
            .map_err(|e| format!("cache append failed: {e}"))?;
        if let Some(&old) = self.index.get(&entry.digest) {
            self.entries.remove(old);
            for pos in self.index.values_mut() {
                if *pos > old {
                    *pos -= 1;
                }
            }
        }
        self.index.insert(entry.digest.clone(), self.entries.len());
        self.entries.push(entry);
        Ok(true)
    }

    /// Evicts entries older than the configured TTL (no-op when the TTL
    /// is `0`), compacting the file if anything was dropped. Returns the
    /// eviction count.
    pub fn evict_expired(&mut self) -> Result<usize, String> {
        if self.ttl_secs == 0 {
            return Ok(0);
        }
        let now = self.now_stamp();
        let ttl = self.ttl_secs;
        let before = self.entries.len();
        self.entries.retain(|e| now.saturating_sub(e.stamp) <= ttl);
        let evicted = before - self.entries.len();
        if evicted > 0 {
            self.rebuild_index();
            self.compact()?;
        }
        Ok(evicted)
    }

    /// Evicts oldest entries beyond the configured capacity, compacting
    /// the file if anything was dropped. Returns the eviction count.
    pub fn enforce_capacity(&mut self) -> Result<usize, String> {
        if self.capacity == 0 || self.entries.len() <= self.capacity {
            return Ok(0);
        }
        let evict = self.entries.len() - self.capacity;
        self.entries.drain(..evict);
        self.rebuild_index();
        self.compact()?;
        Ok(evict)
    }

    /// Applies both eviction policies — age first, then capacity — and
    /// returns the total eviction count. The daemon calls this after
    /// every submission.
    pub fn enforce_limits(&mut self) -> Result<usize, String> {
        Ok(self.evict_expired()? + self.enforce_capacity()?)
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.digest.clone(), i))
            .collect();
    }

    fn canonical_bytes(&self) -> Vec<u8> {
        let mut bytes = envelope(HEADER_BODY).into_bytes();
        for entry in &self.entries {
            bytes.extend_from_slice(envelope(&entry.body()).as_bytes());
        }
        bytes
    }

    /// Rewrites the cache file to exactly the in-memory entries, via an
    /// atomic temp-file + fsync + rename, and reopens the append handle
    /// on the new file.
    pub fn compact(&mut self) -> Result<(), String> {
        // Drop the append handle first: after the rename it would point
        // at the unlinked old inode and appends would vanish.
        self.writer = None;
        atomic_write(&self.path, &self.canonical_bytes())
            .map_err(|e| format!("cache compaction failed: {e}"))?;
        self.writer = Some(
            Journal::open_append(&self.path)
                .map_err(|e| format!("cannot reopen cache {}: {e}", self.path.display()))?,
        );
        Ok(())
    }
}
