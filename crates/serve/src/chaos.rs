//! Deterministic fault-injecting TCP proxy — the socket-level chaos
//! harness for the serve daemon.
//!
//! The proxy sits between a client and the daemon on loopback and
//! injects faults at **planned byte offsets**: torn writes (a prefix is
//! forwarded, then the connection is cut), stalls (forwarding pauses
//! mid-frame), and mid-stream disconnects. Every connection's fault
//! plan derives from a [`SeedSequence`] in accept order, the same
//! deterministic seeding discipline the runner's `FaultPlan` uses — so
//! a chaos campaign replays the same fault schedule for the same seed,
//! and a CI failure names the seed that reproduces it.
//!
//! What the harness proves (see `tests/serve_chaos.rs` and the nightly
//! `serve-chaos` CI job): whatever the proxy does to the byte streams,
//! the daemon's cache WAL stays well-formed, every acknowledged point
//! is fully journaled or absent, and a clean resubmission serves the
//! whole plan from cache with a byte-identical canonical archive.

use osoffload_sim::{Rng64, SeedSequence};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the fault planner.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability that one direction of a connection gets a fault.
    pub fault_rate: f64,
    /// How long a stall fault pauses forwarding, in milliseconds.
    pub stall_ms: u64,
    /// Fault offsets are drawn uniformly from `0..max_offset` bytes.
    pub max_offset: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fault_rate: 0.5,
            stall_ms: 50,
            max_offset: 2_048,
        }
    }
}

/// One planned fault on one direction of a proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pause forwarding for `ms` once `at` bytes have been relayed.
    Stall {
        /// Byte offset the stall triggers at.
        at: u64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Forward exactly `at` bytes of the stream, then cut the
    /// connection — the canonical torn write.
    TornWrite {
        /// Bytes forwarded before the cut.
        at: u64,
    },
    /// Cut the connection once `at` bytes have been relayed, without
    /// forwarding the chunk that crossed the offset.
    Disconnect {
        /// Byte offset the cut triggers at.
        at: u64,
    },
}

impl Fault {
    fn offset(&self) -> u64 {
        match *self {
            Fault::Stall { at, .. } | Fault::TornWrite { at } | Fault::Disconnect { at } => at,
        }
    }
}

/// Derives the fault plan for one connection: one optional fault per
/// direction (`[client→server, server→client]`), deterministically from
/// the connection's seed.
pub fn plan_connection(seed: u64, cfg: &ChaosConfig) -> [Option<Fault>; 2] {
    let mut rng = Rng64::seed_from(seed);
    let mut plan_dir = || {
        if !rng.gen_bool(cfg.fault_rate) {
            return None;
        }
        let at = rng.gen_range(0..cfg.max_offset.max(1));
        Some(match rng.gen_range(0..3) {
            0 => Fault::Stall {
                at,
                ms: cfg.stall_ms,
            },
            1 => Fault::TornWrite { at },
            _ => Fault::Disconnect { at },
        })
    };
    [plan_dir(), plan_dir()]
}

struct ProxyState {
    stop: AtomicBool,
    injected: AtomicU64,
    log: Mutex<Vec<String>>,
    log_file: Mutex<Option<std::fs::File>>,
}

impl ProxyState {
    fn record(&self, line: String) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let Some(file) = self.log_file.lock().expect("log file lock").as_mut() {
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
        self.log.lock().expect("fault log lock").push(line);
    }
}

/// A running chaos proxy; dropping it without [`ChaosProxy::stop`]
/// leaves the accept thread parked until the process exits.
pub struct ChaosProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("injected", &self.injected())
            .finish()
    }
}

impl ChaosProxy {
    /// Starts a proxy on loopback `port` (`0` = ephemeral) forwarding
    /// to `upstream`. Connection fault plans derive from `seed`;
    /// injected faults are appended to `log_path` (one line each) when
    /// given.
    pub fn start(
        port: u16,
        upstream: SocketAddr,
        seed: u64,
        cfg: ChaosConfig,
        log_path: Option<&std::path::Path>,
    ) -> Result<ChaosProxy, String> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| format!("chaos proxy cannot bind: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("chaos proxy address: {e}"))?;
        let log_file = match log_path {
            Some(path) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("chaos proxy cannot open log {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let state = Arc::new(ProxyState {
            stop: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            log_file: Mutex::new(log_file),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || {
            let mut seeds = SeedSequence::new(seed);
            let mut conn = 0u64;
            loop {
                let (client, _) = match listener.accept() {
                    Ok(pair) => pair,
                    Err(_) => break,
                };
                if accept_state.stop.load(Ordering::SeqCst) {
                    break;
                }
                conn += 1;
                let conn_seed = seeds.next_seed();
                let plan = plan_connection(conn_seed, &cfg);
                let server = match TcpStream::connect(upstream) {
                    Ok(s) => s,
                    Err(e) => {
                        accept_state.record(format!(
                            "conn={conn} seed={conn_seed:#018x} upstream unreachable: {e}"
                        ));
                        continue;
                    }
                };
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                for (src, dst, fault, dir) in [
                    (client, server, plan[0], "c2s"),
                    (server2, client2, plan[1], "s2c"),
                ] {
                    let state = Arc::clone(&accept_state);
                    std::thread::spawn(move || {
                        pump(src, dst, fault, &state, conn, conn_seed, dir);
                    });
                }
            }
        });
        Ok(ChaosProxy {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's loopback address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// How many faults (or upstream failures) were injected so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// A copy of the fault log so far, one line per injected fault.
    pub fn fault_log(&self) -> Vec<String> {
        self.state.log.lock().expect("fault log lock").clone()
    }

    /// Stops accepting new connections and joins the accept thread.
    /// In-flight pump threads finish on their own as streams close.
    pub fn stop(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Forwards bytes `src` → `dst`, applying at most one planned fault,
/// then half-closes the destination so EOF propagates.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    mut fault: Option<Fault>,
    state: &ProxyState,
    conn: u64,
    seed: u64,
    dir: &str,
) {
    let mut pos = 0u64;
    let mut buf = [0u8; 512];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        let chunk = &buf[..n];
        let crossed = fault.map(|f| f.offset() < pos + n as u64).unwrap_or(false);
        if crossed {
            let f = fault.take().expect("fault present when crossed");
            let cut = (f.offset().saturating_sub(pos)) as usize;
            let relayed = match f {
                Fault::Disconnect { .. } => pos,
                _ => pos + cut as u64,
            };
            state.record(format!(
                "conn={conn} seed={seed:#018x} dir={dir} fault={f:?} relayed={relayed}"
            ));
            match f {
                Fault::Stall { ms, .. } => {
                    if dst.write_all(&chunk[..cut]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(ms));
                    if dst.write_all(&chunk[cut..]).is_err() {
                        break;
                    }
                }
                Fault::TornWrite { .. } => {
                    let _ = dst.write_all(&chunk[..cut]);
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                Fault::Disconnect { .. } => {
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
            }
        } else if dst.write_all(chunk).is_err() {
            break;
        }
        pos += n as u64;
    }
    let _ = dst.shutdown(Shutdown::Write);
}
