//! Wire configuration codec: a total, validated JSON encoding of
//! [`SystemConfig`] for the serve protocol.
//!
//! The archive-side `config_json` (see
//! [`osoffload_runner::report::config_json`]) is deliberately lossy —
//! it summarises phases as a count and the tuner/memory overrides as
//! booleans. The wire encoding is the opposite: every field a request
//! can set is carried exactly, so the daemon can rebuild the identical
//! [`SystemConfig`] through [`SystemConfigBuilder::try_build`] and the
//! cache can compare full configurations when digests collide.
//!
//! Observational knobs (tracing, telemetry, profiling) are not
//! expressible on the wire: the daemon always runs plain canonical
//! sweeps, and reports are bit-identical with or without observation.
//!
//! [`SystemConfigBuilder::try_build`]: osoffload_system::SystemConfigBuilder::try_build

use osoffload_core::TunerConfig;
use osoffload_mem::MemConfig;
use osoffload_obs::{json_escape, TelemetryMode};
use osoffload_runner::journal::fnv1a64;
use osoffload_runner::jsonv::Value;
use osoffload_runner::report::config_json;
use osoffload_sim::Instret;
use osoffload_system::{DispatchPolicy, OffloadMechanism, PolicyKind, SystemConfig};
use osoffload_workload::Profile;

/// The digest the cache is keyed by: FNV-1a over the point's archive
/// `config_json` bytes, rendered as 16 hex digits — identical to
/// [`PointResult::config_digest`](osoffload_runner::PointResult::config_digest)
/// and to what `osoffload inspect find --digest` looks up.
pub fn digest(cfg: &SystemConfig) -> String {
    format!("{:016x}", fnv1a64(config_json(cfg).as_bytes()))
}

fn profile_name(profile: &Profile) -> Result<&'static str, String> {
    let known = Profile::by_name(profile.name)
        .ok_or_else(|| format!("profile {:?} is not in the catalog", profile.name))?;
    if format!("{known:?}") != format!("{profile:?}") {
        return Err(format!(
            "profile {:?} differs from the catalog entry of that name",
            profile.name
        ));
    }
    Ok(known.name)
}

fn policy_json(policy: &PolicyKind) -> String {
    match policy {
        PolicyKind::Baseline => "{\"kind\":\"baseline\"}".into(),
        PolicyKind::AlwaysOffload => "{\"kind\":\"always\"}".into(),
        PolicyKind::HardwarePredictor { threshold } => {
            format!("{{\"kind\":\"hi\",\"threshold\":{threshold}}}")
        }
        PolicyKind::HardwarePredictorDirectMapped { threshold } => {
            format!("{{\"kind\":\"hi-dm\",\"threshold\":{threshold}}}")
        }
        PolicyKind::HardwarePredictorSized { threshold, entries } => {
            format!("{{\"kind\":\"hi-sized\",\"threshold\":{threshold},\"entries\":{entries}}}")
        }
        PolicyKind::HardwarePredictorDmSized { threshold, entries } => {
            format!("{{\"kind\":\"hi-dm-sized\",\"threshold\":{threshold},\"entries\":{entries}}}")
        }
        PolicyKind::HardwarePredictorSetAssoc {
            threshold,
            sets,
            ways,
        } => format!(
            "{{\"kind\":\"hi-sa\",\"threshold\":{threshold},\"sets\":{sets},\"ways\":{ways}}}"
        ),
        PolicyKind::HardwarePredictorGlobalOnly { threshold } => {
            format!("{{\"kind\":\"hi-global\",\"threshold\":{threshold}}}")
        }
        PolicyKind::HardwarePredictorLastValue { threshold } => {
            format!("{{\"kind\":\"hi-last-value\",\"threshold\":{threshold}}}")
        }
        PolicyKind::DynamicInstrumentation { threshold, cost } => {
            format!("{{\"kind\":\"di\",\"threshold\":{threshold},\"cost\":{cost}}}")
        }
        PolicyKind::StaticInstrumentation { stub_cost } => {
            format!("{{\"kind\":\"si\",\"stub_cost\":{stub_cost}}}")
        }
        PolicyKind::Oracle { threshold } => {
            format!("{{\"kind\":\"oracle\",\"threshold\":{threshold}}}")
        }
    }
}

fn policy_from_json(v: &Value) -> Result<PolicyKind, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("policy missing kind")?;
    let threshold = || {
        v.get("threshold")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("policy {kind:?} missing threshold"))
    };
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_usize)
            .ok_or_else(|| format!("policy {kind:?} missing {name}"))
    };
    Ok(match kind {
        "baseline" => PolicyKind::Baseline,
        "always" => PolicyKind::AlwaysOffload,
        "hi" => PolicyKind::HardwarePredictor {
            threshold: threshold()?,
        },
        "hi-dm" => PolicyKind::HardwarePredictorDirectMapped {
            threshold: threshold()?,
        },
        "hi-sized" => PolicyKind::HardwarePredictorSized {
            threshold: threshold()?,
            entries: field("entries")?,
        },
        "hi-dm-sized" => PolicyKind::HardwarePredictorDmSized {
            threshold: threshold()?,
            entries: field("entries")?,
        },
        "hi-sa" => PolicyKind::HardwarePredictorSetAssoc {
            threshold: threshold()?,
            sets: field("sets")?,
            ways: field("ways")?,
        },
        "hi-global" => PolicyKind::HardwarePredictorGlobalOnly {
            threshold: threshold()?,
        },
        "hi-last-value" => PolicyKind::HardwarePredictorLastValue {
            threshold: threshold()?,
        },
        "di" => PolicyKind::DynamicInstrumentation {
            threshold: threshold()?,
            cost: v
                .get("cost")
                .and_then(Value::as_u64)
                .ok_or("policy \"di\" missing cost")?,
        },
        "si" => PolicyKind::StaticInstrumentation {
            stub_cost: v
                .get("stub_cost")
                .and_then(Value::as_u64)
                .ok_or("policy \"si\" missing stub_cost")?,
        },
        "oracle" => PolicyKind::Oracle {
            threshold: threshold()?,
        },
        other => return Err(format!("unknown policy kind {other:?}")),
    })
}

fn tuner_json(tuner: &TunerConfig) -> String {
    let candidates: Vec<String> = tuner.candidates.iter().map(u64::to_string).collect();
    format!(
        "{{\"candidates\":[{}],\"sample_epoch\":{},\"stable_base\":{},\"stable_cap\":{},\
         \"improvement\":{},\"os_heavy_pivot\":{},\"initial_os_heavy\":{},\"initial_os_light\":{}}}",
        candidates.join(","),
        tuner.sample_epoch.as_u64(),
        tuner.stable_base.as_u64(),
        tuner.stable_cap.as_u64(),
        tuner.improvement,
        tuner.os_heavy_pivot,
        tuner.initial_os_heavy,
        tuner.initial_os_light
    )
}

fn tuner_from_json(v: &Value) -> Result<TunerConfig, String> {
    let u = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("tuner missing {key}"))
    };
    let f = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("tuner missing {key}"))
    };
    Ok(TunerConfig {
        candidates: v
            .get("candidates")
            .and_then(Value::as_arr)
            .ok_or("tuner missing candidates")?
            .iter()
            .map(Value::as_u64)
            .collect::<Option<Vec<u64>>>()
            .ok_or("tuner candidates must be integers")?,
        sample_epoch: Instret::new(u("sample_epoch")?),
        stable_base: Instret::new(u("stable_base")?),
        stable_cap: Instret::new(u("stable_cap")?),
        improvement: f("improvement")?,
        os_heavy_pivot: f("os_heavy_pivot")?,
        initial_os_heavy: u("initial_os_heavy")?,
        initial_os_light: u("initial_os_light")?,
    })
}

/// Renders a configuration as wire JSON (stable key order), or an error
/// for configurations the wire cannot express (profiles outside the
/// catalog, non-half-L2 memory overrides, observation knobs).
pub fn config_to_json(cfg: &SystemConfig) -> Result<String, String> {
    if cfg.trace_capacity != 0 {
        return Err("trace capture is not expressible on the wire".into());
    }
    if !matches!(cfg.telemetry, TelemetryMode::Off) {
        return Err("telemetry modes are not expressible on the wire".into());
    }
    if cfg.profiling {
        return Err("profiling is not expressible on the wire".into());
    }
    let phases = cfg
        .phases
        .iter()
        .map(|(at, p)| {
            Ok(format!(
                "{{\"at\":{at},\"profile\":\"{}\"}}",
                profile_name(p)?
            ))
        })
        .collect::<Result<Vec<String>, String>>()?;
    let half_l2_cores = match &cfg.mem_override {
        None => "null".to_string(),
        Some(mem) => {
            let reference = MemConfig::half_l2_variant(mem.cores);
            if format!("{mem:?}") != format!("{reference:?}") {
                return Err("only the half-L2 memory override is expressible on the wire".into());
            }
            mem.cores.to_string()
        }
    };
    Ok(format!(
        "{{\"profile\":\"{}\",\"phases\":[{}],\"policy\":{},\"mechanism\":\"{}\",\
         \"migration_one_way\":{},\"os_core_slowdown_milli\":{},\"os_core_contexts\":{},\
         \"os_cores\":{},\"dispatch\":\"{}\",\"os_cold_penalty\":{},\"resource_adaptation\":{},\
         \"user_cores\":{},\"instructions\":{},\"warmup\":{},\"seed\":{},\"tuner\":{},\
         \"half_l2_cores\":{}}}",
        json_escape(profile_name(&cfg.profile)?),
        phases.join(","),
        policy_json(&cfg.policy),
        match cfg.mechanism {
            OffloadMechanism::ThreadMigration => "thread-migration",
            OffloadMechanism::RemoteCall => "remote-call",
        },
        cfg.migration.one_way().as_u64(),
        cfg.os_core_slowdown_milli,
        cfg.os_core_contexts,
        cfg.os_cores,
        cfg.dispatch.label(),
        cfg.os_cold_penalty,
        cfg.resource_adaptation
            .map_or("null".to_string(), |m| m.to_string()),
        cfg.user_cores,
        cfg.instructions,
        cfg.warmup,
        cfg.seed,
        cfg.tuner.as_ref().map_or("null".to_string(), tuner_json),
        half_l2_cores
    ))
}

/// Rebuilds a configuration from parsed wire JSON, funnelling it
/// through [`SystemConfigBuilder::try_build`] so every request is fully
/// validated before it can reach the executor. Never panics on hostile
/// input: range checks run before any asserting builder setter.
///
/// [`SystemConfigBuilder::try_build`]: osoffload_system::SystemConfigBuilder::try_build
pub fn config_from_json(v: &Value) -> Result<SystemConfig, String> {
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("config missing {key}"))
    };
    let u = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config missing {key}"))
    };
    let us = |key: &str| {
        v.get(key)
            .and_then(Value::as_usize)
            .ok_or_else(|| format!("config missing {key}"))
    };
    let profile = s("profile")?;
    let profile =
        Profile::by_name(profile).ok_or_else(|| format!("unknown profile {profile:?}"))?;
    let mut b = SystemConfig::builder().profile(profile);
    for (i, phase) in v
        .get("phases")
        .and_then(Value::as_arr)
        .ok_or("config missing phases")?
        .iter()
        .enumerate()
    {
        let at = phase
            .get("at")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("phase {i} missing at"))?;
        let name = phase
            .get("profile")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("phase {i} missing profile"))?;
        let p =
            Profile::by_name(name).ok_or_else(|| format!("phase {i}: unknown profile {name:?}"))?;
        b = b.phase(at, p);
    }
    b = b.policy(policy_from_json(
        v.get("policy").ok_or("config missing policy")?,
    )?);
    b = b.mechanism(match s("mechanism")? {
        "thread-migration" => OffloadMechanism::ThreadMigration,
        "remote-call" => OffloadMechanism::RemoteCall,
        other => return Err(format!("unknown mechanism {other:?}")),
    });
    b = b.migration_latency(u("migration_one_way")?);
    let slowdown = u("os_core_slowdown_milli")?;
    if slowdown == 0 {
        return Err("os_core_slowdown_milli must be positive".into());
    }
    b = b.os_core_slowdown_milli(slowdown);
    let contexts = us("os_core_contexts")?;
    if contexts == 0 {
        return Err("os_core_contexts must be positive".into());
    }
    b = b.os_core_contexts(contexts);
    let os_cores = us("os_cores")?;
    if os_cores == 0 {
        return Err("os_cores must be positive".into());
    }
    b = b.os_cores(os_cores);
    let dispatch = s("dispatch")?;
    b = b.dispatch(
        DispatchPolicy::parse(dispatch)
            .ok_or_else(|| format!("unknown dispatch policy {dispatch:?}"))?,
    );
    b = b.os_cold_penalty(u("os_cold_penalty")?);
    match v.get("resource_adaptation") {
        Some(Value::Null) | None => {}
        Some(val) => {
            let milli = val
                .as_u64()
                .ok_or("resource_adaptation must be null or a positive integer")?;
            if milli == 0 {
                return Err("resource_adaptation must be positive".into());
            }
            b = b.resource_adaptation(milli);
        }
    }
    b = b.user_cores(us("user_cores")?);
    b = b.instructions(u("instructions")?);
    b = b.warmup(u("warmup")?);
    b = b.seed(u("seed")?);
    match v.get("tuner") {
        Some(Value::Null) | None => {}
        Some(t) => b = b.tuner(tuner_from_json(t)?),
    }
    match v.get("half_l2_cores") {
        Some(Value::Null) | None => {}
        Some(val) => {
            let cores = val
                .as_usize()
                .ok_or("half_l2_cores must be null or a core count")?;
            if !(1..=64).contains(&cores) {
                return Err("half_l2_cores must be in 1..=64".into());
            }
            b = b.mem_override(MemConfig::half_l2_variant(cores));
        }
    }
    b.try_build().map_err(|e| format!("invalid config: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_runner::jsonv;

    fn round_trip(cfg: &SystemConfig) {
        let wire = config_to_json(cfg).expect("encode");
        let parsed = jsonv::parse(&wire).expect("parse");
        let back = config_from_json(&parsed).expect("decode");
        assert_eq!(
            format!("{back:?}"),
            format!("{cfg:?}"),
            "wire round trip must be exact"
        );
        assert_eq!(config_to_json(&back).expect("re-encode"), wire);
        assert_eq!(digest(&back), digest(cfg));
    }

    #[test]
    fn every_policy_round_trips() {
        let policies = [
            PolicyKind::Baseline,
            PolicyKind::AlwaysOffload,
            PolicyKind::HardwarePredictor { threshold: 500 },
            PolicyKind::HardwarePredictorDirectMapped { threshold: 100 },
            PolicyKind::HardwarePredictorSized {
                threshold: 500,
                entries: 64,
            },
            PolicyKind::HardwarePredictorDmSized {
                threshold: 500,
                entries: 4096,
            },
            PolicyKind::HardwarePredictorSetAssoc {
                threshold: 500,
                sets: 64,
                ways: 4,
            },
            PolicyKind::HardwarePredictorGlobalOnly { threshold: 1_000 },
            PolicyKind::HardwarePredictorLastValue { threshold: 1_000 },
            PolicyKind::DynamicInstrumentation {
                threshold: 500,
                cost: 30,
            },
            PolicyKind::StaticInstrumentation { stub_cost: 10 },
            PolicyKind::Oracle { threshold: 500 },
        ];
        for policy in policies {
            round_trip(
                &SystemConfig::builder()
                    .profile(Profile::apache())
                    .policy(policy)
                    .instructions(10_000)
                    .warmup(2_000)
                    .seed(7)
                    .build(),
            );
        }
    }

    #[test]
    fn rich_configs_round_trip() {
        round_trip(
            &SystemConfig::builder()
                .profile(Profile::specjbb())
                .phase(5_000, Profile::apache())
                .policy(PolicyKind::HardwarePredictor { threshold: 500 })
                .mechanism(OffloadMechanism::RemoteCall)
                .migration_latency(100)
                .os_core_slowdown_milli(1_667)
                .os_core_contexts(2)
                .os_cores(2)
                .dispatch(DispatchPolicy::RoundRobin)
                .os_cold_penalty(250)
                .user_cores(4)
                .instructions(50_000)
                .warmup(10_000)
                .seed(0xF00D)
                .tuner(TunerConfig::scaled_down(100))
                .build(),
        );
        round_trip(
            &SystemConfig::builder()
                .profile(Profile::apache())
                .policy(PolicyKind::HardwarePredictor { threshold: 500 })
                .mem_override(MemConfig::half_l2_variant(2))
                .instructions(10_000)
                .warmup(2_000)
                .build(),
        );
        round_trip(
            &SystemConfig::builder()
                .profile(Profile::apache())
                .resource_adaptation(1_500)
                .instructions(10_000)
                .warmup(2_000)
                .build(),
        );
    }

    #[test]
    fn invalid_requests_are_rejected_not_panicked() {
        let base = config_to_json(
            &SystemConfig::builder()
                .profile(Profile::apache())
                .instructions(10_000)
                .warmup(2_000)
                .build(),
        )
        .expect("encode");
        for (needle, replacement, why) in [
            ("\"apache\"", "\"no-such-profile\"", "unknown profile"),
            (
                "\"os_core_slowdown_milli\":1000",
                "\"os_core_slowdown_milli\":0",
                "zero slowdown",
            ),
            ("\"user_cores\":1", "\"user_cores\":0", "zero user cores"),
            (
                "\"user_cores\":1",
                "\"user_cores\":80",
                "past the core ceiling",
            ),
            (
                "\"instructions\":10000",
                "\"instructions\":0",
                "empty region",
            ),
            ("\"os_cores\":1", "\"os_cores\":0", "zero OS cores"),
            (
                "\"dispatch\":\"least-loaded\"",
                "\"dispatch\":\"magic\"",
                "unknown dispatch",
            ),
            (
                "\"half_l2_cores\":null",
                "\"half_l2_cores\":99",
                "mem cores out of range",
            ),
            (
                "\"policy\":{\"kind\":\"baseline\"}",
                "\"policy\":{\"kind\":\"hi-sized\",\"threshold\":5,\"entries\":0}",
                "zero predictor capacity",
            ),
        ] {
            let mutated = base.replace(needle, replacement);
            assert_ne!(mutated, base, "mutation {why:?} must apply");
            let parsed = jsonv::parse(&mutated).expect("parse");
            assert!(config_from_json(&parsed).is_err(), "{why} must be rejected");
        }
    }

    #[test]
    fn observation_knobs_are_not_expressible() {
        let cfg = SystemConfig::builder()
            .profile(Profile::apache())
            .trace(16)
            .instructions(10_000)
            .build();
        assert!(config_to_json(&cfg).is_err());
        let cfg = SystemConfig::builder()
            .profile(Profile::apache())
            .telemetry(TelemetryMode::Full)
            .instructions(10_000)
            .build();
        assert!(config_to_json(&cfg).is_err());
    }
}
