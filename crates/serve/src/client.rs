//! Client side of the serve protocol: build request lines from an
//! [`ExperimentPlan`], submit them, and stream the daemon's events.

use crate::wire;
use osoffload_obs::json_escape;
use osoffload_runner::jsonv::{self, Value};
use osoffload_runner::ExperimentPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn connect(port: u16) -> Result<TcpStream, String> {
    TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}"))
}

fn one_shot(port: u16, request: &str) -> Result<String, String> {
    let mut stream = connect(port)?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if line.is_empty() {
        return Err("daemon closed the connection without responding".into());
    }
    Ok(line.trim_end().to_string())
}

/// Sends `{"op":"ping"}`; returns the daemon's response line.
pub fn ping(port: u16) -> Result<String, String> {
    one_shot(port, "{\"op\":\"ping\"}\n")
}

/// Sends `{"op":"stats"}`; returns the daemon's response line.
pub fn stats(port: u16) -> Result<String, String> {
    one_shot(port, "{\"op\":\"stats\"}\n")
}

/// Sends `{"op":"shutdown"}`; returns the daemon's acknowledgement.
pub fn stop(port: u16) -> Result<String, String> {
    one_shot(port, "{\"op\":\"shutdown\"}\n")
}

/// Renders a plan as a single `submit` request line (newline included).
/// Fails if any point's configuration is not expressible on the wire.
pub fn submit_request_line(plan: &ExperimentPlan) -> Result<String, String> {
    let mut points = Vec::with_capacity(plan.len());
    for p in plan.points() {
        let wire_text = wire::config_to_json(&p.config)
            .map_err(|why| format!("point {} ({}): {why}", p.index, p.id))?;
        points.push(format!(
            "{{\"id\":\"{}\",\"config\":{wire_text}}}",
            json_escape(&p.id)
        ));
    }
    Ok(format!(
        "{{\"op\":\"submit\",\"experiment\":\"{}\",\"master_seed\":{},\"points\":[{}]}}\n",
        json_escape(plan.name()),
        plan.master_seed(),
        points.join(",")
    ))
}

/// Totals reported by the daemon's final `done` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Points in the sweep.
    pub points: u64,
    /// Points served from the cache.
    pub hits: u64,
    /// Points computed fresh.
    pub misses: u64,
    /// Points that failed or timed out.
    pub failed: u64,
    /// Entries evicted after this submission.
    pub evicted: u64,
    /// Path of the canonical archive the daemon wrote.
    pub archive: String,
}

/// Submits a pre-rendered request line (see [`submit_request_line`]) and
/// streams response lines. `on_event` sees every event line (including
/// the final `done`); the parsed totals are returned.
pub fn submit(
    port: u16,
    request: &str,
    mut on_event: impl FnMut(&str),
) -> Result<SubmitOutcome, String> {
    let mut stream = connect(port)?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("lost the daemon mid-sweep: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection before the done event".into());
        }
        let text = line.trim_end();
        on_event(text);
        let event = jsonv::parse(text).map_err(|e| format!("bad event line: {e}"))?;
        if event.get("ok").map(|v| matches!(v, Value::Bool(false))) == Some(true) {
            let why = event
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown error");
            return Err(format!("daemon refused the request: {why}"));
        }
        if event.get("event").and_then(Value::as_str) == Some("done") {
            let field = |key: &str| {
                event
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("done event missing {key}"))
            };
            return Ok(SubmitOutcome {
                points: field("points")?,
                hits: field("hits")?,
                misses: field("misses")?,
                failed: field("failed")?,
                evicted: field("evicted")?,
                archive: event
                    .get("archive")
                    .and_then(Value::as_str)
                    .ok_or("done event missing archive")?
                    .to_string(),
            });
        }
    }
}
