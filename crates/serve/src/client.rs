//! Client side of the serve protocol: build request lines from an
//! [`ExperimentPlan`], submit them, and stream the daemon's events.
//!
//! [`submit_with_retry`] adds the resilience layer: a refusal the
//! daemon marks retryable (`overloaded`, `draining`) or a transport
//! failure (connection reset, daemon restarting) is retried with the
//! runner's deterministic exponential backoff-with-jitter
//! ([`osoffload_runner::backoff_delay_ms`]). Retrying a whole
//! submission is safe because submission is idempotent: every point
//! that completed before the failure was journaled by the daemon and is
//! served from cache on the next attempt.

use crate::wire;
use osoffload_obs::json_escape;
use osoffload_runner::jsonv::{self, Value};
use osoffload_runner::{backoff_delay_ms, ExperimentPlan};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn connect(port: u16) -> Result<TcpStream, String> {
    TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}"))
}

fn one_shot(port: u16, request: &str) -> Result<String, String> {
    let mut stream = connect(port)?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if line.is_empty() {
        return Err("daemon closed the connection without responding".into());
    }
    Ok(line.trim_end().to_string())
}

/// Sends `{"op":"ping"}`; returns the daemon's response line.
pub fn ping(port: u16) -> Result<String, String> {
    one_shot(port, "{\"op\":\"ping\"}\n")
}

/// Sends `{"op":"stats"}`; returns the daemon's response line.
pub fn stats(port: u16) -> Result<String, String> {
    one_shot(port, "{\"op\":\"stats\"}\n")
}

/// Sends `{"op":"shutdown"}`; returns the daemon's acknowledgement.
pub fn stop(port: u16) -> Result<String, String> {
    one_shot(port, "{\"op\":\"shutdown\"}\n")
}

/// Renders a plan as a single `submit` request line (newline included).
/// Fails if any point's configuration is not expressible on the wire.
pub fn submit_request_line(plan: &ExperimentPlan) -> Result<String, String> {
    let mut points = Vec::with_capacity(plan.len());
    for p in plan.points() {
        let wire_text = wire::config_to_json(&p.config)
            .map_err(|why| format!("point {} ({}): {why}", p.index, p.id))?;
        points.push(format!(
            "{{\"id\":\"{}\",\"config\":{wire_text}}}",
            json_escape(&p.id)
        ));
    }
    Ok(format!(
        "{{\"op\":\"submit\",\"experiment\":\"{}\",\"master_seed\":{},\"points\":[{}]}}\n",
        json_escape(plan.name()),
        plan.master_seed(),
        points.join(",")
    ))
}

/// Totals reported by the daemon's final `done` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Points in the sweep.
    pub points: u64,
    /// Points served from the cache.
    pub hits: u64,
    /// Points computed fresh.
    pub misses: u64,
    /// Points that failed or timed out.
    pub failed: u64,
    /// Entries evicted after this submission.
    pub evicted: u64,
    /// Path of the canonical archive the daemon wrote.
    pub archive: String,
}

/// Why one submission attempt did not produce a `done` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The daemon answered an `{"ok":false,...}` line. `error` is the
    /// daemon's code (`overloaded` and `draining` are retryable;
    /// anything else is a real refusal), and `retry_after_ms` the
    /// daemon's backoff hint, when it sent one.
    Refused {
        /// The daemon's error code or message.
        error: String,
        /// Suggested minimum delay before retrying, if the daemon sent
        /// one (`overloaded` responses do).
        retry_after_ms: Option<u64>,
    },
    /// The connection failed, reset, or closed before the `done` event
    /// — the daemon may have died mid-sweep or never been reachable.
    Transport(String),
    /// The daemon answered something that is not the serve protocol.
    Protocol(String),
}

impl SubmitError {
    /// Whether retrying the whole submission can succeed: retryable
    /// refusals and any transport failure (resubmission is idempotent
    /// through the digest cache).
    pub fn is_retryable(&self) -> bool {
        match self {
            SubmitError::Refused { error, .. } => error == "overloaded" || error == "draining",
            SubmitError::Transport(_) => true,
            SubmitError::Protocol(_) => false,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Refused { error, .. } => {
                write!(f, "daemon refused the request: {error}")
            }
            SubmitError::Transport(why) | SubmitError::Protocol(why) => f.write_str(why),
        }
    }
}

/// Submits a pre-rendered request line once (no retries), streaming
/// events to `on_event`; the structured failure distinguishes refusals
/// from transport loss so callers can decide whether to retry.
pub fn submit_once(
    port: u16,
    request: &str,
    mut on_event: impl FnMut(&str),
) -> Result<SubmitOutcome, SubmitError> {
    let mut stream = connect(port).map_err(SubmitError::Transport)?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| SubmitError::Transport(format!("cannot send request: {e}")))?;
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| SubmitError::Transport(format!("lost the daemon mid-sweep: {e}")))?;
        if n == 0 {
            return Err(SubmitError::Transport(
                "daemon closed the connection before the done event".into(),
            ));
        }
        let text = line.trim_end();
        on_event(text);
        let event = jsonv::parse(text)
            .map_err(|e| SubmitError::Protocol(format!("bad event line: {e}")))?;
        if event.get("ok").map(|v| matches!(v, Value::Bool(false))) == Some(true) {
            return Err(SubmitError::Refused {
                error: event
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
                retry_after_ms: event.get("retry_after_ms").and_then(Value::as_u64),
            });
        }
        if event.get("event").and_then(Value::as_str) == Some("done") {
            let field = |key: &str| {
                event
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| SubmitError::Protocol(format!("done event missing {key}")))
            };
            return Ok(SubmitOutcome {
                points: field("points")?,
                hits: field("hits")?,
                misses: field("misses")?,
                failed: field("failed")?,
                evicted: field("evicted")?,
                archive: event
                    .get("archive")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SubmitError::Protocol("done event missing archive".into()))?
                    .to_string(),
            });
        }
    }
}

/// Submits a pre-rendered request line (see [`submit_request_line`]) and
/// streams response lines. `on_event` sees every event line (including
/// the final `done`); the parsed totals are returned. No retries — see
/// [`submit_with_retry`] for the resilient variant.
pub fn submit(
    port: u16,
    request: &str,
    on_event: impl FnMut(&str),
) -> Result<SubmitOutcome, String> {
    submit_once(port, request, on_event).map_err(|e| e.to_string())
}

/// How [`submit_with_retry`] behaves between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = behave like [`submit`]).
    pub retries: u32,
    /// Base backoff in milliseconds; each retry doubles it (capped and
    /// jittered by [`backoff_delay_ms`]).
    pub backoff_ms: u64,
    /// Seed of the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 5,
            backoff_ms: 50,
            seed: 0x5EED,
        }
    }
}

/// Resilient submission: retries retryable failures (`overloaded` /
/// `draining` refusals and transport loss) with deterministic
/// exponential backoff and jitter, honouring the daemon's
/// `retry_after_ms` hint as a floor. Safe because resubmission is
/// idempotent: completed points are journaled by the daemon and served
/// from cache on the next attempt.
pub fn submit_with_retry(
    port: u16,
    request: &str,
    policy: RetryPolicy,
    mut on_event: impl FnMut(&str),
) -> Result<SubmitOutcome, String> {
    let mut retry = 0u32;
    loop {
        match submit_once(port, request, &mut on_event) {
            Ok(outcome) => return Ok(outcome),
            Err(e) => {
                if !e.is_retryable() || retry >= policy.retries {
                    return Err(e.to_string());
                }
                retry += 1;
                let hint = match &e {
                    SubmitError::Refused { retry_after_ms, .. } => retry_after_ms.unwrap_or(0),
                    _ => 0,
                };
                let delay = backoff_delay_ms(policy.backoff_ms.max(1), retry, policy.seed);
                std::thread::sleep(Duration::from_millis(delay.max(hint)));
            }
        }
    }
}
