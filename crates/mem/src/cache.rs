//! Set-associative cache model with pluggable replacement.
//!
//! One [`Cache`] instance models one physical cache array (an L1I, L1D, or
//! L2). It tracks, for every resident line, its tag and MESI state; timing
//! is *not* decided here — the [`hierarchy`](crate::hierarchy) walks the
//! levels and charges Table II latencies.

use crate::addr::LineAddr;
use crate::mesi::MesiState;
use core::fmt;
use osoffload_sim::{Counter, Rng64};

/// Geometric description of one cache array.
///
/// # Examples
///
/// ```
/// use osoffload_mem::CacheGeometry;
///
/// // Table II: L1 32 KB / 2-way, L2 1 MB / 16-way, 64 B lines.
/// let l1 = CacheGeometry::paper_l1();
/// assert_eq!(l1.sets(), 32 * 1024 / 64 / 2);
/// let l2 = CacheGeometry::paper_l2();
/// assert_eq!(l2.capacity_lines(), 1024 * 1024 / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
}

/// Why a requested cache geometry cannot exist.
///
/// Returned by [`CacheGeometry::try_new`] so configuration layers (and
/// the fuzzer's repro loader) can reject degenerate geometries with a
/// typed error instead of panicking mid-construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Associativity of zero.
    ZeroWays,
    /// Size is not a positive multiple of `ways * line size`.
    NotLineMultiple {
        /// Requested total size in bytes.
        size_bytes: u64,
        /// Requested associativity.
        ways: u32,
    },
    /// The implied set count is not a power of two, so addresses cannot
    /// be indexed by masking.
    NonPowerOfTwoSets {
        /// The implied set count.
        sets: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroWays => {
                write!(f, "CacheGeometry: associativity must be positive")
            }
            GeometryError::NotLineMultiple { size_bytes, ways } => write!(
                f,
                "CacheGeometry: size must be a multiple of ways * line size \
                 ({size_bytes} B / {ways}-way)"
            ),
            GeometryError::NonPowerOfTwoSets { sets } => write!(
                f,
                "CacheGeometry: set count must be a power of two (got {sets})"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

impl CacheGeometry {
    /// Creates a geometry from total size and associativity, rejecting
    /// impossible shapes with a typed error.
    pub fn try_new(size_bytes: u64, ways: u32) -> Result<Self, GeometryError> {
        if ways == 0 {
            return Err(GeometryError::ZeroWays);
        }
        let lines = size_bytes / crate::addr::LINE_BYTES;
        if lines == 0 || !lines.is_multiple_of(ways as u64) {
            return Err(GeometryError::NotLineMultiple { size_bytes, ways });
        }
        let sets = lines / ways as u64;
        if !sets.is_power_of_two() {
            return Err(GeometryError::NonPowerOfTwoSets { sets });
        }
        Ok(CacheGeometry { size_bytes, ways })
    }

    /// Creates a geometry from total size and associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the implied set count is a non-zero power of two
    /// (so addresses can be indexed by masking); [`try_new`](Self::try_new)
    /// is the non-panicking variant.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        match Self::try_new(size_bytes, ways) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// The paper's L1 geometry: 32 KB, 2-way (Table II).
    pub fn paper_l1() -> Self {
        CacheGeometry::new(32 * 1024, 2)
    }

    /// The paper's L2 geometry: 1 MB, 16-way (Table II).
    pub fn paper_l2() -> Self {
        CacheGeometry::new(1024 * 1024, 16)
    }

    /// The half-size L2 used in the paper's §V-B academic comparison
    /// (two 512 KB L2s vs one 1 MB L2).
    pub fn half_l2() -> Self {
        CacheGeometry::new(512 * 1024, 16)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (lines per set).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / crate::addr::LINE_BYTES / self.ways as u64
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> u64 {
        self.size_bytes / crate::addr::LINE_BYTES
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} KB / {}-way", self.size_bytes / 1024, self.ways)
    }
}

/// Replacement policy for victim selection within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (timestamp based).
    #[default]
    Lru,
    /// Not-most-recently-used: evicts a random way that is not the MRU.
    Nmru,
    /// Uniform random victim.
    Random,
}

/// Aggregate counters for one cache array.
///
/// Hits and misses are recorded by the memory hierarchy when it consults
/// the cache; evictions and writebacks are recorded by the cache itself.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Lookups that found the line with sufficient permission.
    pub hits: Counter,
    /// Lookups that missed (or needed an upgrade).
    pub misses: Counter,
    /// Lines evicted to make room.
    pub evictions: Counter,
    /// Evicted lines that were dirty (writeback traffic).
    pub writebacks: Counter,
    /// Lines invalidated by coherence actions.
    pub invalidations: Counter,
}

impl CacheStats {
    /// Zeroes every counter (used when discarding warm-up statistics).
    pub fn reset(&mut self) {
        self.hits.take();
        self.misses.take();
        self.evictions.take();
        self.writebacks.take();
        self.invalidations.take();
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups have been recorded.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ({:.2}%) evict={} wb={} inval={}",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.evictions,
            self.writebacks,
            self.invalidations
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    state: MesiState,
    last_use: u64,
}

const EMPTY: Way = Way {
    tag: 0,
    state: MesiState::Invalid,
    last_use: 0,
};

/// A line that was evicted to make room for an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its state at eviction (dirty lines imply a writeback).
    pub state: MesiState,
}

/// A set-associative cache array tracking tags and MESI states.
///
/// # Examples
///
/// ```
/// use osoffload_mem::{Cache, CacheGeometry, ReplacementPolicy, LineAddr, MesiState};
///
/// let mut c = Cache::new(CacheGeometry::new(4096, 2), ReplacementPolicy::Lru, 7);
/// let l = LineAddr::new(0x40);
/// assert_eq!(c.state_of(l), None);
/// c.insert(l, MesiState::Exclusive);
/// assert_eq!(c.state_of(l), Some(MesiState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    ways: Vec<Way>,
    clock: u64,
    rng: Rng64,
    resident: u64,
    stats: CacheStats,
    // Cached from `geometry` so the per-access set lookup is a mask and a
    // multiply instead of re-deriving `sets()` (a runtime division by the
    // associativity) on every probe.
    set_mask: u64,
    ways_per_set: usize,
}

impl Cache {
    /// Creates an empty cache with the given geometry and replacement
    /// policy. `seed` drives the random policies deterministically.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy, seed: u64) -> Self {
        let total = geometry.capacity_lines() as usize;
        Cache {
            set_mask: geometry.sets() - 1,
            ways_per_set: geometry.ways as usize,
            geometry,
            policy,
            ways: vec![EMPTY; total],
            clock: 0,
            rng: Rng64::seed_from(seed),
            resident: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.resident
    }

    /// Mutable access to the statistics block (the hierarchy records hits
    /// and misses here so all counters live in one place).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Read access to the statistics block.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> core::ops::Range<usize> {
        let set = (line.as_u64() & self.set_mask) as usize;
        let w = self.ways_per_set;
        let start = set * w;
        start..start + w
    }

    /// Returns the MESI state of `line` if resident, without touching
    /// recency (a *probe*, as used by the directory).
    pub fn state_of(&self, line: LineAddr) -> Option<MesiState> {
        let range = self.set_range(line);
        self.ways[range]
            .iter()
            .find(|w| w.state != MesiState::Invalid && w.tag == line.as_u64())
            .map(|w| w.state)
    }

    /// Looks up `line`, updating recency on hit. Returns its state.
    pub fn touch(&mut self, line: LineAddr) -> Option<MesiState> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);
        let way = self.ways[range]
            .iter_mut()
            .find(|w| w.state != MesiState::Invalid && w.tag == line.as_u64())?;
        way.last_use = clock;
        Some(way.state)
    }

    /// Sets the state of a resident line (coherence transitions).
    ///
    /// Returns `true` if the line was present. Setting
    /// [`MesiState::Invalid`] removes the line (equivalent to
    /// [`invalidate`](Self::invalidate) without stats).
    pub fn set_state(&mut self, line: LineAddr, state: MesiState) -> bool {
        let range = self.set_range(line);
        let Some(way) = self.ways[range]
            .iter_mut()
            .find(|w| w.state != MesiState::Invalid && w.tag == line.as_u64())
        else {
            return false;
        };
        if state == MesiState::Invalid {
            way.state = MesiState::Invalid;
            self.resident -= 1;
        } else {
            way.state = state;
        }
        true
    }

    /// Removes `line` from the cache because of a coherence action,
    /// recording an invalidation. Returns its prior state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<MesiState> {
        let range = self.set_range(line);
        let way = self.ways[range]
            .iter_mut()
            .find(|w| w.state != MesiState::Invalid && w.tag == line.as_u64())?;
        let old = way.state;
        way.state = MesiState::Invalid;
        self.resident -= 1;
        self.stats.invalidations.incr();
        Some(old)
    }

    /// Inserts `line` with `state`, evicting a victim if the set is full.
    ///
    /// Returns the evicted line, if any. Inserting a line that is already
    /// resident just updates its state and recency.
    ///
    /// # Panics
    ///
    /// Panics if `state` is [`MesiState::Invalid`].
    pub fn insert(&mut self, line: LineAddr, state: MesiState) -> Option<Evicted> {
        assert!(
            state != MesiState::Invalid,
            "Cache::insert: cannot insert Invalid"
        );
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line);

        // Already resident: refresh in place.
        if let Some(way) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.state != MesiState::Invalid && w.tag == line.as_u64())
        {
            way.state = state;
            way.last_use = clock;
            return None;
        }

        // Free way available?
        if let Some(way) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.state == MesiState::Invalid)
        {
            *way = Way {
                tag: line.as_u64(),
                state,
                last_use: clock,
            };
            self.resident += 1;
            return None;
        }

        // Choose a victim.
        let ways_per_set = self.ways_per_set;
        let victim_offset = match self.policy {
            ReplacementPolicy::Lru => {
                let mut best = 0usize;
                let mut best_use = u64::MAX;
                for (i, w) in self.ways[range.clone()].iter().enumerate() {
                    if w.last_use < best_use {
                        best_use = w.last_use;
                        best = i;
                    }
                }
                best
            }
            ReplacementPolicy::Nmru => {
                let mut mru = 0usize;
                let mut mru_use = 0u64;
                for (i, w) in self.ways[range.clone()].iter().enumerate() {
                    if w.last_use >= mru_use {
                        mru_use = w.last_use;
                        mru = i;
                    }
                }
                if ways_per_set == 1 {
                    0
                } else {
                    let pick = self.rng.gen_range(0..(ways_per_set as u64 - 1)) as usize;
                    if pick >= mru {
                        pick + 1
                    } else {
                        pick
                    }
                }
            }
            ReplacementPolicy::Random => self.rng.gen_range(0..ways_per_set as u64) as usize,
        };

        let victim = &mut self.ways[range.start + victim_offset];
        let evicted = Evicted {
            line: LineAddr::new(victim.tag),
            state: victim.state,
        };
        self.stats.evictions.incr();
        if evicted.state.is_dirty() {
            self.stats.writebacks.incr();
        }
        *victim = Way {
            tag: line.as_u64(),
            state,
            last_use: clock,
        };
        Some(evicted)
    }

    /// Invalidates every resident line (used when modelling context loss).
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            w.state = MesiState::Invalid;
        }
        self.resident = 0;
    }

    /// Iterates over all resident lines as `(line, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, MesiState)> + '_ {
        self.ways
            .iter()
            .filter(|w| w.state != MesiState::Invalid)
            .map(|w| (LineAddr::new(w.tag), w.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways, 64 B lines => 512 B.
        Cache::new(CacheGeometry::new(512, 2), ReplacementPolicy::Lru, 1)
    }

    /// Lines that map to set 0 of the tiny cache.
    fn set0_line(i: u64) -> LineAddr {
        LineAddr::new(i * 4)
    }

    #[test]
    fn geometry_paper_values() {
        let l1 = CacheGeometry::paper_l1();
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.ways(), 2);
        let l2 = CacheGeometry::paper_l2();
        assert_eq!(l2.sets(), 1024);
        assert_eq!(l2.ways(), 16);
        assert_eq!(CacheGeometry::half_l2().capacity_lines(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two_sets() {
        CacheGeometry::new(192, 1);
    }

    #[test]
    fn insert_then_lookup() {
        let mut c = tiny();
        let l = LineAddr::new(5);
        assert_eq!(c.touch(l), None);
        assert_eq!(c.insert(l, MesiState::Shared), None);
        assert_eq!(c.touch(l), Some(MesiState::Shared));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        let l = LineAddr::new(5);
        c.insert(l, MesiState::Shared);
        assert_eq!(c.insert(l, MesiState::Modified), None);
        assert_eq!(c.state_of(l), Some(MesiState::Modified));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        let (a, b, d) = (set0_line(0), set0_line(1), set0_line(2));
        c.insert(a, MesiState::Exclusive);
        c.insert(b, MesiState::Exclusive);
        c.touch(a); // b is now LRU
        let ev = c.insert(d, MesiState::Exclusive).expect("set full");
        assert_eq!(ev.line, b);
        assert!(c.state_of(a).is_some());
        assert!(c.state_of(b).is_none());
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.insert(set0_line(0), MesiState::Modified);
        c.insert(set0_line(1), MesiState::Exclusive);
        let ev = c.insert(set0_line(2), MesiState::Shared).expect("evicts");
        assert_eq!(ev.state, MesiState::Modified);
        assert_eq!(c.stats().writebacks.get(), 1);
        assert_eq!(c.stats().evictions.get(), 1);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = tiny();
        let l = LineAddr::new(9);
        c.insert(l, MesiState::Shared);
        assert_eq!(c.invalidate(l), Some(MesiState::Shared));
        assert_eq!(c.state_of(l), None);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().invalidations.get(), 1);
        assert_eq!(c.invalidate(l), None);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = tiny();
        let l = LineAddr::new(3);
        assert!(!c.set_state(l, MesiState::Shared));
        c.insert(l, MesiState::Exclusive);
        assert!(c.set_state(l, MesiState::Shared));
        assert_eq!(c.state_of(l), Some(MesiState::Shared));
        assert!(c.set_state(l, MesiState::Invalid));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for i in 0..8 {
            c.insert(LineAddr::new(i), MesiState::Shared);
        }
        assert!(c.resident_lines() > 0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn random_policy_stays_within_set() {
        let mut c = Cache::new(CacheGeometry::new(512, 2), ReplacementPolicy::Random, 3);
        c.insert(set0_line(0), MesiState::Exclusive);
        c.insert(set0_line(1), MesiState::Exclusive);
        let ev = c
            .insert(set0_line(2), MesiState::Exclusive)
            .expect("evicts");
        assert!(ev.line == set0_line(0) || ev.line == set0_line(1));
    }

    #[test]
    fn nmru_never_evicts_most_recent() {
        let mut c = Cache::new(CacheGeometry::new(512, 4), ReplacementPolicy::Nmru, 3);
        let lines: Vec<LineAddr> = (0..4).map(|i| LineAddr::new(i * 2)).collect();
        for &l in &lines {
            c.insert(l, MesiState::Exclusive);
        }
        // lines[3] is MRU; over many evictions it must survive each time we
        // re-touch it just before inserting.
        for i in 0..50u64 {
            c.touch(lines[3]);
            let ev = c
                .insert(LineAddr::new(100 + i * 2), MesiState::Exclusive)
                .unwrap();
            assert_ne!(ev.line, lines[3]);
            c.invalidate(LineAddr::new(100 + i * 2));
            // Restore any victim from our watch set so the set stays full.
            if let Some(pos) = lines.iter().position(|&l| l == ev.line) {
                c.insert(lines[pos], MesiState::Exclusive);
            }
        }
    }

    #[test]
    fn iter_reports_resident_lines() {
        let mut c = tiny();
        c.insert(LineAddr::new(1), MesiState::Shared);
        c.insert(LineAddr::new(2), MesiState::Modified);
        let mut lines: Vec<(LineAddr, MesiState)> = c.iter().collect();
        lines.sort_by_key(|(l, _)| l.as_u64());
        assert_eq!(
            lines,
            vec![
                (LineAddr::new(1), MesiState::Shared),
                (LineAddr::new(2), MesiState::Modified)
            ]
        );
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits.add(3);
        s.misses.add(1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot insert Invalid")]
    fn insert_invalid_panics() {
        tiny().insert(LineAddr::new(1), MesiState::Invalid);
    }
}
