//! Memory-hierarchy substrate for the `osoffload` CMP simulator.
//!
//! The paper's evaluation (Table II) models per-core 32 KB 2-way L1
//! instruction and data caches, per-core 1 MB 16-way L2 caches kept
//! coherent by a directory-based MESI protocol over a point-to-point
//! interconnect, and a 350-cycle uniform-latency main memory. This crate
//! implements all of it:
//!
//! * [`addr`] — physical address / cache line / core identifier newtypes;
//! * [`cache`] — set-associative caches with pluggable replacement;
//! * [`mesi`] — the MESI line-state machine;
//! * [`directory`] — a full-map coherence directory tracking every cached
//!   line, with cache-to-cache transfers and invalidations costed
//!   independently (as §IV requires);
//! * [`interconnect`] — hop-latency model between cores, directory, DRAM;
//! * [`dram`] — uniform-latency main memory;
//! * [`hierarchy`] — [`MemorySystem`], the facade the core models call for
//!   every load, store, and instruction fetch.
//!
//! # Examples
//!
//! ```
//! use osoffload_mem::{MemorySystem, MemConfig, Access, CoreId, Address};
//!
//! let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
//! let core = CoreId::new(0);
//! let a = Address::new(0x4000);
//! let miss = mem.access(core, Access::read(a));
//! let hit = mem.access(core, Access::read(a));
//! assert!(miss.latency > hit.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod directory;
pub mod dram;
pub mod hierarchy;
pub mod interconnect;
pub mod mesi;

#[cfg(test)]
mod proptests;

pub use addr::{Address, CoreId, LineAddr, LINE_BYTES};
pub use cache::{Cache, CacheGeometry, CacheStats, GeometryError, ReplacementPolicy};
pub use directory::{CoreSet, Directory, DirectoryStats};
pub use dram::Dram;
pub use hierarchy::{
    Access, AccessKind, AccessOutcome, HitLevel, MemConfig, MemSnapshot, MemorySystem,
};
pub use interconnect::Interconnect;
pub use mesi::MesiState;
