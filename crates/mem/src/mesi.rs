//! The MESI cache-line state machine.
//!
//! The paper keeps the user core's and OS core's private L2 caches
//! coherent with a directory-based MESI protocol (Table II). This module
//! defines the per-line state and its legal transitions; the
//! [`Directory`](crate::directory::Directory) enforces the global
//! invariants (at most one M/E copy, S copies never coexist with M/E).

use core::fmt;

/// The coherence state of one cache line in one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: one or more caches hold clean copies.
    Shared,
    /// Invalid: the line is not present (tombstone state).
    Invalid,
}

impl MesiState {
    /// Whether a store may proceed without a coherence transaction.
    #[inline]
    pub fn can_write(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether a load may proceed without a coherence transaction.
    #[inline]
    pub fn can_read(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether the line must be written back when evicted or invalidated.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// State after this cache observes a remote read of the line.
    ///
    /// M and E downgrade to S (supplying the data); S and I are unchanged.
    #[inline]
    pub fn on_remote_read(self) -> MesiState {
        match self {
            MesiState::Modified | MesiState::Exclusive => MesiState::Shared,
            s => s,
        }
    }

    /// State after this cache observes a remote write (invalidation).
    #[inline]
    pub fn on_remote_write(self) -> MesiState {
        MesiState::Invalid
    }

    /// State after a local store completes (requires prior ownership or an
    /// upgrade transaction; the directory grants it).
    #[inline]
    pub fn on_local_write(self) -> MesiState {
        MesiState::Modified
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MesiState::*;

    #[test]
    fn write_permission_only_in_m_and_e() {
        assert!(Modified.can_write());
        assert!(Exclusive.can_write());
        assert!(!Shared.can_write());
        assert!(!Invalid.can_write());
    }

    #[test]
    fn read_permission_everywhere_but_invalid() {
        assert!(Modified.can_read());
        assert!(Exclusive.can_read());
        assert!(Shared.can_read());
        assert!(!Invalid.can_read());
    }

    #[test]
    fn only_modified_is_dirty() {
        assert!(Modified.is_dirty());
        assert!(!Exclusive.is_dirty());
        assert!(!Shared.is_dirty());
        assert!(!Invalid.is_dirty());
    }

    #[test]
    fn remote_read_downgrades_owners() {
        assert_eq!(Modified.on_remote_read(), Shared);
        assert_eq!(Exclusive.on_remote_read(), Shared);
        assert_eq!(Shared.on_remote_read(), Shared);
        assert_eq!(Invalid.on_remote_read(), Invalid);
    }

    #[test]
    fn remote_write_invalidates_everything() {
        for s in [Modified, Exclusive, Shared, Invalid] {
            assert_eq!(s.on_remote_write(), Invalid);
        }
    }

    #[test]
    fn local_write_produces_modified() {
        for s in [Modified, Exclusive, Shared, Invalid] {
            assert_eq!(s.on_local_write(), Modified);
        }
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(Modified.to_string(), "M");
        assert_eq!(Exclusive.to_string(), "E");
        assert_eq!(Shared.to_string(), "S");
        assert_eq!(Invalid.to_string(), "I");
    }
}
