//! Property-style tests for the memory hierarchy, driven by seeded
//! [`Rng64`] case generation (dependency-free, bit-reproducible).

use crate::addr::{Address, CoreId, LineAddr};
use crate::cache::{Cache, CacheGeometry, ReplacementPolicy};
use crate::directory::Directory;
use crate::hierarchy::{Access, MemConfig, MemorySystem};
use crate::mesi::MesiState;
use osoffload_sim::Rng64;
use std::collections::HashSet;

const CASES: u64 = 64;

fn any_state(g: &mut Rng64) -> MesiState {
    match g.gen_range(0..3) {
        0 => MesiState::Modified,
        1 => MesiState::Exclusive,
        _ => MesiState::Shared,
    }
}

/// A cache never holds more lines than its capacity, never holds the
/// same tag twice, and every resident line maps to its correct set.
#[test]
fn cache_structural_invariants() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xCAC4_0000 + case);
        let mut c = Cache::new(CacheGeometry::new(1024, 2), ReplacementPolicy::Lru, 9);
        for _ in 0..g.gen_range(1..500) {
            let line = LineAddr::new(g.gen_range(0..128));
            let state = any_state(&mut g);
            if g.gen_bool(0.5) {
                c.invalidate(line);
            } else {
                c.insert(line, state);
            }
            assert!(c.resident_lines() <= c.geometry().capacity_lines());
            let mut seen = HashSet::new();
            for (l, s) in c.iter() {
                assert!(s != MesiState::Invalid);
                assert!(seen.insert(l), "duplicate tag {l}");
            }
            assert_eq!(c.resident_lines() as usize, c.iter().count());
        }
    }
}

/// Whatever was inserted most recently is always still resident (the
/// victim is never the incoming line).
#[test]
fn cache_never_evicts_the_incoming_line() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xCAC4_1000 + case);
        let policy = match g.gen_range(0..3) {
            0 => ReplacementPolicy::Lru,
            1 => ReplacementPolicy::Nmru,
            _ => ReplacementPolicy::Random,
        };
        let mut c = Cache::new(CacheGeometry::new(512, 2), policy, 5);
        for _ in 0..g.gen_range(1..200) {
            let line = LineAddr::new(g.gen_range(0..64));
            c.insert(line, MesiState::Shared);
            assert!(
                c.state_of(line).is_some(),
                "{line} missing right after insert"
            );
        }
    }
}

/// Directory invariants (single dirty owner, owner is a sharer) hold
/// under arbitrary miss/upgrade/evict interleavings.
#[test]
fn directory_invariants_hold() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xD14E_0000 + case);
        let mut dir = Directory::new();
        for _ in 0..g.gen_range(1..400) {
            let op = g.gen_range(0..3);
            let core = CoreId::new(g.gen_range(0..4) as usize);
            let line = LineAddr::new(g.gen_range(0..32));
            match op {
                0 => {
                    dir.read_miss(line, core);
                }
                1 => {
                    dir.write_miss(line, core);
                }
                _ => {
                    dir.evicted(line, core);
                }
            }
            dir.check_invariants();
        }
    }
}

/// Write-then-read returns the data path through coherence: after any
/// traffic, a core that just wrote a line reads it at L1 speed.
#[test]
fn writer_reads_its_own_data_fast() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xF057_0000 + case);
        let mut cfg = MemConfig::paper_baseline(2);
        cfg.l1d = CacheGeometry::new(2048, 2);
        cfg.l2 = CacheGeometry::new(8192, 4);
        let mut mem = MemorySystem::new(cfg);
        for _ in 0..g.gen_range(0..100) {
            let w = g.gen_range(0..2);
            let core = g.gen_range(0..2) as usize;
            let addr = Address::new(g.gen_range(0..32) * 64);
            let a = if w == 1 {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            mem.access(CoreId::new(core), a);
        }
        let addr = Address::new(g.gen_range(0..32) * 64);
        mem.access(CoreId::new(0), Access::write(addr));
        let read = mem.access(CoreId::new(0), Access::read(addr));
        assert_eq!(read.latency.as_u64(), 1, "own dirty line must be an L1 hit");
        mem.check_invariants();
    }
}
