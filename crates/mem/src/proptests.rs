//! Property-based tests for the memory hierarchy.

use crate::addr::{Address, CoreId, LineAddr};
use crate::cache::{Cache, CacheGeometry, ReplacementPolicy};
use crate::directory::Directory;
use crate::hierarchy::{Access, MemConfig, MemorySystem};
use crate::mesi::MesiState;
use proptest::prelude::*;
use std::collections::HashSet;

fn any_state() -> impl Strategy<Value = MesiState> {
    prop_oneof![
        Just(MesiState::Modified),
        Just(MesiState::Exclusive),
        Just(MesiState::Shared),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never holds more lines than its capacity, never holds the
    /// same tag twice, and every resident line maps to its correct set.
    #[test]
    fn cache_structural_invariants(
        ops in prop::collection::vec((0u64..128, any_state(), prop::bool::ANY), 1..500)
    ) {
        let mut c = Cache::new(CacheGeometry::new(1024, 2), ReplacementPolicy::Lru, 9);
        for (line, state, invalidate) in ops {
            let line = LineAddr::new(line);
            if invalidate {
                c.invalidate(line);
            } else {
                c.insert(line, state);
            }
            prop_assert!(c.resident_lines() <= c.geometry().capacity_lines());
            let mut seen = HashSet::new();
            for (l, s) in c.iter() {
                prop_assert!(s != MesiState::Invalid);
                prop_assert!(seen.insert(l), "duplicate tag {l}");
            }
            prop_assert_eq!(c.resident_lines() as usize, c.iter().count());
        }
    }

    /// Whatever was inserted most recently is always still resident
    /// (the victim is never the incoming line).
    #[test]
    fn cache_never_evicts_the_incoming_line(
        lines in prop::collection::vec(0u64..64, 1..200),
        policy in prop_oneof![
            Just(ReplacementPolicy::Lru),
            Just(ReplacementPolicy::Nmru),
            Just(ReplacementPolicy::Random)
        ],
    ) {
        let mut c = Cache::new(CacheGeometry::new(512, 2), policy, 5);
        for line in lines {
            let line = LineAddr::new(line);
            c.insert(line, MesiState::Shared);
            prop_assert!(c.state_of(line).is_some(), "{line} missing right after insert");
        }
    }

    /// Directory invariants (single dirty owner, owner is a sharer) hold
    /// under arbitrary miss/upgrade/evict interleavings.
    #[test]
    fn directory_invariants_hold(
        ops in prop::collection::vec((0usize..3, 0usize..4, 0u64..32), 1..400)
    ) {
        let mut dir = Directory::new();
        for (op, core, line) in ops {
            let core = CoreId::new(core);
            let line = LineAddr::new(line);
            match op {
                0 => { dir.read_miss(line, core); }
                1 => { dir.write_miss(line, core); }
                _ => { dir.evicted(line, core); }
            }
            dir.check_invariants();
        }
    }

    /// Write-then-read returns the data path through coherence: after
    /// any traffic, a core that just wrote a line reads it at L1 speed.
    #[test]
    fn writer_reads_its_own_data_fast(
        noise in prop::collection::vec((0u64..2, 0u64..2, 0u64..32), 0..100),
        target in 0u64..32,
    ) {
        let mut cfg = MemConfig::paper_baseline(2);
        cfg.l1d = CacheGeometry::new(2048, 2);
        cfg.l2 = CacheGeometry::new(8192, 4);
        let mut mem = MemorySystem::new(cfg);
        for (w, core, line) in noise {
            let addr = Address::new(line * 64);
            let a = if w == 1 { Access::write(addr) } else { Access::read(addr) };
            mem.access(CoreId::new(core as usize), a);
        }
        let addr = Address::new(target * 64);
        mem.access(CoreId::new(0), Access::write(addr));
        let read = mem.access(CoreId::new(0), Access::read(addr));
        prop_assert_eq!(read.latency.as_u64(), 1, "own dirty line must be an L1 hit");
        mem.check_invariants();
    }
}
