//! Point-to-point interconnect latency model.
//!
//! The paper models "a simple point-to-point interconnect fabric" between
//! the private L2s, the directory, and memory (§IV), with directory
//! lookup, cache-to-cache transfer, and invalidation costed independently.
//! This module owns those three cost constants and the per-message-class
//! traffic counters.

use core::fmt;
use osoffload_sim::{Counter, Cycle};

/// Latency parameters of the coherence fabric, in core cycles.
///
/// Defaults are derived from CACTI 6.0-style wire estimates at the
/// paper's 3.5 GHz / 32 nm design point: a directory tag lookup costs
/// about as much as an L2 tag access, and a line transfer between two
/// adjacent private L2s costs a couple of router traversals plus the
/// remote L2 read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interconnect {
    /// Cost of consulting the directory on an L2 miss or upgrade.
    pub directory_lookup: u64,
    /// Cost of moving one line from a remote L2 to the requester.
    pub cache_to_cache: u64,
    /// Cost of an invalidation round (sent in parallel, acknowledged).
    pub invalidation: u64,
    c2c_transfers: Counter,
    invalidation_rounds: Counter,
    directory_messages: Counter,
}

impl Interconnect {
    /// Creates an interconnect with explicit latencies.
    pub fn new(directory_lookup: u64, cache_to_cache: u64, invalidation: u64) -> Self {
        Interconnect {
            directory_lookup,
            cache_to_cache,
            invalidation,
            c2c_transfers: Counter::new(),
            invalidation_rounds: Counter::new(),
            directory_messages: Counter::new(),
        }
    }

    /// The default design point used throughout the evaluation.
    pub fn paper_default() -> Self {
        Interconnect::new(12, 40, 20)
    }

    /// Charges a directory consultation.
    #[inline]
    pub fn charge_directory(&mut self) -> Cycle {
        self.directory_messages.incr();
        Cycle::new(self.directory_lookup)
    }

    /// Charges a cache-to-cache line transfer.
    #[inline]
    pub fn charge_c2c(&mut self) -> Cycle {
        self.c2c_transfers.incr();
        Cycle::new(self.cache_to_cache)
    }

    /// Charges one invalidation round covering `targets` remote copies.
    ///
    /// Invalidations are sent in parallel; one round costs a fixed latency
    /// regardless of fan-out, but each message is counted for traffic
    /// statistics. A round with zero targets is free.
    #[inline]
    pub fn charge_invalidation(&mut self, targets: usize) -> Cycle {
        if targets == 0 {
            return Cycle::ZERO;
        }
        self.invalidation_rounds.add(1);
        Cycle::new(self.invalidation)
    }

    /// Total cache-to-cache transfers charged.
    pub fn c2c_transfers(&self) -> u64 {
        self.c2c_transfers.get()
    }

    /// Total invalidation rounds charged.
    pub fn invalidation_rounds(&self) -> u64 {
        self.invalidation_rounds.get()
    }

    /// Total directory consultations charged.
    pub fn directory_messages(&self) -> u64 {
        self.directory_messages.get()
    }

    /// Zeroes the traffic counters (used when discarding warm-up
    /// statistics); latencies are unchanged.
    pub fn reset_stats(&mut self) {
        self.c2c_transfers.take();
        self.invalidation_rounds.take();
        self.directory_messages.take();
    }
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect::paper_default()
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dir={}cyc c2c={}cyc inval={}cyc (msgs: dir={} c2c={} inval={})",
            self.directory_lookup,
            self.cache_to_cache,
            self.invalidation,
            self.directory_messages.get(),
            self.c2c_transfers.get(),
            self.invalidation_rounds.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_return_configured_latency() {
        let mut ic = Interconnect::new(10, 30, 15);
        assert_eq!(ic.charge_directory(), Cycle::new(10));
        assert_eq!(ic.charge_c2c(), Cycle::new(30));
        assert_eq!(ic.charge_invalidation(3), Cycle::new(15));
    }

    #[test]
    fn empty_invalidation_round_is_free() {
        let mut ic = Interconnect::paper_default();
        assert_eq!(ic.charge_invalidation(0), Cycle::ZERO);
        assert_eq!(ic.invalidation_rounds(), 0);
    }

    #[test]
    fn traffic_counters_track_charges() {
        let mut ic = Interconnect::paper_default();
        ic.charge_directory();
        ic.charge_directory();
        ic.charge_c2c();
        ic.charge_invalidation(2);
        assert_eq!(ic.directory_messages(), 2);
        assert_eq!(ic.c2c_transfers(), 1);
        assert_eq!(ic.invalidation_rounds(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Interconnect::paper_default().to_string().is_empty());
    }
}
