//! Uniform-latency main memory.
//!
//! The paper uses a flat 350-cycle memory latency "based on real machine
//! timings from Brown and Tullsen" (Table II / §IV). Banking and row
//! buffers are deliberately out of scope — the evaluation isolates cache
//! and coherence effects.

use core::fmt;
use osoffload_sim::{Counter, Cycle};

/// Main memory with a single uniform access latency.
///
/// # Examples
///
/// ```
/// use osoffload_mem::Dram;
/// use osoffload_sim::Cycle;
///
/// let mut dram = Dram::paper_default();
/// assert_eq!(dram.charge_access(), Cycle::new(350));
/// assert_eq!(dram.accesses(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dram {
    latency: u64,
    accesses: Counter,
    writebacks: Counter,
}

impl Dram {
    /// Creates a memory with the given access latency in cycles.
    pub fn new(latency: u64) -> Self {
        Dram {
            latency,
            accesses: Counter::new(),
            writebacks: Counter::new(),
        }
    }

    /// The paper's 350-cycle design point.
    pub fn paper_default() -> Self {
        Dram::new(350)
    }

    /// Configured access latency.
    pub fn latency(&self) -> Cycle {
        Cycle::new(self.latency)
    }

    /// Charges one demand access and returns its latency.
    #[inline]
    pub fn charge_access(&mut self) -> Cycle {
        self.accesses.incr();
        Cycle::new(self.latency)
    }

    /// Records a writeback (off the critical path: no latency returned).
    #[inline]
    pub fn record_writeback(&mut self) {
        self.writebacks.incr();
    }

    /// Demand accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Writebacks so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks.get()
    }

    /// Zeroes the access counters (used when discarding warm-up
    /// statistics).
    pub fn reset_stats(&mut self) {
        self.accesses.take();
        self.writebacks.take();
    }
}

impl Default for Dram {
    fn default() -> Self {
        Dram::paper_default()
    }
}

impl fmt::Display for Dram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}cyc uniform ({} reads, {} writebacks)",
            self.latency,
            self.accesses.get(),
            self.writebacks.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_350_cycles() {
        assert_eq!(Dram::paper_default().latency(), Cycle::new(350));
    }

    #[test]
    fn accesses_and_writebacks_count_independently() {
        let mut d = Dram::new(100);
        d.charge_access();
        d.charge_access();
        d.record_writeback();
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.writebacks(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Dram::paper_default().to_string().is_empty());
    }
}
