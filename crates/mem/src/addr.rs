//! Address and identifier newtypes.
//!
//! All simulator addresses are byte-granular physical addresses
//! ([`Address`]); the coherence machinery works on 64-byte cache lines
//! ([`LineAddr`]), matching the paper's Table II line size.

use core::fmt;

/// Cache line size in bytes (Table II: 64 B for both L1 and L2).
pub const LINE_BYTES: u64 = 64;

const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();

/// A byte-granular physical address in the simulated machine.
///
/// # Examples
///
/// ```
/// use osoffload_mem::{Address, LINE_BYTES};
///
/// let a = Address::new(0x1234);
/// assert_eq!(a.line().base().as_u64() % LINE_BYTES, 0);
/// assert_eq!(a.offset_in_line(), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(a: u64) -> Self {
        Address(a)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset within the containing line.
    #[inline]
    pub const fn offset_in_line(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Returns the address `bytes` later.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Address {
        Address(self.0 + bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl From<u64> for Address {
    #[inline]
    fn from(a: u64) -> Address {
        Address(a)
    }
}

/// A cache-line-granular address (byte address divided by [`LINE_BYTES`]).
///
/// # Examples
///
/// ```
/// use osoffload_mem::{Address, LineAddr};
///
/// let l = Address::new(0x1000).line();
/// assert_eq!(l, LineAddr::new(0x1000 / 64));
/// assert_eq!(l.base(), Address::new(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(l: u64) -> Self {
        LineAddr(l)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte in the line.
    #[inline]
    pub const fn base(self) -> Address {
        Address(self.0 << LINE_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// Identifies one core (and its private cache hierarchy) in the CMP.
///
/// # Examples
///
/// ```
/// use osoffload_mem::CoreId;
///
/// let os_core = CoreId::new(1);
/// assert_eq!(os_core.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds 63 (the directory uses a 64-bit sharer
    /// bitmask; the paper's systems have at most a handful of cores).
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(index < 64, "CoreId: at most 64 cores supported");
        CoreId(index as u8)
    }

    /// Returns the core's index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the single-bit mask for this core in a sharer set.
    #[inline]
    pub const fn bit(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_round_trips() {
        for raw in [0u64, 1, 63, 64, 65, 0x1fff, 0xdead_beef] {
            let a = Address::new(raw);
            let l = a.line();
            assert_eq!(l.base().as_u64(), raw / LINE_BYTES * LINE_BYTES);
            assert_eq!(l.base().as_u64() + a.offset_in_line(), raw);
        }
    }

    #[test]
    fn addresses_in_same_line_share_line_addr() {
        let base = Address::new(0x8000);
        for off in 0..LINE_BYTES {
            assert_eq!(base.offset(off).line(), base.line());
        }
        assert_ne!(base.offset(LINE_BYTES).line(), base.line());
    }

    #[test]
    fn core_id_bits_are_disjoint() {
        let bits: Vec<u64> = (0..8).map(|i| CoreId::new(i).bit()).collect();
        let mut acc = 0u64;
        for b in bits {
            assert_eq!(acc & b, 0);
            acc |= b;
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn core_id_overflow_panics() {
        CoreId::new(64);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!Address::new(0).to_string().is_empty());
        assert!(!LineAddr::new(0).to_string().is_empty());
        assert_eq!(CoreId::new(3).to_string(), "core3");
    }
}
