//! The assembled memory system: per-core L1I/L1D/L2, a shared full-map
//! MESI directory, the point-to-point interconnect and DRAM.
//!
//! [`MemorySystem::access`] is the single entry point the core models use
//! for every instruction fetch, load, and store. It walks the hierarchy,
//! performs all coherence actions, updates every statistic, and returns
//! the access latency — the quantity the timing model adds to the issuing
//! thread's clock.

use crate::addr::{Address, CoreId};
use crate::cache::{Cache, CacheGeometry, CacheStats, ReplacementPolicy};
use crate::directory::{DataSource, Directory};
use crate::dram::Dram;
use crate::interconnect::Interconnect;
use crate::mesi::MesiState;
use core::fmt;
use osoffload_sim::Cycle;

/// What an access is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I side).
    Fetch,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

/// One memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address accessed.
    pub addr: Address,
    /// Fetch / read / write.
    pub kind: AccessKind,
}

impl Access {
    /// A data load at `addr`.
    pub fn read(addr: Address) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A data store at `addr`.
    pub fn write(addr: Address) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// An instruction fetch at `addr`.
    pub fn fetch(addr: Address) -> Self {
        Access {
            addr,
            kind: AccessKind::Fetch,
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Satisfied by the core's L1.
    L1,
    /// Satisfied by the core's private L2.
    L2,
    /// Satisfied by a cache-to-cache transfer from another core's L2.
    RemoteCache,
    /// Satisfied by DRAM.
    Memory,
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency on the critical path.
    pub latency: Cycle,
    /// Where the data came from.
    pub level: HitLevel,
    /// Whether a coherence permission upgrade (S→M) was required on top
    /// of a data hit.
    pub upgraded: bool,
}

/// Configuration of the whole memory system.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Number of cores (each with private L1I/L1D/L2).
    pub cores: usize,
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Private L2 geometry.
    pub l2: CacheGeometry,
    /// Replacement policy used by every cache.
    pub replacement: ReplacementPolicy,
    /// L1 hit latency in cycles (Table II: 1).
    pub l1_latency: u64,
    /// L2 hit latency in cycles (Table II: 12).
    pub l2_latency: u64,
    /// Coherence fabric latencies.
    pub interconnect: Interconnect,
    /// DRAM latency in cycles (Table II: 350).
    pub dram_latency: u64,
    /// Seed for replacement randomness.
    pub seed: u64,
}

impl MemConfig {
    /// The paper's Table II design point with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds 64.
    pub fn paper_baseline(cores: usize) -> Self {
        assert!(
            (1..=64).contains(&cores),
            "MemConfig: cores must be in 1..=64"
        );
        MemConfig {
            cores,
            l1i: CacheGeometry::paper_l1(),
            l1d: CacheGeometry::paper_l1(),
            l2: CacheGeometry::paper_l2(),
            replacement: ReplacementPolicy::Lru,
            l1_latency: 1,
            l2_latency: 12,
            interconnect: Interconnect::paper_default(),
            dram_latency: 350,
            seed: 0x05ff_10ad,
        }
    }

    /// The §V-B academic comparison point: off-loading with two *half
    /// size* (512 KB) L2s.
    pub fn half_l2_variant(cores: usize) -> Self {
        MemConfig {
            l2: CacheGeometry::half_l2(),
            ..MemConfig::paper_baseline(cores)
        }
    }
}

struct CoreCaches {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    /// Line (and its MESI state) the L1I served most recently. A repeat
    /// fetch of this line short-circuits the full lookup; see
    /// [`MemorySystem::access`].
    memo_i: Option<(crate::addr::LineAddr, MesiState)>,
    /// Same memo for the L1D.
    memo_d: Option<(crate::addr::LineAddr, MesiState)>,
}

/// Snapshot of the counters a feedback mechanism needs, cheap to copy.
///
/// The dynamic-`N` tuner (§III-B) compares mean L2 hit rate across epochs;
/// it takes a snapshot at each boundary and diffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    /// Sum of L2 hits across all cores.
    pub l2_hits: u64,
    /// Sum of L2 misses across all cores.
    pub l2_misses: u64,
    /// Cache-to-cache transfers.
    pub c2c_transfers: u64,
    /// Invalidation rounds.
    pub invalidation_rounds: u64,
    /// DRAM demand accesses.
    pub dram_accesses: u64,
}

impl MemSnapshot {
    /// L2 hit rate over the interval `earlier..self`; 0 for an empty
    /// interval.
    pub fn l2_hit_rate_since(&self, earlier: &MemSnapshot) -> f64 {
        let hits = self.l2_hits - earlier.l2_hits;
        let total = hits + (self.l2_misses - earlier.l2_misses);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The complete memory system of the simulated CMP.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct MemorySystem {
    config: MemConfig,
    cores: Vec<CoreCaches>,
    directory: Directory,
    interconnect: Interconnect,
    dram: Dram,
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("cores", &self.cores.len())
            .field("l2", &self.config.l2)
            .field("directory", &self.directory.tracked_lines())
            .finish()
    }
}

impl MemorySystem {
    /// Builds an empty (cold) memory system.
    pub fn new(config: MemConfig) -> Self {
        let mut seed = config.seed;
        let cores = (0..config.cores)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                CoreCaches {
                    l1i: Cache::new(config.l1i, config.replacement, seed ^ 0x11),
                    l1d: Cache::new(config.l1d, config.replacement, seed ^ 0x22),
                    l2: Cache::new(config.l2, config.replacement, seed ^ 0x33),
                    memo_i: None,
                    memo_d: None,
                }
            })
            .collect();
        // Pre-size the directory for every line the L2s can hold, so the
        // map never grows (and thus never allocates) during simulation.
        let tracked = config.l2.capacity_lines() as usize * config.cores;
        MemorySystem {
            interconnect: config.interconnect,
            dram: Dram::new(config.dram_latency),
            config,
            cores,
            directory: Directory::with_capacity(tracked),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Performs one memory access on behalf of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    ///
    /// The repeat-hit memo check is inlineable so back-to-back accesses
    /// to the same line resolve in the caller; the full hierarchy walk
    /// stays out of line.
    #[inline]
    pub fn access(&mut self, core: CoreId, access: Access) -> AccessOutcome {
        let line = access.addr.line();
        let kind = access.kind;

        // ---- Repeat-hit fast path ----
        // If this L1 served exactly this line last time and no permission
        // work is needed (writes require an M copy), the access is a plain
        // hit. Skipping the LRU touch is order-preserving: the memoized
        // line is already the cache's most recently used, and repeat hits
        // cannot change any line's relative recency.
        {
            let caches = &mut self.cores[core.index()];
            let memo = match kind {
                AccessKind::Fetch => caches.memo_i,
                AccessKind::Read | AccessKind::Write => caches.memo_d,
            };
            if let Some((mline, mstate)) = memo {
                if mline == line && (kind != AccessKind::Write || mstate == MesiState::Modified) {
                    let l1 = match kind {
                        AccessKind::Fetch => &mut caches.l1i,
                        AccessKind::Read | AccessKind::Write => &mut caches.l1d,
                    };
                    l1.stats_mut().hits.incr();
                    return AccessOutcome {
                        latency: Cycle::new(self.config.l1_latency),
                        level: HitLevel::L1,
                        upgraded: false,
                    };
                }
            }
        }
        self.access_walk(core, line, kind)
    }

    /// Memo-miss tail of [`MemorySystem::access`]: the L1 → L2 →
    /// directory walk.
    #[inline(never)]
    fn access_walk(
        &mut self,
        core: CoreId,
        line: crate::addr::LineAddr,
        kind: AccessKind,
    ) -> AccessOutcome {
        let mut latency = Cycle::new(self.config.l1_latency);

        // ---- L1 ----
        let l1_state = self.l1_of(core, kind).touch(line);
        match l1_state {
            Some(state) if kind != AccessKind::Write || state.can_write() => {
                self.l1_of(core, kind).stats_mut().hits.incr();
                let final_state = if kind == AccessKind::Write {
                    if state == MesiState::Exclusive {
                        // Silent E→M upgrade, mirrored in L2 and the directory.
                        self.l1_of(core, kind).set_state(line, MesiState::Modified);
                        self.cores[core.index()]
                            .l2
                            .set_state(line, MesiState::Modified);
                        self.directory.silent_upgrade(line, core);
                    }
                    MesiState::Modified
                } else {
                    state
                };
                self.set_memo(core, kind, line, final_state);
                return AccessOutcome {
                    latency,
                    level: HitLevel::L1,
                    upgraded: false,
                };
            }
            Some(_) => {
                // Write to a Shared copy: data is local, permission is not.
                self.l1_of(core, kind).stats_mut().hits.incr();
                latency += self.upgrade_to_modified(core, line, kind);
                self.set_memo(core, kind, line, MesiState::Modified);
                return AccessOutcome {
                    latency,
                    level: HitLevel::L1,
                    upgraded: true,
                };
            }
            None => {
                self.l1_of(core, kind).stats_mut().misses.incr();
            }
        }

        // ---- L2 ----
        latency += self.config.l2_latency;
        let l2_state = self.cores[core.index()].l2.touch(line);
        match l2_state {
            Some(state) if kind != AccessKind::Write || state.can_write() => {
                self.cores[core.index()].l2.stats_mut().hits.incr();
                let fill_state = if kind == AccessKind::Write {
                    if state == MesiState::Exclusive {
                        self.directory.silent_upgrade(line, core);
                    }
                    self.cores[core.index()]
                        .l2
                        .set_state(line, MesiState::Modified);
                    MesiState::Modified
                } else {
                    state
                };
                self.fill_l1(core, kind, line, fill_state);
                self.set_memo(core, kind, line, fill_state);
                return AccessOutcome {
                    latency,
                    level: HitLevel::L2,
                    upgraded: false,
                };
            }
            Some(_) => {
                self.cores[core.index()].l2.stats_mut().hits.incr();
                latency += self.upgrade_to_modified(core, line, kind);
                self.fill_l1(core, kind, line, MesiState::Modified);
                self.set_memo(core, kind, line, MesiState::Modified);
                return AccessOutcome {
                    latency,
                    level: HitLevel::L2,
                    upgraded: true,
                };
            }
            None => {
                self.cores[core.index()].l2.stats_mut().misses.incr();
            }
        }

        // ---- Directory / remote / memory ----
        latency += self.interconnect.charge_directory();
        let (level, fill_state) = if kind == AccessKind::Write {
            let action = self.directory.write_miss(line, core);
            let level = match action.source {
                DataSource::Memory => {
                    latency += self.dram.charge_access();
                    HitLevel::Memory
                }
                DataSource::RemoteCache { .. } => {
                    latency += self.interconnect.charge_c2c();
                    HitLevel::RemoteCache
                }
            };
            latency += self
                .interconnect
                .charge_invalidation(action.invalidate.len());
            for victim in action.invalidate {
                self.invalidate_remote(victim, line);
            }
            (level, MesiState::Modified)
        } else {
            let action = self.directory.read_miss(line, core);
            let level = match action.source {
                DataSource::Memory => {
                    latency += self.dram.charge_access();
                    HitLevel::Memory
                }
                DataSource::RemoteCache { .. } => {
                    latency += self.interconnect.charge_c2c();
                    HitLevel::RemoteCache
                }
            };
            for holder in action.downgrade {
                self.downgrade_remote(holder, line);
            }
            let state = if action.exclusive {
                MesiState::Exclusive
            } else {
                MesiState::Shared
            };
            (level, state)
        };

        self.install_l2(core, line, fill_state);
        self.fill_l1(core, kind, line, fill_state);
        self.set_memo(core, kind, line, fill_state);
        AccessOutcome {
            latency,
            level,
            upgraded: false,
        }
    }

    /// Records the line (and state) an L1 just served, arming the
    /// repeat-hit fast path.
    fn set_memo(
        &mut self,
        core: CoreId,
        kind: AccessKind,
        line: crate::addr::LineAddr,
        state: MesiState,
    ) {
        let caches = &mut self.cores[core.index()];
        match kind {
            AccessKind::Fetch => caches.memo_i = Some((line, state)),
            AccessKind::Read | AccessKind::Write => caches.memo_d = Some((line, state)),
        }
    }

    /// Drops `core`'s memos if they reference `line` (any external state
    /// change to that line makes the memo stale).
    fn clear_memo(&mut self, core: CoreId, line: crate::addr::LineAddr) {
        let caches = &mut self.cores[core.index()];
        if caches.memo_i.is_some_and(|(l, _)| l == line) {
            caches.memo_i = None;
        }
        if caches.memo_d.is_some_and(|(l, _)| l == line) {
            caches.memo_d = None;
        }
    }

    /// Performs the S→M permission upgrade for a line whose data is
    /// already present locally. Returns the added latency.
    fn upgrade_to_modified(
        &mut self,
        core: CoreId,
        line: crate::addr::LineAddr,
        kind: AccessKind,
    ) -> Cycle {
        let mut extra = self.interconnect.charge_directory();
        let action = self.directory.write_miss(line, core);
        debug_assert_eq!(
            action.source,
            DataSource::Memory,
            "upgrade must not move data"
        );
        extra += self
            .interconnect
            .charge_invalidation(action.invalidate.len());
        for victim in action.invalidate {
            self.invalidate_remote(victim, line);
        }
        self.cores[core.index()]
            .l2
            .set_state(line, MesiState::Modified);
        self.l1_of(core, kind).set_state(line, MesiState::Modified);
        extra
    }

    fn l1_of(&mut self, core: CoreId, kind: AccessKind) -> &mut Cache {
        let caches = &mut self.cores[core.index()];
        match kind {
            AccessKind::Fetch => &mut caches.l1i,
            AccessKind::Read | AccessKind::Write => &mut caches.l1d,
        }
    }

    /// Installs `line` into `core`'s L2, handling eviction bookkeeping.
    fn install_l2(&mut self, core: CoreId, line: crate::addr::LineAddr, state: MesiState) {
        if let Some(evicted) = self.cores[core.index()].l2.insert(line, state) {
            self.directory.evicted(evicted.line, core);
            if evicted.state.is_dirty() {
                self.dram.record_writeback();
            }
            // Inclusion: the victim may not linger in either L1.
            self.cores[core.index()]
                .l1i
                .set_state(evicted.line, MesiState::Invalid);
            self.cores[core.index()]
                .l1d
                .set_state(evicted.line, MesiState::Invalid);
            self.clear_memo(core, evicted.line);
        }
    }

    /// Installs `line` into the appropriate L1 (evictions are silent:
    /// the L2 is state-authoritative at all times).
    fn fill_l1(
        &mut self,
        core: CoreId,
        kind: AccessKind,
        line: crate::addr::LineAddr,
        state: MesiState,
    ) {
        self.l1_of(core, kind).insert(line, state);
    }

    /// Removes `line` everywhere in `victim`'s hierarchy (remote write).
    fn invalidate_remote(&mut self, victim: CoreId, line: crate::addr::LineAddr) {
        let caches = &mut self.cores[victim.index()];
        caches.l2.invalidate(line);
        caches.l1i.set_state(line, MesiState::Invalid);
        caches.l1d.set_state(line, MesiState::Invalid);
        self.clear_memo(victim, line);
        self.directory.evicted(line, victim); // write_miss re-registered the writer only
    }

    /// Downgrades `line` to Shared in `holder`'s hierarchy (remote read).
    fn downgrade_remote(&mut self, holder: CoreId, line: crate::addr::LineAddr) {
        let caches = &mut self.cores[holder.index()];
        if let Some(state) = caches.l2.state_of(line) {
            if state.is_dirty() {
                // The dirty data was supplied c2c and memory is updated.
                self.dram.record_writeback();
            }
            if state != MesiState::Shared {
                caches.l2.set_state(line, MesiState::Shared);
            }
        }
        if caches.l1i.state_of(line).is_some() {
            caches.l1i.set_state(line, MesiState::Shared);
        }
        if caches.l1d.state_of(line).is_some() {
            caches.l1d.set_state(line, MesiState::Shared);
        }
        self.clear_memo(holder, line);
    }

    /// L1 data cache statistics of `core`.
    pub fn l1d_stats(&self, core: CoreId) -> &CacheStats {
        self.cores[core.index()].l1d.stats()
    }

    /// L1 instruction cache statistics of `core`.
    pub fn l1i_stats(&self, core: CoreId) -> &CacheStats {
        self.cores[core.index()].l1i.stats()
    }

    /// L2 statistics of `core`.
    pub fn l2_stats(&self, core: CoreId) -> &CacheStats {
        self.cores[core.index()].l2.stats()
    }

    /// Directory statistics.
    pub fn directory_stats(&self) -> &crate::directory::DirectoryStats {
        self.directory.stats()
    }

    /// Interconnect traffic view.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// DRAM view.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mean L2 hit rate across all cores (the tuner's feedback metric).
    pub fn mean_l2_hit_rate(&self) -> f64 {
        let (mut hits, mut total) = (0u64, 0u64);
        for c in &self.cores {
            hits += c.l2.stats().hits.get();
            total += c.l2.stats().hits.get() + c.l2.stats().misses.get();
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Zeroes every statistic in the memory system — cache hit/miss
    /// counters, directory traffic, interconnect traffic and DRAM access
    /// counts — while leaving all cache *contents* warm. Called once at
    /// the end of the warm-up phase (the paper warms 50 M instructions
    /// before its region of interest, §II).
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.l1i.stats_mut().reset();
            c.l1d.stats_mut().reset();
            c.l2.stats_mut().reset();
        }
        self.directory.reset_stats();
        self.interconnect.reset_stats();
        self.dram.reset_stats();
    }

    /// Takes a counter snapshot for interval-based feedback.
    pub fn snapshot(&self) -> MemSnapshot {
        let (mut l2_hits, mut l2_misses) = (0u64, 0u64);
        for c in &self.cores {
            l2_hits += c.l2.stats().hits.get();
            l2_misses += c.l2.stats().misses.get();
        }
        MemSnapshot {
            l2_hits,
            l2_misses,
            c2c_transfers: self.interconnect.c2c_transfers(),
            invalidation_rounds: self.interconnect.invalidation_rounds(),
            dram_accesses: self.dram.accesses(),
        }
    }

    /// Verifies cross-structure coherence invariants (tests only):
    /// the directory's sharer sets must match actual L2 residency, and at
    /// most one core may hold a line in M/E.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        self.directory.check_invariants();
        for (i, caches) in self.cores.iter().enumerate() {
            let me = CoreId::new(i);
            for (line, state) in caches.l2.iter() {
                assert!(
                    self.directory.sharers(line) & me.bit() != 0,
                    "{me} holds {line} ({state}) but directory disagrees"
                );
                if state == MesiState::Modified {
                    assert_eq!(
                        self.directory.sharers(line),
                        me.bit(),
                        "{me} holds {line} Modified but other sharers exist"
                    );
                }
                if state == MesiState::Exclusive {
                    assert_eq!(
                        self.directory.sharers(line),
                        me.bit(),
                        "{me} holds {line} Exclusive but other sharers exist"
                    );
                }
            }
            // Inclusion: L1-resident lines must be L2-resident.
            for (line, _) in caches.l1d.iter().chain(caches.l1i.iter()) {
                assert!(
                    caches.l2.state_of(line).is_some(),
                    "{me}: L1 holds {line} not present in L2 (inclusion violated)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        // Small caches so tests exercise evictions: 2 KB L1s, 8 KB L2.
        let mut cfg = MemConfig::paper_baseline(cores);
        cfg.l1i = CacheGeometry::new(2048, 2);
        cfg.l1d = CacheGeometry::new(2048, 2);
        cfg.l2 = CacheGeometry::new(8192, 4);
        MemorySystem::new(cfg)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut m = sys(1);
        let a = Address::new(0x1000);
        let first = m.access(c(0), Access::read(a));
        assert_eq!(first.level, HitLevel::Memory);
        assert_eq!(
            first.latency.as_u64(),
            1 + 12 + m.config().interconnect.directory_lookup + 350
        );
        let second = m.access(c(0), Access::read(a));
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.latency.as_u64(), 1);
        m.check_invariants();
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = sys(1);
        let base = 0x4000u64;
        m.access(c(0), Access::read(Address::new(base)));
        // Evict from the 2-way L1 (16 sets) with two conflicting lines at a
        // 1 KiB stride; the 4-way 32-set L2 spreads the same lines across
        // two sets, so the original survives there.
        for i in 1..=2u64 {
            m.access(c(0), Access::read(Address::new(base + i * 1024)));
        }
        let back = m.access(c(0), Access::read(Address::new(base)));
        // Might be L2 hit (evicted from L1 only) — with 4-way 8 KB L2 and 9
        // distinct lines mapping across 32 sets, the original stays in L2.
        assert_eq!(back.level, HitLevel::L2);
        assert_eq!(back.latency.as_u64(), 1 + 12);
        m.check_invariants();
    }

    #[test]
    fn write_then_remote_read_is_cache_to_cache() {
        let mut m = sys(2);
        let a = Address::new(0x2000);
        m.access(c(0), Access::write(a));
        let remote = m.access(c(1), Access::read(a));
        assert_eq!(remote.level, HitLevel::RemoteCache);
        // Dirty supplier downgrades and memory gets the writeback.
        assert_eq!(m.dram().writebacks(), 1);
        m.check_invariants();
        // Both cores can now read locally.
        assert_eq!(m.access(c(0), Access::read(a)).level, HitLevel::L1);
        assert_eq!(m.access(c(1), Access::read(a)).level, HitLevel::L1);
    }

    #[test]
    fn shared_write_triggers_upgrade_and_invalidation() {
        let mut m = sys(2);
        let a = Address::new(0x3000);
        m.access(c(0), Access::read(a));
        m.access(c(1), Access::read(a)); // both Shared now
        let w = m.access(c(0), Access::write(a));
        assert!(w.upgraded, "write to S must be an upgrade");
        assert_eq!(w.level, HitLevel::L1);
        m.check_invariants();
        // Core 1 lost its copy; its next read is a c2c transfer.
        let r = m.access(c(1), Access::read(a));
        assert_eq!(r.level, HitLevel::RemoteCache);
        m.check_invariants();
    }

    #[test]
    fn write_miss_with_remote_sharers_invalidates() {
        let mut m = sys(2);
        let a = Address::new(0x5000);
        m.access(c(0), Access::read(a));
        let w = m.access(c(1), Access::write(a));
        assert_eq!(w.level, HitLevel::RemoteCache);
        m.check_invariants();
        // Core 0's copy is gone.
        let r = m.access(c(0), Access::read(a));
        assert_ne!(r.level, HitLevel::L1);
    }

    #[test]
    fn silent_exclusive_to_modified_upgrade_is_free() {
        let mut m = sys(1);
        let a = Address::new(0x7000);
        m.access(c(0), Access::read(a)); // E
        let w = m.access(c(0), Access::write(a));
        assert_eq!(w.level, HitLevel::L1);
        assert!(!w.upgraded);
        assert_eq!(w.latency.as_u64(), 1);
        m.check_invariants();
    }

    #[test]
    fn fetches_use_l1i() {
        let mut m = sys(1);
        let a = Address::new(0x9000);
        m.access(c(0), Access::fetch(a));
        assert_eq!(m.l1i_stats(c(0)).misses.get(), 1);
        assert_eq!(m.l1d_stats(c(0)).misses.get(), 0);
        m.access(c(0), Access::fetch(a));
        assert_eq!(m.l1i_stats(c(0)).hits.get(), 1);
        m.check_invariants();
    }

    #[test]
    fn l2_eviction_maintains_inclusion_and_directory() {
        let mut m = sys(2);
        // Fill one L2 set (4 ways) + 1: lines mapping to the same L2 set.
        // L2: 8192 B / 64 B / 4 ways = 32 sets. Same set => stride 32 lines.
        for i in 0..5u64 {
            m.access(c(0), Access::write(Address::new(i * 32 * 64)));
        }
        m.check_invariants();
        // One line was evicted dirty.
        assert!(m.dram().writebacks() >= 1);
    }

    #[test]
    fn mean_l2_hit_rate_reflects_traffic() {
        let mut m = sys(1);
        let a = Address::new(0x100);
        m.access(c(0), Access::read(a));
        assert_eq!(m.mean_l2_hit_rate(), 0.0);
        // L1 hits don't touch L2; force an L1 conflict to get an L2 hit.
        for i in 1..=2u64 {
            m.access(c(0), Access::read(Address::new(0x100 + i * 1024)));
        }
        m.access(c(0), Access::read(a));
        assert!(m.mean_l2_hit_rate() > 0.0);
    }

    #[test]
    fn snapshot_diffs_give_interval_rates() {
        let mut m = sys(1);
        let before = m.snapshot();
        for i in 0..16u64 {
            m.access(c(0), Access::read(Address::new(i * 64)));
        }
        let after = m.snapshot();
        assert_eq!(after.dram_accesses - before.dram_accesses, 16);
        assert_eq!(after.l2_hit_rate_since(&before), 0.0);
    }

    #[test]
    fn three_core_sharing_chain() {
        let mut m = sys(3);
        let a = Address::new(0xaa80);
        m.access(c(0), Access::write(a));
        m.access(c(1), Access::read(a));
        m.access(c(2), Access::read(a));
        m.check_invariants();
        let w = m.access(c(1), Access::write(a));
        assert!(w.upgraded);
        m.check_invariants();
        // Only core 1 retains the line.
        assert_eq!(m.access(c(1), Access::read(a)).level, HitLevel::L1);
        assert_ne!(m.access(c(0), Access::read(a)).level, HitLevel::L1);
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let m = sys(1);
        assert!(!format!("{m:?}").is_empty());
    }
}
