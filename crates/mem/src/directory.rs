//! Full-map coherence directory.
//!
//! The directory tracks, for every line cached in *any* private L2, the
//! set of sharer cores and whether one of them owns the line dirty. It
//! answers miss/upgrade requests with *actions* — who must supply data,
//! who must be invalidated or downgraded — and the
//! [`MemorySystem`](crate::hierarchy::MemorySystem) applies those actions
//! to the physical caches and charges the latencies. The paper requires
//! directory lookup, cache-to-cache transfer, and invalidation overheads
//! to be modelled independently (§IV); keeping the decision here and the
//! costing in the hierarchy makes each of the three costs explicit.

use crate::addr::{CoreId, LineAddr};
use core::fmt;
use osoffload_sim::Counter;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for line-address keys.
///
/// Directory lookups sit on the L2-miss path; SipHash (the standard
/// `HashMap` default) costs more than the rest of the lookup combined.
/// Line addresses are already well-distributed integers, so one odd
/// multiply plus a high-to-low mix is collision-safe here. The map is
/// never iterated (only `entry`/`get_mut`/`remove`/`len`), so the hash
/// function cannot affect simulation output.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer writes (unused by u64 keys).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type LineMap<V> = HashMap<LineAddr, V, BuildHasherDefault<LineHasher>>;

/// Per-line directory record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DirEntry {
    /// Bitmask of cores whose L2 holds the line.
    sharers: u64,
    /// Core holding the line in M (dirty), if any.
    dirty_owner: Option<CoreId>,
}

/// Where the data for a miss will come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// No other cache holds the line: fetch from DRAM.
    Memory,
    /// Another core's L2 supplies the line (cache-to-cache transfer).
    RemoteCache {
        /// The supplying core.
        owner: CoreId,
        /// Whether the supplier held the line dirty (M).
        dirty: bool,
    },
}

/// A set of cores packed into a 64-bit mask.
///
/// Directory actions carry their target cores in this form instead of a
/// `Vec<CoreId>` so answering a miss never allocates. Iteration yields
/// cores in ascending id order — the same order the old vector held them
/// in — so applying an action is order-identical to the old code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet(0);

    /// Wraps a raw sharer bitmask.
    pub fn from_mask(mask: u64) -> Self {
        CoreSet(mask)
    }

    /// Number of cores in the set.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Whether `core` is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        self.0 & core.bit() != 0
    }

    /// Iterates the member cores in ascending id order.
    pub fn iter(&self) -> CoreSetIter {
        CoreSetIter(self.0)
    }
}

impl IntoIterator for CoreSet {
    type Item = CoreId;
    type IntoIter = CoreSetIter;
    fn into_iter(self) -> CoreSetIter {
        CoreSetIter(self.0)
    }
}

/// Iterator over a [`CoreSet`], ascending by core id.
#[derive(Debug, Clone)]
pub struct CoreSetIter(u64);

impl Iterator for CoreSetIter {
    type Item = CoreId;
    fn next(&mut self) -> Option<CoreId> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(CoreId::new(i as usize))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CoreSetIter {}

/// The directory's answer to a read miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadMissAction {
    /// Where the requester obtains the data.
    pub source: DataSource,
    /// Cores whose copy must be *downgraded* M/E → S.
    pub downgrade: CoreSet,
    /// Whether the requester may install the line Exclusive (no sharers).
    pub exclusive: bool,
}

/// The directory's answer to a write miss or upgrade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteMissAction {
    /// Where the requester obtains the data ([`DataSource::Memory`] for
    /// an upgrade, where the requester already has the data).
    pub source: DataSource,
    /// Cores whose copy must be invalidated.
    pub invalidate: CoreSet,
}

/// Counters for directory activity.
#[derive(Debug, Clone, Default)]
pub struct DirectoryStats {
    /// Total requests consulted (read misses + write misses + upgrades).
    pub lookups: Counter,
    /// Misses satisfied by another core's cache.
    pub cache_to_cache: Counter,
    /// Individual invalidation messages sent.
    pub invalidations_sent: Counter,
    /// Individual downgrade messages sent.
    pub downgrades_sent: Counter,
    /// Misses that went to DRAM.
    pub memory_fetches: Counter,
}

impl DirectoryStats {
    /// Zeroes every counter (used when discarding warm-up statistics).
    pub fn reset(&mut self) {
        self.lookups.take();
        self.cache_to_cache.take();
        self.invalidations_sent.take();
        self.downgrades_sent.take();
        self.memory_fetches.take();
    }
}

impl fmt::Display for DirectoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lookups={} c2c={} inval={} downgrades={} mem={}",
            self.lookups,
            self.cache_to_cache,
            self.invalidations_sent,
            self.downgrades_sent,
            self.memory_fetches
        )
    }
}

/// Full-map MESI directory for the private-L2 CMP.
///
/// # Examples
///
/// ```
/// use osoffload_mem::directory::{Directory, DataSource};
/// use osoffload_mem::{CoreId, LineAddr};
///
/// let mut dir = Directory::new();
/// let (c0, c1) = (CoreId::new(0), CoreId::new(1));
/// let line = LineAddr::new(0x99);
///
/// // Core 0 misses: memory supplies, exclusive.
/// let a = dir.read_miss(line, c0);
/// assert_eq!(a.source, DataSource::Memory);
/// assert!(a.exclusive);
///
/// // Core 1 then misses the same line: core 0 supplies it.
/// let b = dir.read_miss(line, c1);
/// assert!(matches!(b.source, DataSource::RemoteCache { .. }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: LineMap<DirEntry>,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Creates an empty directory pre-sized for `lines` tracked lines, so
    /// steady-state operation never grows the map. The tracked-line count
    /// is bounded by the total L2 capacity of the system (entries are
    /// dropped as soon as their last sharer evicts).
    pub fn with_capacity(lines: usize) -> Self {
        Directory {
            entries: LineMap::with_capacity_and_hasher(lines, BuildHasherDefault::default()),
            stats: DirectoryStats::default(),
        }
    }

    /// Directory activity counters.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Zeroes the activity counters without forgetting tracked lines.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Returns the sharer bitmask for `line` (0 when untracked).
    pub fn sharers(&self, line: LineAddr) -> u64 {
        self.entries.get(&line).map_or(0, |e| e.sharers)
    }

    /// Returns the dirty owner of `line`, if any.
    pub fn dirty_owner(&self, line: LineAddr) -> Option<CoreId> {
        self.entries.get(&line).and_then(|e| e.dirty_owner)
    }

    /// First (lowest-id) core in `mask`, which must be non-zero.
    fn first_sharer(mask: u64) -> CoreId {
        debug_assert!(mask != 0, "first_sharer: empty mask");
        CoreId::new(mask.trailing_zeros() as usize)
    }

    /// Handles a read miss by `requester`; registers it as a sharer.
    pub fn read_miss(&mut self, line: LineAddr, requester: CoreId) -> ReadMissAction {
        self.stats.lookups.incr();
        let entry = self.entries.entry(line).or_insert(DirEntry {
            sharers: 0,
            dirty_owner: None,
        });
        let others = entry.sharers & !requester.bit();
        let action = if others == 0 {
            self.stats.memory_fetches.incr();
            ReadMissAction {
                source: DataSource::Memory,
                downgrade: CoreSet::EMPTY,
                exclusive: true,
            }
        } else {
            // Any holder can supply; prefer the dirty owner (it must also
            // be downgraded and its data is the only valid copy).
            let (owner, dirty) = match entry.dirty_owner {
                Some(o) if o != requester => (o, true),
                _ => (Self::first_sharer(others), false),
            };
            self.stats.cache_to_cache.incr();
            // M or E holders downgrade to S. We ask the hierarchy to
            // downgrade every other sharer; S→S downgrades are no-ops
            // there, so only genuine M/E copies pay.
            let downgrade = CoreSet::from_mask(others);
            self.stats.downgrades_sent.add(downgrade.len() as u64);
            ReadMissAction {
                source: DataSource::RemoteCache { owner, dirty },
                downgrade,
                exclusive: false,
            }
        };
        entry.sharers |= requester.bit();
        entry.dirty_owner = None; // any dirty copy is downgraded/cleaned
        action
    }

    /// Handles a write miss (or upgrade-from-S) by `requester`; registers
    /// it as the sole dirty owner.
    pub fn write_miss(&mut self, line: LineAddr, requester: CoreId) -> WriteMissAction {
        self.stats.lookups.incr();
        let entry = self.entries.entry(line).or_insert(DirEntry {
            sharers: 0,
            dirty_owner: None,
        });
        let others = entry.sharers & !requester.bit();
        let had_line = entry.sharers & requester.bit() != 0;
        let source = if had_line || others == 0 {
            // Upgrade (data already local) or cold write: memory "supplies"
            // only when the requester lacked the line entirely.
            if !had_line {
                self.stats.memory_fetches.incr();
            }
            DataSource::Memory
        } else {
            let (owner, dirty) = match entry.dirty_owner {
                Some(o) if o != requester => (o, true),
                _ => (Self::first_sharer(others), false),
            };
            self.stats.cache_to_cache.incr();
            DataSource::RemoteCache { owner, dirty }
        };
        let invalidate = CoreSet::from_mask(others);
        self.stats.invalidations_sent.add(invalidate.len() as u64);
        entry.sharers = requester.bit();
        entry.dirty_owner = Some(requester);
        WriteMissAction { source, invalidate }
    }

    /// Records that `core` made an already-resident line dirty without a
    /// directory transaction (store hit on an E copy — silent E→M).
    pub fn silent_upgrade(&mut self, line: LineAddr, core: CoreId) {
        if let Some(entry) = self.entries.get_mut(&line) {
            debug_assert_eq!(
                entry.sharers,
                core.bit(),
                "silent upgrade requires sole sharer"
            );
            entry.dirty_owner = Some(core);
        }
    }

    /// Records that `core` evicted `line` from its L2.
    pub fn evicted(&mut self, line: LineAddr, core: CoreId) {
        if let Some(entry) = self.entries.get_mut(&line) {
            entry.sharers &= !core.bit();
            if entry.dirty_owner == Some(core) {
                entry.dirty_owner = None;
            }
            if entry.sharers == 0 {
                self.entries.remove(&line);
            }
        }
    }

    /// Verifies internal invariants, panicking with a description of the
    /// first violation. Intended for tests and debug builds.
    ///
    /// # Panics
    ///
    /// Panics if a dirty owner is recorded that is not also a sharer, or
    /// if an entry has no sharers.
    pub fn check_invariants(&self) {
        for (line, entry) in &self.entries {
            assert!(entry.sharers != 0, "{line}: tracked entry with no sharers");
            if let Some(owner) = entry.dirty_owner {
                assert!(
                    entry.sharers == owner.bit(),
                    "{line}: dirty owner {owner} coexists with sharers {:#b}",
                    entry.sharers
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr::new(0x42);

    fn cores(n: usize) -> Vec<CoreId> {
        (0..n).map(CoreId::new).collect()
    }

    #[test]
    fn cold_read_is_exclusive_from_memory() {
        let mut dir = Directory::new();
        let a = dir.read_miss(L, CoreId::new(0));
        assert_eq!(a.source, DataSource::Memory);
        assert!(a.exclusive);
        assert!(a.downgrade.is_empty());
        assert_eq!(dir.sharers(L), 1);
        dir.check_invariants();
    }

    #[test]
    fn second_reader_gets_cache_to_cache() {
        let mut dir = Directory::new();
        let c = cores(2);
        dir.read_miss(L, c[0]);
        let a = dir.read_miss(L, c[1]);
        assert_eq!(
            a.source,
            DataSource::RemoteCache {
                owner: c[0],
                dirty: false
            }
        );
        assert!(!a.exclusive);
        assert_eq!(a.downgrade.iter().collect::<Vec<_>>(), vec![c[0]]);
        assert_eq!(dir.sharers(L), 0b11);
        dir.check_invariants();
    }

    #[test]
    fn reader_after_writer_sees_dirty_supplier() {
        let mut dir = Directory::new();
        let c = cores(2);
        dir.write_miss(L, c[0]);
        assert_eq!(dir.dirty_owner(L), Some(c[0]));
        let a = dir.read_miss(L, c[1]);
        assert_eq!(
            a.source,
            DataSource::RemoteCache {
                owner: c[0],
                dirty: true
            }
        );
        assert_eq!(dir.dirty_owner(L), None, "dirty copy cleaned by read");
        dir.check_invariants();
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut dir = Directory::new();
        let c = cores(3);
        dir.read_miss(L, c[0]);
        dir.read_miss(L, c[1]);
        let a = dir.write_miss(L, c[2]);
        // CoreSet iteration is ascending by construction.
        let inv: Vec<_> = a.invalidate.iter().collect();
        assert_eq!(inv, vec![c[0], c[1]]);
        assert_eq!(dir.sharers(L), c[2].bit());
        assert_eq!(dir.dirty_owner(L), Some(c[2]));
        dir.check_invariants();
    }

    #[test]
    fn upgrade_from_shared_keeps_data_local() {
        let mut dir = Directory::new();
        let c = cores(2);
        dir.read_miss(L, c[0]);
        dir.read_miss(L, c[1]);
        let a = dir.write_miss(L, c[0]); // upgrade: c0 already a sharer
        assert_eq!(
            a.source,
            DataSource::Memory,
            "upgrade needs no data transfer"
        );
        assert_eq!(a.invalidate.iter().collect::<Vec<_>>(), vec![c[1]]);
        // No extra memory fetch was counted for the upgrade itself.
        assert_eq!(dir.stats().memory_fetches.get(), 1);
        dir.check_invariants();
    }

    #[test]
    fn eviction_clears_tracking() {
        let mut dir = Directory::new();
        let c = cores(2);
        dir.read_miss(L, c[0]);
        dir.read_miss(L, c[1]);
        dir.evicted(L, c[0]);
        assert_eq!(dir.sharers(L), c[1].bit());
        dir.evicted(L, c[1]);
        assert_eq!(dir.tracked_lines(), 0);
        dir.check_invariants();
    }

    #[test]
    fn eviction_of_dirty_owner_clears_owner() {
        let mut dir = Directory::new();
        let c0 = CoreId::new(0);
        dir.write_miss(L, c0);
        dir.evicted(L, c0);
        assert_eq!(dir.dirty_owner(L), None);
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn silent_upgrade_records_dirty_owner() {
        let mut dir = Directory::new();
        let c0 = CoreId::new(0);
        dir.read_miss(L, c0); // E copy
        dir.silent_upgrade(L, c0);
        assert_eq!(dir.dirty_owner(L), Some(c0));
        dir.check_invariants();
    }

    #[test]
    fn stats_accumulate() {
        let mut dir = Directory::new();
        let c = cores(2);
        dir.read_miss(L, c[0]); // memory fetch
        dir.read_miss(L, c[1]); // c2c + downgrade
        dir.write_miss(L, c[0]); // invalidation of c1 (upgrade path: c0 already sharer)
        let s = dir.stats();
        assert_eq!(s.lookups.get(), 3);
        assert_eq!(s.memory_fetches.get(), 1);
        assert_eq!(s.cache_to_cache.get(), 1);
        assert_eq!(s.downgrades_sent.get(), 1);
        assert_eq!(s.invalidations_sent.get(), 1);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn writer_then_rewriter_transfers_dirty_line() {
        let mut dir = Directory::new();
        let c = cores(2);
        dir.write_miss(L, c[0]);
        let a = dir.write_miss(L, c[1]);
        assert_eq!(
            a.source,
            DataSource::RemoteCache {
                owner: c[0],
                dirty: true
            }
        );
        assert_eq!(a.invalidate.iter().collect::<Vec<_>>(), vec![c[0]]);
        assert_eq!(dir.dirty_owner(L), Some(c[1]));
        dir.check_invariants();
    }
}
