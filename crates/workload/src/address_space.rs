//! Address-space and locality model.
//!
//! Off-loading's costs and benefits are entirely about *where data lives*:
//! user working sets, kernel working sets, and the shared buffers the
//! kernel fills on the application's behalf ("the OS often performs
//! operations such as I/O on behalf of the application and places the
//! resulting data into the application address space", §V-A). This module
//! lays those regions out in the simulated physical address space and
//! samples addresses with a hot/cold Zipf-like locality profile.

use core::fmt;
use osoffload_sim::{FastMod, Rng64, ZipfApprox};

/// Logical memory region an access falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Application code (per thread).
    UserCode,
    /// Application heap/stack data (per thread).
    UserData,
    /// The user-visible buffers the kernel reads/writes on the thread's
    /// behalf (per thread; the coherence hot spot).
    SharedBuffer,
    /// Kernel text (globally shared).
    KernelCode,
    /// Kernel data structures (globally shared).
    KernelData,
    /// Per-thread kernel stack and thread-local kernel data.
    KernelThread,
}

impl Region {
    /// All regions, in a stable order.
    pub const ALL: &'static [Region] = &[
        Region::UserCode,
        Region::UserData,
        Region::SharedBuffer,
        Region::KernelCode,
        Region::KernelData,
        Region::KernelThread,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::UserCode => "user-code",
            Region::UserData => "user-data",
            Region::SharedBuffer => "shared-buffer",
            Region::KernelCode => "kernel-code",
            Region::KernelData => "kernel-data",
            Region::KernelThread => "kernel-thread",
        };
        write!(f, "{name}")
    }
}

/// Footprint (bytes) of each region for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprints {
    /// Application code footprint.
    pub user_code: u64,
    /// Application data working set.
    pub user_data: u64,
    /// Shared user↔kernel buffer pool per thread.
    pub shared_buffer: u64,
    /// Kernel text footprint.
    pub kernel_code: u64,
    /// Kernel global data footprint.
    pub kernel_data: u64,
    /// Per-thread kernel stack/task data.
    pub kernel_thread: u64,
}

impl Footprints {
    /// Footprint of `region`.
    pub fn of(&self, region: Region) -> u64 {
        match region {
            Region::UserCode => self.user_code,
            Region::UserData => self.user_data,
            Region::SharedBuffer => self.shared_buffer,
            Region::KernelCode => self.kernel_code,
            Region::KernelData => self.kernel_data,
            Region::KernelThread => self.kernel_thread,
        }
    }
}

const USER_STRIDE: u64 = 1 << 32; // per-thread user address-space slot
const KERNEL_BASE: u64 = 0xFFFF_8000_0000_0000;
const KERNEL_THREAD_STRIDE: u64 = 1 << 24;

/// Per-thread view of the simulated address space.
///
/// User regions are private per thread (distinct physical ranges);
/// kernel code/data are shared by every thread in the system, which is
/// what lets co-scheduled threads "interact constructively at the shared
/// OS core" (§I).
///
/// # Examples
///
/// ```
/// use osoffload_workload::address_space::{AddressSpace, Footprints, Region};
/// use osoffload_sim::Rng64;
///
/// let fp = Footprints {
///     user_code: 64 << 10, user_data: 1 << 20, shared_buffer: 128 << 10,
///     kernel_code: 256 << 10, kernel_data: 512 << 10, kernel_thread: 16 << 10,
/// };
/// let a = AddressSpace::new(0, fp);
/// let b = AddressSpace::new(1, fp);
/// let mut rng = Rng64::seed_from(1);
/// // Kernel code is shared; user data is disjoint.
/// assert_eq!(a.base(Region::KernelCode), b.base(Region::KernelCode));
/// assert_ne!(a.base(Region::UserData), b.base(Region::UserData));
/// let addr = a.sample(Region::UserData, 1.1, &mut rng);
/// assert!(a.contains(Region::UserData, addr));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    thread: u64,
    footprints: Footprints,
}

impl AddressSpace {
    /// Creates the address-space view for `thread`.
    pub fn new(thread: usize, footprints: Footprints) -> Self {
        AddressSpace {
            thread: thread as u64,
            footprints,
        }
    }

    /// The configured footprints.
    pub fn footprints(&self) -> &Footprints {
        &self.footprints
    }

    /// Base address of `region` for this thread.
    pub fn base(&self, region: Region) -> u64 {
        let slot = (self.thread + 1) * USER_STRIDE;
        match region {
            Region::UserCode => slot,
            Region::UserData => slot + (1 << 28),
            Region::SharedBuffer => slot + (2 << 28),
            Region::KernelCode => KERNEL_BASE,
            Region::KernelData => KERNEL_BASE + (1 << 30),
            Region::KernelThread => KERNEL_BASE + (2 << 30) + self.thread * KERNEL_THREAD_STRIDE,
        }
    }

    /// Whether `addr` falls inside this thread's `region`.
    pub fn contains(&self, region: Region, addr: u64) -> bool {
        let base = self.base(region);
        addr >= base && addr < base + self.footprints.of(region)
    }

    /// Samples an address in `region` with Zipf-skewed locality: `skew`
    /// around 1.0–1.3 concentrates accesses on a hot subset, which is
    /// what gives L1/L2 caches realistic hit rates on working sets larger
    /// than the cache.
    pub fn sample(&self, region: Region, skew: f64, rng: &mut Rng64) -> u64 {
        let footprint = self.footprints.of(region).max(64);
        let lines = footprint / 64;
        let line = rng.sample_zipf_approx(lines, skew);
        // Scatter the popularity ranking across the region so hot lines
        // don't all land in the same cache sets: multiply by an odd
        // constant modulo the line count.
        let scattered = (line.wrapping_mul(0x9E37_79B9) ^ (line >> 7)) % lines;
        self.base(region) + scattered * 64 + (rng.next_u64() & 0x38)
    }

    /// Samples an address with a two-level hot/cold locality model: with
    /// probability `hot_frac` the access lands (Zipf-skewed) in the
    /// region's first `hot_bytes`; otherwise anywhere in the region.
    ///
    /// Real programs concentrate most references on a small hot set
    /// (stack frames, top-level structures) while sweeping a much larger
    /// cold set; a single flat Zipf cannot give both realistic L1 *and*
    /// L2 hit rates at the paper's working-set sizes.
    pub fn sample_hot_cold(
        &self,
        region: Region,
        hot_frac: f64,
        hot_bytes: u64,
        skew: f64,
        rng: &mut Rng64,
    ) -> u64 {
        let footprint = self.footprints.of(region).max(64);
        let hot = hot_bytes.clamp(64, footprint);
        let lines = if rng.gen_bool(hot_frac) {
            hot / 64
        } else {
            footprint / 64
        };
        let line = rng.sample_zipf_approx(lines.max(1), skew);
        let scattered = (line.wrapping_mul(0x9E37_79B9) ^ (line >> 7)) % (footprint / 64);
        self.base(region) + scattered * 64 + (rng.next_u64() & 0x38)
    }

    /// Samples a sequential-ish address: element `i` of a streaming walk
    /// through `region` (bulk copies, buffer fills).
    pub fn stream(&self, region: Region, i: u64) -> u64 {
        let footprint = self.footprints.of(region).max(64);
        self.base(region) + (i * 8) % footprint
    }

    /// Prepares a sampler equivalent to [`AddressSpace::sample`] with
    /// this `(region, skew)` fixed — hoisting the Zipf `powf` constants
    /// and the scatter modulo out of the per-access path.
    pub fn flat_sampler(&self, region: Region, skew: f64) -> FlatSampler {
        let footprint = self.footprints.of(region).max(64);
        let lines = footprint / 64;
        FlatSampler {
            base: self.base(region),
            zipf: ZipfApprox::new(lines, skew),
            lines: FastMod::new(lines),
        }
    }

    /// Prepares a sampler equivalent to [`AddressSpace::sample_hot_cold`]
    /// with this `(region, hot_frac, hot_bytes, skew)` fixed.
    pub fn hot_cold_sampler(
        &self,
        region: Region,
        hot_frac: f64,
        hot_bytes: u64,
        skew: f64,
    ) -> HotColdSampler {
        let footprint = self.footprints.of(region).max(64);
        let hot = hot_bytes.clamp(64, footprint);
        HotColdSampler {
            base: self.base(region),
            hot_frac,
            hot_zipf: ZipfApprox::new((hot / 64).max(1), skew),
            cold_zipf: ZipfApprox::new((footprint / 64).max(1), skew),
            lines: FastMod::new(footprint / 64),
        }
    }
}

/// Scatters a Zipf popularity rank across the region's line count, so
/// hot lines don't all land in the same cache sets.
#[inline]
fn scatter(line: u64, lines: &FastMod) -> u64 {
    lines.rem(line.wrapping_mul(0x9E37_79B9) ^ (line >> 7))
}

/// [`AddressSpace::sample`] with region and skew baked in at
/// construction. Produces bit-identical addresses from identical RNG
/// state; the only difference is that the Zipf constants and the scatter
/// reciprocal are computed once instead of per access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatSampler {
    base: u64,
    zipf: ZipfApprox,
    lines: FastMod,
}

impl FlatSampler {
    /// Draws one address; bit-identical to the [`AddressSpace::sample`]
    /// call this sampler was prepared from.
    #[inline]
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let line = self.zipf.sample(rng);
        self.base + scatter(line, &self.lines) * 64 + (rng.next_u64() & 0x38)
    }
}

/// [`AddressSpace::sample_hot_cold`] with all distribution parameters
/// baked in at construction; same bit-identity contract as
/// [`FlatSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotColdSampler {
    base: u64,
    hot_frac: f64,
    hot_zipf: ZipfApprox,
    cold_zipf: ZipfApprox,
    lines: FastMod,
}

impl HotColdSampler {
    /// Draws one address; bit-identical to the
    /// [`AddressSpace::sample_hot_cold`] call this sampler was prepared
    /// from.
    #[inline]
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let zipf = if rng.gen_bool(self.hot_frac) {
            &self.hot_zipf
        } else {
            &self.cold_zipf
        };
        let line = zipf.sample(rng);
        self.base + scatter(line, &self.lines) * 64 + (rng.next_u64() & 0x38)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Footprints {
        Footprints {
            user_code: 64 << 10,
            user_data: 1 << 20,
            shared_buffer: 128 << 10,
            kernel_code: 256 << 10,
            kernel_data: 512 << 10,
            kernel_thread: 16 << 10,
        }
    }

    #[test]
    fn user_regions_disjoint_across_threads() {
        let a = AddressSpace::new(0, fp());
        let b = AddressSpace::new(1, fp());
        for &r in &[Region::UserCode, Region::UserData, Region::SharedBuffer] {
            let (ab, bb) = (a.base(r), b.base(r));
            assert!(
                ab + fp().of(r) <= bb || bb + fp().of(r) <= ab,
                "{r} overlaps"
            );
        }
    }

    #[test]
    fn kernel_global_regions_shared() {
        let a = AddressSpace::new(0, fp());
        let b = AddressSpace::new(3, fp());
        assert_eq!(a.base(Region::KernelCode), b.base(Region::KernelCode));
        assert_eq!(a.base(Region::KernelData), b.base(Region::KernelData));
        assert_ne!(a.base(Region::KernelThread), b.base(Region::KernelThread));
    }

    #[test]
    fn regions_within_one_thread_disjoint() {
        let a = AddressSpace::new(0, fp());
        let regions = Region::ALL;
        for (i, &r1) in regions.iter().enumerate() {
            for &r2 in &regions[i + 1..] {
                let (b1, e1) = (a.base(r1), a.base(r1) + fp().of(r1));
                let (b2, e2) = (a.base(r2), a.base(r2) + fp().of(r2));
                assert!(e1 <= b2 || e2 <= b1, "{r1} overlaps {r2}");
            }
        }
    }

    #[test]
    fn samples_stay_in_region() {
        let a = AddressSpace::new(2, fp());
        let mut rng = Rng64::seed_from(9);
        for &r in Region::ALL {
            for _ in 0..500 {
                let addr = a.sample(r, 1.1, &mut rng);
                assert!(a.contains(r, addr), "{r}: {addr:#x} out of region");
            }
        }
    }

    #[test]
    fn sampling_is_skewed_toward_hot_lines() {
        let a = AddressSpace::new(0, fp());
        let mut rng = Rng64::seed_from(5);
        let mut lines = std::collections::HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            let addr = a.sample(Region::UserData, 1.2, &mut rng);
            *lines.entry(addr / 64).or_insert(0u32) += 1;
        }
        let mut counts: Vec<u32> = lines.values().copied().collect();
        counts.sort_unstable_by(|x, y| y.cmp(x));
        let hot: u32 = counts.iter().take(counts.len() / 10 + 1).sum();
        assert!(
            hot as f64 / n as f64 > 0.4,
            "top decile draws {:.0}% of accesses",
            hot as f64 / n as f64 * 100.0
        );
    }

    #[test]
    fn stream_walks_are_in_region_and_sequential() {
        let a = AddressSpace::new(1, fp());
        let first = a.stream(Region::SharedBuffer, 0);
        let second = a.stream(Region::SharedBuffer, 1);
        assert_eq!(second - first, 8);
        for i in 0..100_000u64 {
            assert!(a.contains(Region::SharedBuffer, a.stream(Region::SharedBuffer, i)));
        }
    }

    #[test]
    fn flat_sampler_matches_sample_bit_for_bit() {
        let a = AddressSpace::new(1, fp());
        for (case, &region) in Region::ALL.iter().enumerate() {
            for &skew in &[1.0, 1.1, 1.3, 0.5] {
                let prepared = a.flat_sampler(region, skew);
                let mut r1 = Rng64::seed_from(0xF1A7 + case as u64);
                let mut r2 = r1.clone();
                for draw in 0..2_000 {
                    assert_eq!(
                        a.sample(region, skew, &mut r1),
                        prepared.sample(&mut r2),
                        "{region} skew={skew} draw={draw}"
                    );
                }
                assert_eq!(r1.next_u64(), r2.next_u64(), "rng streams diverged");
            }
        }
    }

    #[test]
    fn hot_cold_sampler_matches_sample_hot_cold_bit_for_bit() {
        let a = AddressSpace::new(2, fp());
        let mut g = Rng64::seed_from(0x401C);
        for case in 0..32u64 {
            let region = Region::ALL[(case % Region::ALL.len() as u64) as usize];
            let hot_frac = g.next_f64();
            let hot_bytes = g.gen_range(0..2 << 20);
            let skew = if case % 5 == 0 {
                1.0
            } else {
                0.8 + g.next_f64()
            };
            let prepared = a.hot_cold_sampler(region, hot_frac, hot_bytes, skew);
            let mut r1 = Rng64::seed_from(0x9001 + case);
            let mut r2 = r1.clone();
            for draw in 0..2_000 {
                assert_eq!(
                    a.sample_hot_cold(region, hot_frac, hot_bytes, skew, &mut r1),
                    prepared.sample(&mut r2),
                    "case {case} {region} draw={draw}"
                );
            }
            assert_eq!(r1.next_u64(), r2.next_u64(), "rng streams diverged");
        }
    }

    #[test]
    fn display_is_nonempty() {
        for &r in Region::ALL {
            assert!(!r.to_string().is_empty());
        }
    }
}
