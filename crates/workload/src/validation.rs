//! Workload-model validation.
//!
//! DESIGN.md's substitution argument rests on the synthetic profiles
//! reproducing the *observable* behaviour of the paper's workloads. This
//! module measures what a profile actually generates — OS instruction
//! share, invocation-length distribution, instruction mix, AState
//! diversity — so the claim can be checked mechanically (the
//! `calibration` bench binary prints the table; unit tests pin the
//! tolerances).

use crate::generator::{Segment, ThreadWorkload};
use crate::profile::Profile;
use core::fmt;
use osoffload_sim::Histogram;

/// Measured behaviour of one profile over a generated stream.
#[derive(Debug, Clone)]
pub struct ProfileValidation {
    /// Profile name.
    pub name: &'static str,
    /// Fraction of generated instructions that were privileged.
    pub realized_os_share: f64,
    /// The profile's analytic expectation for the same quantity.
    pub expected_os_share: f64,
    /// Mean privileged-invocation length (instructions).
    pub mean_invocation_len: f64,
    /// The analytic expectation (before disturbances).
    pub expected_invocation_len: f64,
    /// Distribution of invocation lengths.
    pub invocation_len_hist: Histogram,
    /// Fraction of user instructions that access data memory.
    pub user_mem_ratio: f64,
    /// Fraction of user instructions that are conditional branches.
    pub user_branch_ratio: f64,
    /// Distinct `(g1, i0, i1)` register images seen at trap entry —
    /// bounded AState diversity is what makes the 200-entry CAM viable.
    pub distinct_reg_images: usize,
    /// Invocations shorter than 100 instructions (the Figure 4 `N=0` vs
    /// `N=100` population).
    pub sub_100_frac: f64,
}

impl ProfileValidation {
    /// Relative error of the realized OS share against the expectation.
    pub fn os_share_error(&self) -> f64 {
        if self.expected_os_share == 0.0 {
            return 0.0;
        }
        (self.realized_os_share - self.expected_os_share).abs() / self.expected_os_share
    }
}

impl fmt::Display for ProfileValidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: OS {:.1}% (expected {:.1}%), mean invocation {:.0} insn, {} AStates",
            self.name,
            self.realized_os_share * 100.0,
            self.expected_os_share * 100.0,
            self.mean_invocation_len,
            self.distinct_reg_images
        )
    }
}

/// Generates `min_instructions` of the profile's stream and measures it.
///
/// # Examples
///
/// Note that invocation lengths are heavy-tailed (a 64 KB `read` runs
/// ~20 K instructions), so short validation windows carry visible
/// sampling noise on the mean; use ≥1 M instructions for tight
/// comparisons.
///
/// ```
/// use osoffload_workload::{validation::validate, Profile};
///
/// let v = validate(&Profile::apache(), 1_000_000, 42);
/// assert!(v.os_share_error() < 0.30, "{v}");
/// assert!(v.distinct_reg_images < 250); // fits the paper's 200-entry CAM
/// ```
pub fn validate(profile: &Profile, min_instructions: u64, seed: u64) -> ProfileValidation {
    let mut wl = ThreadWorkload::new(profile.clone(), 0, seed);
    let mut user_instr = 0u64;
    let mut os_instr = 0u64;
    let mut invocations = 0u64;
    let mut sub_100 = 0u64;
    let mut hist = Histogram::new();
    let mut reg_images = std::collections::HashSet::new();
    let mut user_mem = 0u64;
    let mut user_branch = 0u64;
    let mut user_sampled = 0u64;

    while user_instr + os_instr < min_instructions {
        match wl.next_segment() {
            Segment::User { len } => {
                user_instr += len;
                // Sample up to 64 instructions per burst for the mix
                // ratios (sampling keeps validation fast on long bursts).
                for _ in 0..len.min(64) {
                    let spec = wl.user_instr();
                    user_sampled += 1;
                    user_mem += u64::from(spec.mem.is_some());
                    user_branch += u64::from(spec.branch.is_some());
                }
            }
            Segment::Os(inv) => {
                os_instr += inv.actual_len;
                invocations += 1;
                hist.record(inv.actual_len);
                sub_100 += u64::from(inv.actual_len < 100);
                reg_images.insert(inv.regs);
            }
        }
    }

    ProfileValidation {
        name: profile.name,
        realized_os_share: os_instr as f64 / (user_instr + os_instr) as f64,
        expected_os_share: profile.expected_os_share(),
        mean_invocation_len: hist.mean(),
        expected_invocation_len: profile.expected_invocation_len(),
        invocation_len_hist: hist,
        user_mem_ratio: user_mem as f64 / user_sampled.max(1) as f64,
        user_branch_ratio: user_branch as f64 / user_sampled.max(1) as f64,
        distinct_reg_images: reg_images.len(),
        sub_100_frac: sub_100 as f64 / invocations.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_tracks_its_expectations() {
        for profile in Profile::all_server()
            .into_iter()
            .chain(Profile::all_compute())
        {
            let v = validate(&profile, 1_500_000, 7);
            // Invocation lengths are heavy-tailed, so accept either a
            // relative or a small absolute deviation (compute profiles
            // see only dozens of invocations even in long windows).
            let abs = (v.realized_os_share - v.expected_os_share).abs();
            // The analytic expectation deliberately excludes the
            // disturbances (interrupt extensions, early returns), which
            // bias long-call profiles upward; 40% relative or 2 points
            // absolute covers that plus heavy-tail sampling noise.
            assert!(
                v.os_share_error() < 0.40 || abs < 0.02,
                "{}: realized {:.3} vs expected {:.3}",
                v.name,
                v.realized_os_share,
                v.expected_os_share
            );
            let ratio = v.mean_invocation_len / v.expected_invocation_len;
            assert!(
                (0.4..2.2).contains(&ratio),
                "{}: invocation mean off by {ratio:.2}x",
                v.name
            );
        }
    }

    #[test]
    fn astate_universe_fits_the_cam() {
        for profile in Profile::all_server() {
            let v = validate(&profile, 600_000, 3);
            // Syscall register images recur; only async interrupts add
            // unbounded noise, and they are a few percent of the mix.
            assert!(
                v.distinct_reg_images < 400,
                "{}: {} register images",
                v.name,
                v.distinct_reg_images
            );
        }
    }

    #[test]
    fn apache_has_a_short_invocation_population() {
        // The N=0 vs N=100 distinction of Figure 4 needs sub-100-insn
        // invocations (TLB refills).
        let v = validate(&Profile::apache(), 400_000, 9);
        assert!(
            v.sub_100_frac > 0.15,
            "apache sub-100 fraction = {:.3}",
            v.sub_100_frac
        );
        // Derby's pattern "(b)" has far fewer.
        let d = validate(&Profile::derby(), 400_000, 9);
        assert!(d.sub_100_frac < v.sub_100_frac);
    }

    #[test]
    fn user_mix_ratios_match_profile_knobs() {
        let p = Profile::specjbb();
        let v = validate(&p, 300_000, 5);
        assert!((v.user_mem_ratio - p.user_mem_prob).abs() < 0.05);
        assert!((v.user_branch_ratio - p.user_branch_prob).abs() < 0.05);
    }

    #[test]
    fn display_is_nonempty() {
        let v = validate(&Profile::mcf(), 100_000, 1);
        assert!(!v.to_string().is_empty());
    }
}
