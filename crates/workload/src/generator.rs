//! The workload generator: turns a [`Profile`] into a deterministic
//! stream of execution *segments* (user bursts and privileged
//! invocations) and per-instruction behaviour specs.
//!
//! One [`ThreadWorkload`] models one software thread. The system crate
//! drives it: fetch the next [`Segment`], execute its instructions by
//! asking for an [`InstrSpec`] per instruction, feed each spec through
//! the core and memory models, repeat.

use crate::address_space::{AddressSpace, FlatSampler, HotColdSampler, Region};
use crate::catalog::{OsClass, SyscallId};
use crate::invocation::OsInvocation;
use crate::profile::Profile;
use core::fmt;
use osoffload_sim::{FastMod, Rng64, ZipfApprox};

/// One data-memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Whether this is a store.
    pub write: bool,
}

/// Behaviour of a single dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrSpec {
    /// Fetch address.
    pub pc: u64,
    /// Data access, if this instruction touches memory.
    pub mem: Option<MemRef>,
    /// Conditional branch outcome, if this instruction is a branch.
    pub branch: Option<bool>,
}

/// Per-branch taken bias, derived from the branch's PC.
///
/// Real branch streams are predictable because most *static* branches
/// are strongly biased (loop back-edges taken, error guards not taken)
/// with a minority of data-dependent ones. An IID coin per dynamic
/// branch would cap any predictor at the coin's entropy; hashing the PC
/// into a bias class restores the per-branch structure that bimodal
/// predictors exploit — and that user/OS aliasing destroys (§VI-A).
#[inline]
fn branch_bias(pc: u64, data_dependent_taken: f64) -> f64 {
    let h = pc.wrapping_mul(0x2545_F491_4F6C_DD1D);
    match (h >> 60) & 0x7 {
        0..=4 => 0.94,             // loop back-edges and hot paths
        5 | 6 => 0.06,             // guards and error checks
        _ => data_dependent_taken, // genuinely data-dependent
    }
}

/// One scheduling unit of the thread's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// `len` user-mode instructions.
    User {
        /// Number of instructions in the burst (≥ 1).
        len: u64,
    },
    /// One privileged invocation.
    Os(OsInvocation),
}

/// Prepared per-instruction samplers, rebuilt whenever the profile
/// changes (construction and phase boundaries). Each is bit-identical
/// to the on-the-fly sampling call it replaces; preparing them hoists
/// the Zipf `powf` constants and scatter reciprocals out of the
/// per-instruction path, which dominated the simulator's profile.
#[derive(Debug, Clone, Copy)]
struct Samplers {
    /// Taken-branch target block over the user code region (skew 1.1).
    user_code_zipf: ZipfApprox,
    /// `profile.footprints.user_code.max(64)`, for the sequential-pc wrap.
    user_code_size: u64,
    /// User-mode accesses into the shared buffer pool.
    user_shared: FlatSampler,
    /// User-mode accesses into the private data working set.
    user_data: HotColdSampler,
    /// OS-side accesses into the shared buffer pool (skew 1.15).
    os_shared: FlatSampler,
    /// OS accesses into global kernel data.
    os_kernel_data: HotColdSampler,
    /// OS accesses into per-thread kernel stack/task data (skew 1.0).
    os_kernel_thread: FlatSampler,
}

impl Samplers {
    fn new(space: &AddressSpace, p: &Profile) -> Self {
        let user_code_size = p.footprints.user_code.max(64);
        Samplers {
            user_code_zipf: ZipfApprox::new(user_code_size / 64, 1.1),
            user_code_size,
            user_shared: space.flat_sampler(Region::SharedBuffer, p.user_locality_skew),
            user_data: space.hot_cold_sampler(
                Region::UserData,
                p.user_hot_frac,
                p.user_hot_bytes,
                p.user_locality_skew,
            ),
            os_shared: space.flat_sampler(Region::SharedBuffer, 1.15),
            os_kernel_data: space.hot_cold_sampler(
                Region::KernelData,
                p.os_hot_frac,
                p.os_hot_bytes,
                p.os_locality_skew,
            ),
            os_kernel_thread: space.flat_sampler(Region::KernelThread, 1.0),
        }
    }
}

/// Deterministic per-thread workload stream.
///
/// # Examples
///
/// ```
/// use osoffload_workload::{Profile, ThreadWorkload, Segment};
///
/// let mut w = ThreadWorkload::new(Profile::apache(), 0, 42);
/// // Segments alternate user burst / OS invocation.
/// let first = w.next_segment();
/// assert!(matches!(first, Segment::User { .. }));
/// let second = w.next_segment();
/// assert!(matches!(second, Segment::Os(_)));
/// ```
pub struct ThreadWorkload {
    profile: Profile,
    /// Remaining program phases as `(start_instruction, profile)`,
    /// soonest first (§III-B discusses the estimator's behaviour across
    /// program phases).
    phases: Vec<(u64, Profile)>,
    /// Instructions generated so far (segment granularity).
    generated: u64,
    space: AddressSpace,
    rng: Rng64,
    mix_ids: Vec<SyscallId>,
    mix_cumulative: Vec<f64>,
    /// Per-mix-slot I/O argument contexts, precomputed so drawing an
    /// invocation never allocates ([`Profile::io_contexts`] builds a
    /// fresh `Vec` per call). Parallel to `mix_ids`; empty for
    /// interrupt-class entries, which never consult contexts.
    mix_contexts: Vec<Vec<(u64, u64)>>,
    /// Probability that the next invocation is a spill/fill trap rather
    /// than a draw from the syscall mix.
    spill_fill_share: f64,
    next_is_user: bool,
    user_pc: u64,
    /// Per-invocation streaming cursor into the shared buffers.
    shared_cursor: u64,
    /// Ring of the thread's most recent user-mode data addresses. Short
    /// traps and copy-in/copy-out operate on exactly these lines (a trap
    /// handler touches the faulting thread's *current* stack, buffers and
    /// translations), which is what makes them cheap to run locally and
    /// expensive to run on a remote core.
    recent_user: Vec<u64>,
    recent_next: usize,
    /// Wide-range residual register values interrupts inherit.
    residual: [u64; 3],
    /// Prepared address/branch-target samplers for the current profile.
    samplers: Samplers,
    /// Cached kernel-text PC constants for the syscall most recently
    /// generated by [`ThreadWorkload::os_instr`]. Both the handler's
    /// block offset and its body length depend only on the syscall (and
    /// the profile), while `os_instr` runs once per instruction — the
    /// cache turns two runtime divisions per OS instruction into one
    /// comparison. Invalidated on phase changes.
    os_pc: OsPcCache,
    thread_id: usize,
}

/// See [`ThreadWorkload::os_pc`].
#[derive(Debug, Clone, Copy)]
struct OsPcCache {
    /// `SyscallId::index` of the cached syscall, or `u64::MAX` when
    /// empty.
    syscall: u64,
    /// Handler block offset within kernel text.
    block_off: u64,
    /// Exact remainder by the handler body length in bytes.
    body: FastMod,
}

impl OsPcCache {
    const EMPTY: OsPcCache = OsPcCache {
        syscall: u64::MAX,
        block_off: 0,
        body: FastMod::ONE,
    };
}

impl fmt::Debug for ThreadWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadWorkload")
            .field("profile", &self.profile.name)
            .field("thread", &self.thread_id)
            .finish()
    }
}

impl ThreadWorkload {
    /// Creates the stream for software thread `thread_id` of `profile`.
    pub fn new(profile: Profile, thread_id: usize, seed: u64) -> Self {
        let space = AddressSpace::new(thread_id, profile.footprints);
        let mut rng =
            Rng64::seed_from(seed ^ (thread_id as u64).wrapping_mul(0xA5A5_5A5A_1234_5678));
        let mut mix_ids = Vec::with_capacity(profile.syscall_mix.len());
        let mut mix_cumulative = Vec::with_capacity(profile.syscall_mix.len());
        let mut mix_contexts = Vec::with_capacity(profile.syscall_mix.len());
        let mut acc = 0.0;
        for &(id, w) in &profile.syscall_mix {
            acc += w;
            mix_ids.push(id);
            mix_cumulative.push(acc);
            mix_contexts.push(if id.spec().class == OsClass::Interrupt {
                Vec::new()
            } else {
                profile.io_contexts(id)
            });
        }
        assert!(
            acc > 0.0,
            "ThreadWorkload: profile has an empty syscall mix"
        );
        let spill_fill_share = if profile.include_spill_fill {
            let r = profile.spill_fill_rate * profile.user_burst_mean;
            r / (1.0 + r)
        } else {
            0.0
        };
        let user_pc = space.base(Region::UserCode);
        let samplers = Samplers::new(&space, &profile);
        let recent_user = vec![space.base(Region::UserData); 32];
        let residual = [
            rng.next_u64() >> 16,
            rng.next_u64() >> 16,
            rng.next_u64() >> 16,
        ];
        ThreadWorkload {
            profile,
            phases: Vec::new(),
            generated: 0,
            space,
            rng,
            mix_ids,
            mix_cumulative,
            mix_contexts,
            spill_fill_share,
            next_is_user: true,
            user_pc,
            shared_cursor: 0,
            recent_user,
            recent_next: 0,
            residual,
            samplers,
            os_pc: OsPcCache::EMPTY,
            thread_id,
        }
    }

    /// Creates a stream that switches profile at instruction boundaries:
    /// `phases` holds `(start_instruction, profile)` pairs; execution
    /// starts with `initial` and adopts each phase's profile once the
    /// thread has generated that many instructions. Used to exercise the
    /// §III-B estimator's phase-change handling.
    ///
    /// The address-space layout (region bases and footprints) stays that
    /// of the initial profile — phases model behavioural shifts of one
    /// program, not an exec into a different binary.
    pub fn with_phases(
        initial: Profile,
        mut phases: Vec<(u64, Profile)>,
        thread_id: usize,
        seed: u64,
    ) -> Self {
        phases.sort_by_key(|&(at, _)| at);
        let mut wl = Self::new(initial, thread_id, seed);
        wl.phases = phases;
        wl
    }

    fn rebuild_mix(&mut self) {
        self.mix_ids.clear();
        self.mix_cumulative.clear();
        self.mix_contexts.clear();
        let mut acc = 0.0;
        for &(id, w) in &self.profile.syscall_mix {
            acc += w;
            self.mix_ids.push(id);
            self.mix_cumulative.push(acc);
            self.mix_contexts
                .push(if id.spec().class == OsClass::Interrupt {
                    Vec::new()
                } else {
                    self.profile.io_contexts(id)
                });
        }
        assert!(acc > 0.0, "ThreadWorkload: phase has an empty syscall mix");
        self.samplers = Samplers::new(&self.space, &self.profile);
        // `block_off` depends on the (possibly changed) profile
        // footprints.
        self.os_pc = OsPcCache::EMPTY;
        self.spill_fill_share = if self.profile.include_spill_fill {
            let r = self.profile.spill_fill_rate * self.profile.user_burst_mean;
            r / (1.0 + r)
        } else {
            0.0
        };
    }

    fn maybe_enter_phase(&mut self) {
        while let Some(&(at, _)) = self.phases.first() {
            if self.generated < at {
                break;
            }
            let (_, profile) = self.phases.remove(0);
            self.profile = profile;
            self.rebuild_mix();
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// This thread's address-space view.
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// The software thread id.
    pub fn thread_id(&self) -> usize {
        self.thread_id
    }

    /// Produces the next segment. User bursts and privileged invocations
    /// strictly alternate; burst lengths are exponentially distributed
    /// around the profile's mean.
    pub fn next_segment(&mut self) -> Segment {
        self.maybe_enter_phase();
        if self.next_is_user {
            self.next_is_user = false;
            let mean = self.profile.user_burst_mean * (1.0 - self.spill_fill_share).max(0.1);
            let len = (self.rng.sample_exp(mean) as u64).max(1);
            self.generated += len;
            Segment::User { len }
        } else {
            self.next_is_user = true;
            let inv = self.next_invocation();
            self.generated += inv.actual_len;
            Segment::Os(inv)
        }
    }

    /// Instructions generated so far (at segment granularity).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn next_invocation(&mut self) -> OsInvocation {
        // Spill/fill traps interleave with the syscall mix when enabled.
        if self.spill_fill_share > 0.0 && self.rng.gen_bool(self.spill_fill_share) {
            let id = if self.rng.gen_bool(0.5) {
                SyscallId::WindowSpill
            } else {
                SyscallId::WindowFill
            };
            // The stack-pointer-ish argument clusters into a few values
            // (call depths repeat), so these traps remain predictable.
            let depth_bucket = self.rng.gen_range(0..4);
            return OsInvocation::materialize(
                id,
                depth_bucket,
                0,
                self.profile.length_jitter_prob,
                self.profile.length_jitter_span,
                0.0,
                0,
                &mut self.rng,
            );
        }

        let pick = self.rng.sample_cumulative(&self.mix_cumulative);
        let id = self.mix_ids[pick];
        if id.spec().class == OsClass::Interrupt {
            // Asynchronous arrival: registers are whatever user values
            // happen to be live — effectively random, so the predictor
            // cannot learn these (§III-A's misprediction source).
            self.residual = [
                self.rng.next_u64() >> 16,
                self.rng.next_u64() >> 16,
                self.rng.next_u64() >> 16,
            ];
            return OsInvocation::materialize_interrupt(id, self.residual, &mut self.rng);
        }

        let contexts = &self.mix_contexts[pick];
        let (arg0, arg1) = contexts[self.rng.gen_range(0..contexts.len() as u64) as usize];
        self.shared_cursor = self.rng.gen_range(0..1 << 20);
        OsInvocation::materialize(
            id,
            arg0,
            arg1,
            self.profile.length_jitter_prob,
            self.profile.length_jitter_span,
            self.profile.irq_mean_interval,
            self.profile.irq_nested_len,
            &mut self.rng,
        )
    }

    /// Behaviour of the next user-mode instruction.
    pub fn user_instr(&mut self) -> InstrSpec {
        let p = &self.profile;
        // Straight-line fetch with taken branches jumping to a hot block.
        let pc = self.user_pc;
        let branch = if self.rng.gen_bool(p.user_branch_prob) {
            Some(self.rng.gen_bool(branch_bias(pc, p.user_branch_taken)))
        } else {
            None
        };
        if branch == Some(true) {
            let block = self.samplers.user_code_zipf.sample(&mut self.rng);
            self.user_pc = self.space.base(Region::UserCode) + block * 64;
        } else {
            let base = self.space.base(Region::UserCode);
            let size = self.samplers.user_code_size;
            // Subtract-to-wrap equals `% size` here: the offset stays
            // below `size` between calls, so at most one subtraction runs
            // (the loop only spins after a phase shrinks the footprint).
            let mut off = self.user_pc - base + 4;
            while off >= size {
                off -= size;
            }
            self.user_pc = base + off;
        }
        let mem = if self.rng.gen_bool(p.user_mem_prob) {
            let m = if self.rng.gen_bool(p.user_shared_frac) {
                MemRef {
                    addr: self.samplers.user_shared.sample(&mut self.rng),
                    write: self.rng.gen_bool(p.user_shared_write_frac),
                }
            } else {
                MemRef {
                    addr: self.samplers.user_data.sample(&mut self.rng),
                    write: self.rng.gen_bool(p.user_write_frac),
                }
            };
            self.recent_user[self.recent_next] = m.addr;
            self.recent_next = if self.recent_next + 1 == self.recent_user.len() {
                0
            } else {
                self.recent_next + 1
            };
            Some(m)
        } else {
            None
        };
        InstrSpec { pc, mem, branch }
    }

    /// Fraction of an invocation's user-side accesses that hit the
    /// thread's *recent* lines rather than the wider shared pool.
    fn recent_frac(class: OsClass) -> f64 {
        match class {
            // Fault handlers and window traps operate on exactly the
            // state the user just touched.
            OsClass::Fault | OsClass::SpillFill => 0.9,
            // Syscalls copy in/out of buffers the user recently built.
            OsClass::Syscall => 0.5,
            // Device interrupts have no affinity with the preempted code.
            OsClass::Interrupt => 0.1,
        }
    }

    /// Behaviour of instruction `j` (0-based) of privileged invocation
    /// `inv`.
    pub fn os_instr(&mut self, inv: &OsInvocation, j: u64) -> InstrSpec {
        let spec = inv.syscall.spec();

        // Each entry point owns a code block in the (globally shared)
        // kernel text; the handler loops within it, so repeated
        // invocations — from any thread — hit the same lines. This is the
        // constructive interference at a shared OS core (§I).
        let idx = inv.syscall.index() as u64;
        if self.os_pc.syscall != idx {
            let body_bytes: u64 = match spec.class {
                // Window traps and TLB refills are a handful of
                // hand-written assembly lines; they barely perturb the
                // I-cache.
                OsClass::SpillFill => 128,
                OsClass::Fault if spec.base_len < 200 => 128,
                _ => 512 + (spec.base_len / 8).min(3_584),
            };
            self.os_pc = OsPcCache {
                syscall: idx,
                block_off: (idx * 4096) % self.profile.footprints.kernel_code.max(4096),
                body: FastMod::new(body_bytes),
            };
        }
        let p = &self.profile;
        let kc_base = self.space.base(Region::KernelCode);
        let pc = kc_base + self.os_pc.block_off + self.os_pc.body.rem(j * 4);

        let branch = if self.rng.gen_bool(p.os_branch_prob) {
            Some(self.rng.gen_bool(branch_bias(pc, p.os_branch_taken)))
        } else {
            None
        };

        let mem = if self.rng.gen_bool(p.os_mem_prob) {
            let r = self.rng.next_f64();
            if r < spec.user_shared_frac {
                // User-side accesses: partly the thread's *recent* lines
                // (the faulting stack, the buffer just built for this
                // very call), partly the wider shared pool. Running the
                // handler on a remote core bounces exactly the lines the
                // user core has warm — the coherence traffic source of
                // §V-A — while running it locally hits L1.
                let addr = if self.rng.gen_bool(Self::recent_frac(spec.class)) {
                    let i = self.rng.gen_range(0..self.recent_user.len() as u64) as usize;
                    self.recent_user[i]
                } else {
                    self.samplers.os_shared.sample(&mut self.rng)
                };
                Some(MemRef {
                    addr,
                    write: self.rng.gen_bool(spec.shared_write_frac),
                })
            } else if r < spec.user_shared_frac + spec.kernel_data_frac {
                Some(MemRef {
                    addr: self.samplers.os_kernel_data.sample(&mut self.rng),
                    write: self.rng.gen_bool(p.os_write_frac),
                })
            } else {
                Some(MemRef {
                    addr: self.samplers.os_kernel_thread.sample(&mut self.rng),
                    write: self.rng.gen_bool(p.os_write_frac),
                })
            }
        } else {
            None
        };
        InstrSpec { pc, mem, branch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::OsClass;

    #[test]
    fn segments_strictly_alternate() {
        let mut w = ThreadWorkload::new(Profile::derby(), 0, 7);
        for i in 0..50 {
            let s = w.next_segment();
            if i % 2 == 0 {
                assert!(matches!(s, Segment::User { .. }), "segment {i}");
            } else {
                assert!(matches!(s, Segment::Os(_)), "segment {i}");
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ThreadWorkload::new(Profile::apache(), 0, 11);
        let mut b = ThreadWorkload::new(Profile::apache(), 0, 11);
        for _ in 0..40 {
            assert_eq!(a.next_segment(), b.next_segment());
            assert_eq!(a.user_instr(), b.user_instr());
        }
    }

    #[test]
    fn different_threads_differ() {
        let mut a = ThreadWorkload::new(Profile::apache(), 0, 11);
        let mut b = ThreadWorkload::new(Profile::apache(), 1, 11);
        let sa: Vec<Segment> = (0..10).map(|_| a.next_segment()).collect();
        let sb: Vec<Segment> = (0..10).map(|_| b.next_segment()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn realized_os_share_tracks_profile_expectation() {
        let profile = Profile::apache();
        let expected = profile.expected_os_share();
        let mut w = ThreadWorkload::new(profile, 0, 3);
        let (mut user, mut os) = (0u64, 0u64);
        for _ in 0..4_000 {
            match w.next_segment() {
                Segment::User { len } => user += len,
                Segment::Os(inv) => os += inv.actual_len,
            }
        }
        let share = os as f64 / (os + user) as f64;
        assert!(
            (share - expected).abs() < 0.08,
            "realized {share:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn spill_fill_absent_by_default_present_when_enabled() {
        let mut w = ThreadWorkload::new(Profile::apache(), 0, 5);
        let mut saw_sf = false;
        for _ in 0..2_000 {
            if let Segment::Os(inv) = w.next_segment() {
                saw_sf |= inv.class() == OsClass::SpillFill;
            }
        }
        assert!(
            !saw_sf,
            "spill/fill generated despite include_spill_fill=false"
        );

        let mut profile = Profile::apache();
        profile.include_spill_fill = true;
        let mut w = ThreadWorkload::new(profile, 0, 5);
        let mut sf = 0;
        let mut total = 0;
        for _ in 0..4_000 {
            if let Segment::Os(inv) = w.next_segment() {
                total += 1;
                if inv.class() == OsClass::SpillFill {
                    sf += 1;
                    assert!(inv.actual_len < 30);
                }
            }
        }
        assert!(
            sf > total / 3,
            "spill/fill {sf}/{total} — should dominate counts"
        );
    }

    #[test]
    fn user_instrs_stay_in_user_regions() {
        let mut w = ThreadWorkload::new(Profile::specjbb(), 2, 9);
        w.next_segment();
        for _ in 0..2_000 {
            let i = w.user_instr();
            let space = *w.address_space();
            assert!(space.contains(Region::UserCode, i.pc), "pc {:#x}", i.pc);
            if let Some(m) = i.mem {
                assert!(
                    space.contains(Region::UserData, m.addr)
                        || space.contains(Region::SharedBuffer, m.addr),
                    "user access outside user regions: {:#x}",
                    m.addr
                );
            }
        }
    }

    #[test]
    fn os_instrs_touch_kernel_and_shared_regions() {
        let mut w = ThreadWorkload::new(Profile::apache(), 0, 13);
        let mut regions = std::collections::HashSet::new();
        for _ in 0..200 {
            w.next_segment();
            if let Segment::Os(inv) = w.next_segment() {
                let space = *w.address_space();
                for j in 0..inv.actual_len.min(60) {
                    let i = w.os_instr(&inv, j);
                    assert!(space.contains(Region::KernelCode, i.pc));
                    if let Some(m) = i.mem {
                        for &r in Region::ALL {
                            if space.contains(r, m.addr) {
                                regions.insert(r);
                            }
                        }
                    }
                }
            }
        }
        assert!(regions.contains(&Region::KernelData));
        assert!(regions.contains(&Region::KernelThread));
        // User-side traffic is either the shared pool or the thread's
        // recent user lines (the recent-ring affinity model).
        assert!(regions.contains(&Region::SharedBuffer) || regions.contains(&Region::UserData));
        assert!(!regions.contains(&Region::UserCode));
    }

    #[test]
    fn kernel_code_pcs_are_shared_across_threads() {
        let mut a = ThreadWorkload::new(Profile::apache(), 0, 17);
        let mut b = ThreadWorkload::new(Profile::apache(), 1, 23);
        // Force the same syscall on both threads and compare fetch PCs.
        let inv_a = loop {
            a.next_segment();
            if let Segment::Os(inv) = a.next_segment() {
                if inv.syscall == SyscallId::Read {
                    break inv;
                }
            }
        };
        let inv_b = loop {
            b.next_segment();
            if let Segment::Os(inv) = b.next_segment() {
                if inv.syscall == SyscallId::Read {
                    break inv;
                }
            }
        };
        assert_eq!(a.os_instr(&inv_a, 0).pc, b.os_instr(&inv_b, 0).pc);
    }

    #[test]
    fn interrupt_invocations_have_unpredictable_regs() {
        let mut profile = Profile::apache();
        // Only interrupts in the mix.
        profile.syscall_mix = vec![(SyscallId::IrqNetwork, 1.0)];
        let mut w = ThreadWorkload::new(profile, 0, 29);
        let mut regs = std::collections::HashSet::new();
        for _ in 0..50 {
            w.next_segment();
            if let Segment::Os(inv) = w.next_segment() {
                regs.insert(inv.regs);
            }
        }
        assert!(
            regs.len() > 45,
            "interrupt regs repeat too much: {}",
            regs.len()
        );
    }

    #[test]
    fn syscall_regs_recur_for_predictability() {
        let mut w = ThreadWorkload::new(Profile::apache(), 0, 31);
        let mut regs = std::collections::HashSet::new();
        let mut count = 0;
        for _ in 0..4_000 {
            if let Segment::Os(inv) = w.next_segment() {
                if inv.class() == OsClass::Syscall {
                    regs.insert(inv.regs);
                    count += 1;
                }
            }
        }
        // A bounded AState universe is what makes a 200-entry table work.
        assert!(count > 1_000);
        assert!(regs.len() < 200, "{} distinct syscall AStates", regs.len());
    }

    #[test]
    fn phased_stream_switches_mix_at_boundary() {
        // Phase 1: apache (OS-heavy, short bursts). Phase 2: a compute
        // profile (rare OS entry) from 100K instructions on.
        let mut wl = ThreadWorkload::with_phases(
            Profile::apache(),
            vec![(100_000, Profile::blackscholes())],
            0,
            11,
        );
        let mut early_user = Vec::new();
        let mut late_user = Vec::new();
        for _ in 0..3_000 {
            let before = wl.generated();
            if let Segment::User { len } = wl.next_segment() {
                if before < 80_000 {
                    early_user.push(len);
                } else if before > 150_000 {
                    late_user.push(len);
                }
            }
            if wl.generated() > 800_000 {
                break;
            }
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
        assert!(
            mean(&late_user) > mean(&early_user) * 5.0,
            "user bursts must lengthen after the phase change: {:.0} -> {:.0}",
            mean(&early_user),
            mean(&late_user)
        );
    }

    #[test]
    fn phases_apply_in_order() {
        let mut wl = ThreadWorkload::with_phases(
            Profile::apache(),
            vec![(50_000, Profile::mcf()), (20_000, Profile::derby())],
            0,
            3,
        );
        let mut saw_derby_burst = false;
        while wl.generated() < 45_000 {
            if let Segment::User { len } = wl.next_segment() {
                if wl.generated() > 25_000 && len > 8_000 {
                    saw_derby_burst = true;
                }
            }
        }
        assert!(saw_derby_burst, "derby's long bursts should appear mid-way");
        assert_eq!(wl.profile().name, "derby");
        while wl.generated() < 60_000 {
            wl.next_segment();
        }
        // Phase entry is lazy (checked at segment start): take one more
        // segment to observe the switch.
        wl.next_segment();
        assert_eq!(wl.profile().name, "mcf");
    }

    #[test]
    fn debug_is_nonempty() {
        let w = ThreadWorkload::new(Profile::mcf(), 0, 1);
        assert!(!format!("{w:?}").is_empty());
    }
}
