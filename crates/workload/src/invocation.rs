//! Privileged-invocation descriptors.
//!
//! An [`OsInvocation`] is one contiguous privileged-mode sequence: a
//! system call, fault handler, interrupt service routine, or SPARC
//! spill/fill trap. The generator materialises each invocation with
//!
//! * the **register values** (`%g1`, `%i0`, `%i1`) visible at trap entry —
//!   the inputs to the paper's AState hash;
//! * the **deterministic service length** implied by the entry point and
//!   its arguments;
//! * the **actual length**, which adds the disturbances that make
//!   prediction non-trivial: early returns ("the read syscall may return
//!   prematurely if end-of-file is encountered"), small data-dependent
//!   jitter, and device-interrupt extensions ("interrupts typically
//!   extend the duration of OS invocations, almost never decreasing it",
//!   §III-A).

use crate::catalog::{OsClass, SyscallId, EARLY_RETURN_FACTOR};
use core::fmt;
use osoffload_sim::Rng64;

/// The register image of a syscall's first argument.
///
/// Real `%i0` values are descriptors and pointers whose bit patterns are
/// routine-specific (each call site passes its own objects), not tiny
/// integers. A plain small-integer encoding would make the XOR hash
/// collide across unrelated syscalls — the paper's AState works because
/// the raw register *values* carry that per-routine structure, so we
/// synthesise it: the routine's identity occupies the high bits and the
/// logical argument the low bits.
#[inline]
pub fn pointer_image(syscall: SyscallId, arg0: u64) -> u64 {
    (syscall.trap_number() << 16) | arg0
}

/// One privileged-mode invocation, fully materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsInvocation {
    /// Which entry point.
    pub syscall: SyscallId,
    /// `(%g1, %i0, %i1)` at trap entry — the predictor's hash inputs
    /// (besides `PSTATE` and the hardwired-zero `%g0`).
    pub regs: [u64; 3],
    /// Deterministic service length in instructions for these arguments.
    pub service_len: u64,
    /// Actual length in instructions, after disturbances. Never zero.
    pub actual_len: u64,
    /// Portion of `actual_len` contributed by nested device interrupts.
    pub interrupt_extra: u64,
    /// Whether the invocation returned early (EOF and friends).
    pub early_return: bool,
}

impl OsInvocation {
    /// Builds an invocation of `syscall` with explicit `(arg0, arg1)`.
    ///
    /// Disturbance model, in order:
    /// 1. with `spec.early_return_prob`, the call completes at
    ///    [`EARLY_RETURN_FACTOR`] of its service length;
    /// 2. with `jitter_prob`, the length is perturbed uniformly within
    ///    ±`jitter_span` (data-dependent path variation — small enough to
    ///    land in the paper's "within ±5%" accuracy bucket);
    /// 3. if the entry point runs with interrupts enabled, a device
    ///    interrupt may be nested inside, *adding* `irq_len` instructions
    ///    (probability grows with the invocation's own length:
    ///    `1 − exp(−len / irq_mean_interval)`).
    #[allow(clippy::too_many_arguments)]
    pub fn materialize(
        syscall: SyscallId,
        arg0: u64,
        arg1: u64,
        jitter_prob: f64,
        jitter_span: f64,
        irq_mean_interval: f64,
        irq_len: u64,
        rng: &mut Rng64,
    ) -> Self {
        let spec = syscall.spec();
        let service_len = spec.service_len(arg1);
        let mut len = service_len as f64;
        let early_return = rng.gen_bool(spec.early_return_prob);
        if early_return {
            len *= EARLY_RETURN_FACTOR;
        }
        if rng.gen_bool(jitter_prob) {
            let f = 1.0 + (rng.next_f64() * 2.0 - 1.0) * jitter_span;
            len *= f;
        }
        let mut interrupt_extra = 0u64;
        // Spill/fill traps run with interrupts deferred; everything else
        // can be extended (§III-A).
        if spec.class != OsClass::SpillFill && irq_mean_interval > 0.0 {
            let p = 1.0 - (-len / irq_mean_interval).exp();
            if rng.gen_bool(p) {
                interrupt_extra = irq_len;
            }
        }
        let actual_len = (len as u64).max(1) + interrupt_extra;
        OsInvocation {
            syscall,
            regs: [syscall.trap_number(), pointer_image(syscall, arg0), arg1],
            service_len,
            actual_len,
            interrupt_extra,
            early_return,
        }
    }

    /// Builds a *standalone* asynchronous interrupt invocation. The
    /// registers carry residual user values (`residual` should be drawn
    /// from a wide distribution): asynchronous arrivals are exactly the
    /// invocations whose AState carries no predictive information, the
    /// paper's main source of mispredictions.
    pub fn materialize_interrupt(syscall: SyscallId, residual: [u64; 3], rng: &mut Rng64) -> Self {
        debug_assert_eq!(syscall.spec().class, OsClass::Interrupt);
        let service_len = syscall.spec().service_len(0);
        // Handler length varies with pending device work.
        let f = 0.7 + rng.next_f64() * 0.8;
        let actual_len = ((service_len as f64 * f) as u64).max(1);
        OsInvocation {
            syscall,
            regs: residual,
            service_len,
            actual_len,
            interrupt_extra: 0,
            early_return: false,
        }
    }

    /// Behavioural class of the entry point.
    pub fn class(&self) -> OsClass {
        self.syscall.spec().class
    }
}

impl fmt::Display for OsInvocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({:#x}, {:#x}) -> {} insn",
            self.syscall, self.regs[1], self.regs[2], self.actual_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(syscall: SyscallId, arg1: u64, seed: u64) -> OsInvocation {
        let mut rng = Rng64::seed_from(seed);
        OsInvocation::materialize(syscall, 4, arg1, 0.0, 0.0, 0.0, 0, &mut rng)
    }

    #[test]
    fn deterministic_without_disturbances() {
        let a = mk(SyscallId::Read, 4096, 1);
        let b = mk(SyscallId::Read, 4096, 2);
        assert_eq!(a.actual_len, b.actual_len);
        assert_eq!(a.actual_len, a.service_len);
        assert_eq!(a.regs[0], SyscallId::Read.trap_number());
        assert_eq!(a.regs[1], pointer_image(SyscallId::Read, 4));
        assert_eq!(a.regs[2], 4096);
    }

    #[test]
    fn length_scales_with_argument() {
        let small = mk(SyscallId::Read, 512, 1);
        let large = mk(SyscallId::Read, 65536, 1);
        assert!(large.actual_len > small.actual_len * 5);
    }

    #[test]
    fn early_returns_shorten() {
        // Futex has the highest early-return probability (10%); force many
        // samples and check some return early and are shorter.
        let mut rng = Rng64::seed_from(3);
        let mut shorter = 0;
        for _ in 0..500 {
            let inv =
                OsInvocation::materialize(SyscallId::Futex, 100, 0, 0.0, 0.0, 0.0, 0, &mut rng);
            if inv.early_return {
                assert!(inv.actual_len < inv.service_len);
                shorter += 1;
            } else {
                assert_eq!(inv.actual_len, inv.service_len);
            }
        }
        assert!(shorter > 5, "early returns = {shorter}");
    }

    #[test]
    fn jitter_stays_within_span() {
        let mut rng = Rng64::seed_from(4);
        for _ in 0..500 {
            // brk has zero early-return probability, isolating the jitter.
            let inv =
                OsInvocation::materialize(SyscallId::Brk, 4, 4096, 1.0, 0.03, 0.0, 0, &mut rng);
            let lo = inv.service_len as f64 * 0.97 - 1.0;
            let hi = inv.service_len as f64 * 1.03 + 1.0;
            assert!(
                (inv.actual_len as f64) >= lo && (inv.actual_len as f64) <= hi,
                "jittered length {} outside [{lo}, {hi}]",
                inv.actual_len
            );
        }
    }

    #[test]
    fn interrupts_only_extend() {
        let mut rng = Rng64::seed_from(5);
        let mut extended = 0;
        for _ in 0..500 {
            let inv = OsInvocation::materialize(
                SyscallId::Accept,
                3,
                0,
                0.0,
                0.0,
                20_000.0,
                4_000,
                &mut rng,
            );
            if inv.interrupt_extra > 0 {
                assert!(inv.actual_len > inv.service_len);
                extended += 1;
            }
        }
        // accept is ~3,600 insn; p ~ 1-exp(-0.18) ~ 16%.
        assert!(extended > 20 && extended < 250, "extended = {extended}");
    }

    #[test]
    fn longer_calls_attract_more_interrupts() {
        let mut rng = Rng64::seed_from(6);
        let count = |syscall: SyscallId, rng: &mut Rng64| {
            (0..800)
                .filter(|_| {
                    OsInvocation::materialize(syscall, 0, 0, 0.0, 0.0, 30_000.0, 2_000, rng)
                        .interrupt_extra
                        > 0
                })
                .count()
        };
        let short = count(SyscallId::GetPid, &mut rng);
        let long = count(SyscallId::Execve, &mut rng);
        assert!(long > short * 3, "short={short} long={long}");
    }

    #[test]
    fn spill_traps_never_extended() {
        let mut rng = Rng64::seed_from(7);
        for _ in 0..200 {
            let inv = OsInvocation::materialize(
                SyscallId::WindowSpill,
                0,
                0,
                0.0,
                0.0,
                100.0,
                1_000,
                &mut rng,
            );
            assert_eq!(inv.interrupt_extra, 0);
        }
    }

    #[test]
    fn standalone_interrupts_carry_residual_regs() {
        let mut rng = Rng64::seed_from(8);
        let inv = OsInvocation::materialize_interrupt(
            SyscallId::IrqNetwork,
            [0xdead, 0xbeef, 0xcafe],
            &mut rng,
        );
        assert_eq!(inv.regs, [0xdead, 0xbeef, 0xcafe]);
        assert!(inv.actual_len > 0);
        assert_eq!(inv.class(), OsClass::Interrupt);
    }

    #[test]
    fn actual_len_never_zero() {
        let mut rng = Rng64::seed_from(9);
        for _ in 0..500 {
            let inv =
                OsInvocation::materialize(SyscallId::GetPid, 0, 0, 1.0, 0.99, 0.0, 0, &mut rng);
            assert!(inv.actual_len >= 1);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!mk(SyscallId::Read, 512, 1).to_string().is_empty());
    }
}
