//! Property-style tests for the workload models, driven by seeded
//! [`Rng64`] case generation (dependency-free, bit-reproducible).

use crate::catalog::{OsClass, SyscallId};
use crate::invocation::{pointer_image, OsInvocation};
use crate::profile::Profile;
use osoffload_sim::Rng64;

const CASES: u64 = 64;

fn any_syscall(g: &mut Rng64) -> SyscallId {
    SyscallId::ALL[g.gen_range(0..SyscallId::ALL.len() as u64) as usize]
}

/// Materialised invocations always have a positive length, never shrink
/// below the early-return floor, and only ever *extend* via interrupts
/// (§III-A: "interrupts typically extend the duration of OS invocations,
/// almost never decreasing it").
#[test]
fn invocation_lengths_are_bounded() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x1E46_0000 + case);
        let syscall = any_syscall(&mut g);
        let arg1 = g.gen_range(0..1 << 17);
        let seed = g.next_u64();
        let jitter = g.next_f64();
        let mut rng = Rng64::seed_from(seed);
        let inv =
            OsInvocation::materialize(syscall, 4, arg1, jitter, 0.03, 50_000.0, 2_000, &mut rng);
        assert!(inv.actual_len >= 1);
        let floor = (inv.service_len as f64 * crate::catalog::EARLY_RETURN_FACTOR * 0.97) as u64;
        assert!(
            inv.actual_len + 1 >= floor.min(inv.service_len),
            "{}: actual {} below floor {}",
            inv.syscall,
            inv.actual_len,
            floor
        );
        if inv.interrupt_extra > 0 {
            assert!(inv.actual_len > inv.service_len.min(inv.actual_len - 1));
            assert!(syscall.spec().class != OsClass::SpillFill);
        }
    }
}

/// The pointer-image register encoding is injective over
/// `(syscall, arg0)` for catalog-sized arguments.
#[test]
fn pointer_images_are_injective() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x9043_0000 + case);
        let a = any_syscall(&mut g);
        let b = any_syscall(&mut g);
        let arg_a = g.gen_range(0..1 << 16);
        let arg_b = g.gen_range(0..1 << 16);
        let same_inputs = a == b && arg_a == arg_b;
        assert_eq!(
            pointer_image(a, arg_a) == pointer_image(b, arg_b),
            same_inputs
        );
    }
}

/// The I/O-size filter never empties the context list and never returns
/// a context above the cap when a below-cap context exists.
#[test]
fn io_context_filter_is_safe() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x10C0_0000 + case);
        let syscall = any_syscall(&mut g);
        let cap = g.gen_range(0..1 << 17);
        let mut p = Profile::apache();
        p.max_io_bytes = Some(cap);
        let contexts = p.io_contexts(syscall);
        assert!(!contexts.is_empty());
        let all = syscall.spec().arg_contexts;
        let any_under = all.iter().any(|&(_, a1)| a1 <= cap);
        if any_under {
            assert!(contexts.iter().all(|&(_, a1)| a1 <= cap));
        } else {
            assert_eq!(contexts.len(), all.len());
        }
    }
}

/// Every profile's expected OS share is a probability, and the expected
/// invocation length is positive and finite.
#[test]
fn profile_expectations_are_sane() {
    let profiles: Vec<Profile> = Profile::all_server()
        .into_iter()
        .chain(Profile::all_compute())
        .collect();
    for p in &profiles {
        let share = p.expected_os_share();
        assert!((0.0..1.0).contains(&share), "{}: share {share}", p.name);
        let len = p.expected_invocation_len();
        assert!(len > 0.0 && len.is_finite());
    }
}
