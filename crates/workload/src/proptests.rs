//! Property-based tests for the workload models.

use crate::catalog::{OsClass, SyscallId};
use crate::invocation::{pointer_image, OsInvocation};
use crate::profile::Profile;
use osoffload_sim::Rng64;
use proptest::prelude::*;

fn any_syscall() -> impl Strategy<Value = SyscallId> {
    (0..SyscallId::ALL.len()).prop_map(|i| SyscallId::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Materialised invocations always have a positive length, never
    /// shrink below the early-return floor, and only ever *extend* via
    /// interrupts (§III-A: "interrupts typically extend the duration of
    /// OS invocations, almost never decreasing it").
    #[test]
    fn invocation_lengths_are_bounded(
        syscall in any_syscall(),
        arg1 in 0u64..1 << 17,
        seed in prop::num::u64::ANY,
        jitter in 0.0f64..1.0,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let inv = OsInvocation::materialize(
            syscall, 4, arg1, jitter, 0.03, 50_000.0, 2_000, &mut rng,
        );
        prop_assert!(inv.actual_len >= 1);
        let floor = (inv.service_len as f64
            * crate::catalog::EARLY_RETURN_FACTOR
            * 0.97) as u64;
        prop_assert!(
            inv.actual_len + 1 >= floor.min(inv.service_len),
            "{}: actual {} below floor {}",
            inv.syscall,
            inv.actual_len,
            floor
        );
        if inv.interrupt_extra > 0 {
            prop_assert!(inv.actual_len > inv.service_len.min(inv.actual_len - 1));
            prop_assert!(syscall.spec().class != OsClass::SpillFill);
        }
    }

    /// The pointer-image register encoding is injective over
    /// `(syscall, arg0)` for catalog-sized arguments.
    #[test]
    fn pointer_images_are_injective(
        a in any_syscall(),
        b in any_syscall(),
        arg_a in 0u64..1 << 16,
        arg_b in 0u64..1 << 16,
    ) {
        let same_inputs = a == b && arg_a == arg_b;
        prop_assert_eq!(pointer_image(a, arg_a) == pointer_image(b, arg_b), same_inputs);
    }

    /// The I/O-size filter never empties the context list and never
    /// returns a context above the cap when a below-cap context exists.
    #[test]
    fn io_context_filter_is_safe(syscall in any_syscall(), cap in 0u64..1 << 17) {
        let mut p = Profile::apache();
        p.max_io_bytes = Some(cap);
        let contexts = p.io_contexts(syscall);
        prop_assert!(!contexts.is_empty());
        let all = syscall.spec().arg_contexts;
        let any_under = all.iter().any(|&(_, a1)| a1 <= cap);
        if any_under {
            prop_assert!(contexts.iter().all(|&(_, a1)| a1 <= cap));
        } else {
            prop_assert_eq!(contexts.len(), all.len());
        }
    }

    /// Every profile's expected OS share is a probability, and the
    /// expected invocation length is positive and finite.
    #[test]
    fn profile_expectations_are_sane(idx in 0usize..9) {
        let profiles: Vec<Profile> = Profile::all_server()
            .into_iter()
            .chain(Profile::all_compute())
            .collect();
        let p = &profiles[idx];
        let share = p.expected_os_share();
        prop_assert!((0.0..1.0).contains(&share), "{}: share {share}", p.name);
        let len = p.expected_invocation_len();
        prop_assert!(len > 0.0 && len.is_finite());
    }
}
