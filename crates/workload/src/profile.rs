//! Workload profiles.
//!
//! The paper evaluates three server workloads — Apache 2.2.6 serving CGI-
//! selected static pages, SPECjbb2005, and Derby from SPECjvm2008 — plus
//! six compute-bound applications from PARSEC (blackscholes, canneal),
//! BioBench (fasta_protein, mummer) and SPEC-CPU-2006 (mcf, hmmer). We
//! cannot run those binaries inside a synthetic kernel, so each becomes a
//! [`Profile`]: a statistical model of its instruction mix, working sets,
//! privileged-invocation mix and OS-interaction intensity, calibrated to
//! the characteristics the paper reports (OS instruction share, short-vs-
//! long invocation patterns, Table III OS-core utilisation ordering).
//! The decision machinery under test observes only register values and
//! run lengths, so reproducing those distributions exercises the same
//! code paths as the real binaries (see DESIGN.md §2).

use crate::address_space::Footprints;
use crate::catalog::SyscallId;
use core::fmt;

/// Broad workload category (used for report grouping, mirroring the
/// paper's practice of averaging the compute applications into one
/// curve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// OS-intensive server workload.
    Server,
    /// Compute-bound HPC workload.
    Compute,
}

/// A complete statistical description of one benchmark.
///
/// `PartialEq` compares every calibrated parameter; the lane engine
/// uses it to decide when two configurations draw identical workload
/// streams and may share one generation tape.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Server or compute.
    pub kind: ProfileKind,
    /// Software threads mapped to each user core (the paper maps two
    /// threads per core for server workloads, §II).
    pub threads_per_core: usize,
    /// Memory-region footprints.
    pub footprints: Footprints,
    /// Privileged entry-point mix as `(entry, weight)`; weights need not
    /// be normalised.
    pub syscall_mix: Vec<(SyscallId, f64)>,
    /// Mean user-mode instructions between privileged invocations.
    pub user_burst_mean: f64,
    /// Probability a user instruction accesses data memory.
    pub user_mem_prob: f64,
    /// Fraction of user data accesses that are writes.
    pub user_write_frac: f64,
    /// Probability a user data access targets the shared user↔kernel
    /// buffers (consuming I/O results, building requests).
    pub user_shared_frac: f64,
    /// Fraction of user shared-buffer accesses that are writes.
    pub user_shared_write_frac: f64,
    /// Probability a user instruction is a conditional branch.
    pub user_branch_prob: f64,
    /// Probability a user branch is taken.
    pub user_branch_taken: f64,
    /// Zipf skew of user data accesses (higher = hotter working set).
    pub user_locality_skew: f64,
    /// Probability a user data access lands in the hot subset of the
    /// working set (stack frames, top-level structures).
    pub user_hot_frac: f64,
    /// Size of the user hot subset in bytes.
    pub user_hot_bytes: u64,
    /// Probability an OS instruction accesses data memory.
    pub os_mem_prob: f64,
    /// Fraction of OS data accesses that are writes (outside the shared
    /// buffers, whose write fraction is per-syscall).
    pub os_write_frac: f64,
    /// Probability an OS instruction is a conditional branch.
    pub os_branch_prob: f64,
    /// Probability an OS branch is taken.
    pub os_branch_taken: f64,
    /// Zipf skew of OS data accesses.
    pub os_locality_skew: f64,
    /// Probability an OS kernel-data access lands in the kernel's hot
    /// structures (run queues, dcache heads, socket tables).
    pub os_hot_frac: f64,
    /// Size of the kernel-data hot subset in bytes.
    pub os_hot_bytes: u64,
    /// Probability an invocation's length is jittered (small
    /// data-dependent path variation, within ±`length_jitter_span`).
    pub length_jitter_prob: f64,
    /// Relative half-width of the jitter (0.03 = ±3%, inside the paper's
    /// ±5% "close prediction" bucket).
    pub length_jitter_span: f64,
    /// Mean privileged instructions between nested device interrupts
    /// (`0` disables nesting).
    pub irq_mean_interval: f64,
    /// Instructions added by one nested interrupt.
    pub irq_nested_len: u64,
    /// Whether SPARC register-window spill/fill traps are generated
    /// (§IV: the paper omits them from graphs where they skew results;
    /// `false` by default to match the headline figures).
    pub include_spill_fill: bool,
    /// Spill/fill traps per user instruction when enabled (SPARC
    /// workloads trap roughly every 1–3 K instructions).
    pub spill_fill_rate: f64,
    /// Upper bound on I/O size arguments drawn from the catalog's
    /// contexts (`None` = unrestricted). An in-memory workload like
    /// SPECjbb only issues small log writes; a file server streams 64 KB
    /// responses.
    pub max_io_bytes: Option<u64>,
}

/// Why a profile cannot drive a workload generator.
///
/// The generator samples cumulative weight tables, exponential burst
/// lengths, and Zipf working-set indices; each has preconditions that a
/// hand-edited or fuzz-mutated profile can violate. [`Profile::validate`]
/// checks them all up front so configuration layers can reject a
/// degenerate profile with a typed error instead of panicking deep in
/// the instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The syscall mix is empty: there is no invocation to draw.
    EmptySyscallMix,
    /// A mix weight is zero, negative, or non-finite.
    BadMixWeight {
        /// Name of the offending entry.
        syscall: &'static str,
        /// The weight found.
        weight: f64,
    },
    /// `threads_per_core` is zero: no thread would exist to simulate.
    ZeroThreadsPerCore,
    /// `user_burst_mean` is not finite and positive (it is the mean of
    /// an exponential draw).
    BadBurstMean {
        /// The mean found.
        mean: f64,
    },
    /// A probability-valued field is outside `[0, 1]` or non-finite.
    BadProbability {
        /// Field name.
        field: &'static str,
        /// The value found.
        value: f64,
    },
    /// A Zipf locality skew is negative or non-finite.
    BadLocalitySkew {
        /// Field name.
        field: &'static str,
        /// The value found.
        value: f64,
    },
    /// A memory-region footprint is smaller than one cache line, so the
    /// Zipf address sampler would have an empty index range.
    FootprintTooSmall {
        /// Region name.
        region: &'static str,
        /// The size found, in bytes.
        bytes: u64,
    },
    /// The interrupt inter-arrival mean is negative or non-finite
    /// (zero is valid and disables nesting).
    BadIrqInterval {
        /// The value found.
        value: f64,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::EmptySyscallMix => write!(f, "syscall mix is empty"),
            ProfileError::BadMixWeight { syscall, weight } => {
                write!(
                    f,
                    "mix weight for {syscall} must be finite and positive, got {weight}"
                )
            }
            ProfileError::ZeroThreadsPerCore => write!(f, "threads_per_core must be at least 1"),
            ProfileError::BadBurstMean { mean } => {
                write!(f, "user_burst_mean must be finite and positive, got {mean}")
            }
            ProfileError::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            ProfileError::BadLocalitySkew { field, value } => {
                write!(f, "{field} must be finite and non-negative, got {value}")
            }
            ProfileError::FootprintTooSmall { region, bytes } => {
                write!(
                    f,
                    "footprint {region} must cover at least one cache line, got {bytes} B"
                )
            }
            ProfileError::BadIrqInterval { value } => {
                write!(
                    f,
                    "irq_mean_interval must be finite and non-negative, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl Profile {
    /// Checks every generator precondition, returning the first
    /// violation found.
    ///
    /// The built-in catalog profiles always validate; this exists for
    /// profiles assembled or mutated programmatically (the fuzzer's
    /// shrunken repros travel through JSON and back).
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.syscall_mix.is_empty() {
            return Err(ProfileError::EmptySyscallMix);
        }
        for &(id, w) in &self.syscall_mix {
            if !(w.is_finite() && w > 0.0) {
                return Err(ProfileError::BadMixWeight {
                    syscall: id.spec().name,
                    weight: w,
                });
            }
        }
        if self.threads_per_core == 0 {
            return Err(ProfileError::ZeroThreadsPerCore);
        }
        if !(self.user_burst_mean.is_finite() && self.user_burst_mean > 0.0) {
            return Err(ProfileError::BadBurstMean {
                mean: self.user_burst_mean,
            });
        }
        for (field, value) in [
            ("user_mem_prob", self.user_mem_prob),
            ("user_write_frac", self.user_write_frac),
            ("user_shared_frac", self.user_shared_frac),
            ("user_shared_write_frac", self.user_shared_write_frac),
            ("user_branch_prob", self.user_branch_prob),
            ("user_branch_taken", self.user_branch_taken),
            ("user_hot_frac", self.user_hot_frac),
            ("os_mem_prob", self.os_mem_prob),
            ("os_write_frac", self.os_write_frac),
            ("os_branch_prob", self.os_branch_prob),
            ("os_branch_taken", self.os_branch_taken),
            ("os_hot_frac", self.os_hot_frac),
            ("length_jitter_prob", self.length_jitter_prob),
            ("length_jitter_span", self.length_jitter_span),
            ("spill_fill_rate", self.spill_fill_rate),
        ] {
            if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                return Err(ProfileError::BadProbability { field, value });
            }
        }
        for (field, value) in [
            ("user_locality_skew", self.user_locality_skew),
            ("os_locality_skew", self.os_locality_skew),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ProfileError::BadLocalitySkew { field, value });
            }
        }
        const LINE: u64 = 64;
        for (region, bytes) in [
            ("user_code", self.footprints.user_code),
            ("user_data", self.footprints.user_data),
            ("shared_buffer", self.footprints.shared_buffer),
            ("kernel_code", self.footprints.kernel_code),
            ("kernel_data", self.footprints.kernel_data),
            ("kernel_thread", self.footprints.kernel_thread),
        ] {
            if bytes < LINE {
                return Err(ProfileError::FootprintTooSmall { region, bytes });
            }
        }
        if !(self.irq_mean_interval.is_finite() && self.irq_mean_interval >= 0.0) {
            return Err(ProfileError::BadIrqInterval {
                value: self.irq_mean_interval,
            });
        }
        Ok(())
    }

    /// Mean service length (instructions) of one privileged invocation
    /// under this profile's mix, before disturbances.
    pub fn expected_invocation_len(&self) -> f64 {
        let mut total_w = 0.0;
        let mut total = 0.0;
        for &(id, w) in &self.syscall_mix {
            let spec = id.spec();
            let contexts = self.io_contexts(id);
            let mean_ctx: f64 = contexts
                .iter()
                .map(|&(_, arg1)| spec.service_len(arg1) as f64)
                .sum::<f64>()
                / contexts.len() as f64;
            total += w * mean_ctx;
            total_w += w;
        }
        if total_w == 0.0 {
            0.0
        } else {
            total / total_w
        }
    }

    /// The argument contexts of `id` this profile actually draws from,
    /// after applying the [`max_io_bytes`](Self::max_io_bytes) filter
    /// (falling back to the full list if the filter would empty it).
    pub fn io_contexts(&self, id: SyscallId) -> Vec<(u64, u64)> {
        let all = id.spec().arg_contexts;
        match self.max_io_bytes {
            None => all.to_vec(),
            Some(cap) => {
                let filtered: Vec<(u64, u64)> = all
                    .iter()
                    .copied()
                    .filter(|&(_, arg1)| arg1 <= cap)
                    .collect();
                if filtered.is_empty() {
                    all.to_vec()
                } else {
                    filtered
                }
            }
        }
    }

    /// Expected fraction of instructions executed in privileged mode.
    pub fn expected_os_share(&self) -> f64 {
        let os = self.expected_invocation_len();
        os / (os + self.user_burst_mean)
    }

    /// The Apache 2.2.6 static-page profile: the paper's most OS-bound
    /// workload — a mix of *many short* calls (`gettimeofday`, `getpid`,
    /// descriptor ops) and long network/file I/O, with heavy shared-buffer
    /// traffic. Pattern "(a) an application that invokes many short OS
    /// routines" *and* "(b) few, but long running, routines" (§II).
    pub fn apache() -> Self {
        Profile {
            name: "apache",
            kind: ProfileKind::Server,
            threads_per_core: 2,
            footprints: Footprints {
                user_code: 128 << 10,
                user_data: 640 << 10,
                shared_buffer: 192 << 10,
                kernel_code: 384 << 10,
                kernel_data: 896 << 10,
                kernel_thread: 32 << 10,
            },
            syscall_mix: vec![
                (SyscallId::GetTimeOfDay, 0.080),
                (SyscallId::Read, 0.160),
                (SyscallId::Writev, 0.130),
                (SyscallId::Write, 0.040),
                (SyscallId::Poll, 0.060),
                (SyscallId::Accept, 0.060),
                (SyscallId::Stat, 0.040),
                (SyscallId::Open, 0.035),
                (SyscallId::Close, 0.030),
                (SyscallId::Fcntl, 0.030),
                (SyscallId::Lseek, 0.020),
                (SyscallId::SendTo, 0.020),
                (SyscallId::RecvFrom, 0.060),
                (SyscallId::GetPid, 0.015),
                (SyscallId::Futex, 0.030),
                (SyscallId::PageFault, 0.060),
                (SyscallId::Mmap, 0.010),
                (SyscallId::Ioctl, 0.020),
                (SyscallId::Select, 0.020),
                (SyscallId::Socket, 0.010),
                (SyscallId::Connect, 0.005),
                (SyscallId::IrqNetwork, 0.020),
                (SyscallId::IrqTimer, 0.010),
                (SyscallId::IrqDisk, 0.005),
                (SyscallId::TlbRefill, 0.450),
            ],
            user_burst_mean: 2_900.0,
            user_mem_prob: 0.31,
            user_write_frac: 0.30,
            user_shared_frac: 0.10,
            user_shared_write_frac: 0.35,
            user_branch_prob: 0.17,
            user_branch_taken: 0.62,
            user_locality_skew: 1.05,
            user_hot_frac: 0.92,
            user_hot_bytes: 32 << 10,
            os_mem_prob: 0.36,
            os_write_frac: 0.32,
            os_branch_prob: 0.19,
            os_branch_taken: 0.60,
            os_locality_skew: 1.15,
            os_hot_frac: 0.85,
            os_hot_bytes: 64 << 10,
            length_jitter_prob: 0.13,
            length_jitter_span: 0.03,
            irq_mean_interval: 150_000.0,
            irq_nested_len: 3_500,
            include_spill_fill: false,
            spill_fill_rate: 1.0 / 900.0,
            max_io_bytes: None,
        }
    }

    /// The SPECjbb2005 middleware profile: a large Java heap, lock-heavy
    /// (`futex`) and logging I/O. Its long migration-unfriendly working
    /// set is why the paper finds off-loading may *never* help it at
    /// conservative latencies (Fig. 4).
    pub fn specjbb() -> Self {
        Profile {
            name: "specjbb2005",
            kind: ProfileKind::Server,
            threads_per_core: 2,
            footprints: Footprints {
                user_code: 256 << 10,
                user_data: 1536 << 10,
                shared_buffer: 96 << 10,
                kernel_code: 384 << 10,
                kernel_data: 512 << 10,
                kernel_thread: 32 << 10,
            },
            syscall_mix: vec![
                (SyscallId::Futex, 0.200),
                (SyscallId::GetTimeOfDay, 0.120),
                (SyscallId::Read, 0.080),
                (SyscallId::Write, 0.100),
                (SyscallId::Mmap, 0.040),
                (SyscallId::Brk, 0.050),
                (SyscallId::PageFault, 0.120),
                (SyscallId::SchedYield, 0.050),
                (SyscallId::Stat, 0.020),
                (SyscallId::Poll, 0.030),
                (SyscallId::Send, 0.040),
                (SyscallId::Recv, 0.050),
                (SyscallId::GetPid, 0.020),
                (SyscallId::Close, 0.020),
                (SyscallId::Open, 0.010),
                (SyscallId::Nanosleep, 0.010),
                (SyscallId::IrqTimer, 0.030),
                (SyscallId::IrqNetwork, 0.010),
                (SyscallId::TlbRefill, 0.150),
            ],
            user_burst_mean: 5_000.0,
            user_mem_prob: 0.33,
            user_write_frac: 0.33,
            user_shared_frac: 0.06,
            user_shared_write_frac: 0.40,
            user_branch_prob: 0.16,
            user_branch_taken: 0.61,
            user_locality_skew: 1.10,
            user_hot_frac: 0.90,
            user_hot_bytes: 24 << 10,
            os_mem_prob: 0.36,
            os_write_frac: 0.34,
            os_branch_prob: 0.19,
            os_branch_taken: 0.60,
            os_locality_skew: 1.10,
            os_hot_frac: 0.85,
            os_hot_bytes: 24 << 10,
            length_jitter_prob: 0.15,
            length_jitter_span: 0.035,
            irq_mean_interval: 180_000.0,
            irq_nested_len: 2_500,
            include_spill_fill: false,
            spill_fill_rate: 1.0 / 1_500.0,
            max_io_bytes: Some(8 << 10),
        }
    }

    /// The Derby (SPECjvm2008) database profile: modest OS share, but the
    /// invocations it does make are dominated by bulk file I/O — the
    /// paper's pattern "(b) few, but long running, routines".
    pub fn derby() -> Self {
        Profile {
            name: "derby",
            kind: ProfileKind::Server,
            threads_per_core: 2,
            footprints: Footprints {
                user_code: 192 << 10,
                user_data: 1152 << 10,
                shared_buffer: 256 << 10,
                kernel_code: 320 << 10,
                kernel_data: 512 << 10,
                kernel_thread: 32 << 10,
            },
            syscall_mix: vec![
                (SyscallId::Read, 0.190),
                (SyscallId::Write, 0.170),
                (SyscallId::Readv, 0.060),
                (SyscallId::Writev, 0.060),
                (SyscallId::Lseek, 0.100),
                (SyscallId::Fstat, 0.050),
                (SyscallId::Futex, 0.130),
                (SyscallId::GetTimeOfDay, 0.080),
                (SyscallId::PageFault, 0.070),
                (SyscallId::Mmap, 0.020),
                (SyscallId::Fcntl, 0.030),
                (SyscallId::Open, 0.010),
                (SyscallId::Close, 0.010),
                (SyscallId::IrqDisk, 0.010),
                (SyscallId::IrqTimer, 0.010),
                (SyscallId::TlbRefill, 0.100),
            ],
            user_burst_mean: 22_000.0,
            user_mem_prob: 0.32,
            user_write_frac: 0.30,
            user_shared_frac: 0.08,
            user_shared_write_frac: 0.30,
            user_branch_prob: 0.15,
            user_branch_taken: 0.63,
            user_locality_skew: 1.00,
            user_hot_frac: 0.92,
            user_hot_bytes: 32 << 10,
            os_mem_prob: 0.37,
            os_write_frac: 0.33,
            os_branch_prob: 0.18,
            os_branch_taken: 0.60,
            os_locality_skew: 1.12,
            os_hot_frac: 0.85,
            os_hot_bytes: 40 << 10,
            length_jitter_prob: 0.12,
            length_jitter_span: 0.03,
            irq_mean_interval: 160_000.0,
            irq_nested_len: 4_000,
            include_spill_fill: false,
            spill_fill_rate: 1.0 / 1_200.0,
            max_io_bytes: None,
        }
    }

    /// Parameterised compute-bound profile shared by the six HPC
    /// benchmarks: negligible OS interaction (allocation, occasional
    /// file reads, timer interrupts), differing mainly in working-set
    /// size and locality.
    fn compute(
        name: &'static str,
        user_data: u64,
        user_mem_prob: f64,
        user_locality_skew: f64,
        user_hot_frac: f64,
        user_hot_bytes: u64,
    ) -> Self {
        Profile {
            name,
            kind: ProfileKind::Compute,
            threads_per_core: 1,
            footprints: Footprints {
                user_code: 64 << 10,
                user_data,
                shared_buffer: 32 << 10,
                kernel_code: 256 << 10,
                kernel_data: 384 << 10,
                kernel_thread: 16 << 10,
            },
            syscall_mix: vec![
                (SyscallId::Brk, 0.30),
                (SyscallId::Mmap, 0.08),
                (SyscallId::Read, 0.18),
                (SyscallId::GetTimeOfDay, 0.20),
                (SyscallId::PageFault, 0.16),
                (SyscallId::Write, 0.03),
                (SyscallId::IrqTimer, 0.05),
                (SyscallId::TlbRefill, 0.05),
            ],
            user_burst_mean: 110_000.0,
            user_mem_prob,
            user_write_frac: 0.28,
            user_shared_frac: 0.01,
            user_shared_write_frac: 0.20,
            user_branch_prob: 0.13,
            user_branch_taken: 0.65,
            user_locality_skew,
            user_hot_frac,
            user_hot_bytes,
            os_mem_prob: 0.35,
            os_write_frac: 0.32,
            os_branch_prob: 0.18,
            os_branch_taken: 0.60,
            os_locality_skew: 1.15,
            os_hot_frac: 0.85,
            os_hot_bytes: 40 << 10,
            length_jitter_prob: 0.10,
            length_jitter_span: 0.03,
            irq_mean_interval: 250_000.0,
            irq_nested_len: 2_000,
            include_spill_fill: false,
            spill_fill_rate: 1.0 / 8_000.0,
            max_io_bytes: Some(16 << 10),
        }
    }

    /// PARSEC blackscholes: small, cache-resident working set.
    pub fn blackscholes() -> Self {
        Self::compute("blackscholes", 256 << 10, 0.26, 1.25, 0.95, 24 << 10)
    }

    /// PARSEC canneal: huge, cache-hostile working set.
    pub fn canneal() -> Self {
        Self::compute("canneal", 4096 << 10, 0.34, 0.75, 0.55, 128 << 10)
    }

    /// SPEC-CPU-2006 mcf: large working set, pointer chasing.
    pub fn mcf() -> Self {
        Self::compute("mcf", 2048 << 10, 0.36, 0.85, 0.65, 96 << 10)
    }

    /// SPEC-CPU-2006 hmmer: medium working set, regular access.
    pub fn hmmer() -> Self {
        Self::compute("hmmer", 512 << 10, 0.30, 1.20, 0.90, 48 << 10)
    }

    /// BioBench fasta_protein: streaming with a hot score matrix.
    pub fn fasta_protein() -> Self {
        Self::compute("fasta_protein", 384 << 10, 0.29, 1.15, 0.92, 32 << 10)
    }

    /// BioBench mummer: suffix-tree traversal, large and irregular.
    pub fn mummer() -> Self {
        Self::compute("mummer", 1536 << 10, 0.33, 0.90, 0.70, 96 << 10)
    }

    /// The three server profiles, in the paper's figure order.
    pub fn all_server() -> Vec<Profile> {
        vec![Profile::apache(), Profile::specjbb(), Profile::derby()]
    }

    /// The six compute profiles.
    pub fn all_compute() -> Vec<Profile> {
        vec![
            Profile::blackscholes(),
            Profile::canneal(),
            Profile::mcf(),
            Profile::hmmer(),
            Profile::fasta_protein(),
            Profile::mummer(),
        ]
    }

    /// Looks a profile up by its figure name.
    pub fn by_name(name: &str) -> Option<Profile> {
        Self::all_server()
            .into_iter()
            .chain(Self::all_compute())
            .find(|p| p.name == name)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, ~{:.1}% OS)",
            self.name,
            self.kind,
            self.expected_os_share() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_shares_are_ordered_like_the_paper() {
        // Apache is the most OS-bound, Derby modest, compute negligible
        // (Table III ordering and §II characterisation).
        let apache = Profile::apache().expected_os_share();
        let jbb = Profile::specjbb().expected_os_share();
        let derby = Profile::derby().expected_os_share();
        let compute = Profile::blackscholes().expected_os_share();
        assert!(apache > jbb && jbb > derby && derby > compute);
        assert!(apache > 0.40, "apache share = {apache}");
        assert!((0.15..0.45).contains(&jbb), "jbb share = {jbb}");
        assert!((0.05..0.25).contains(&derby), "derby share = {derby}");
        assert!(compute < 0.05, "compute share = {compute}");
    }

    #[test]
    fn mixes_reference_valid_weights() {
        for p in Profile::all_server()
            .into_iter()
            .chain(Profile::all_compute())
        {
            let total: f64 = p.syscall_mix.iter().map(|&(_, w)| w).sum();
            assert!(
                (0.8..=1.5).contains(&total),
                "{}: weight sum {total}",
                p.name
            );
            for &(_, w) in &p.syscall_mix {
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn server_profiles_map_two_threads_per_core() {
        for p in Profile::all_server() {
            assert_eq!(p.threads_per_core, 2, "{}", p.name);
        }
        for p in Profile::all_compute() {
            assert_eq!(p.threads_per_core, 1, "{}", p.name);
        }
    }

    #[test]
    fn expected_invocation_lengths_are_plausible() {
        // Derby's invocations are longer on average than Apache's
        // (pattern (b) vs pattern (a)+(b), §II).
        let apache = Profile::apache().expected_invocation_len();
        let derby = Profile::derby().expected_invocation_len();
        assert!(apache > 500.0 && apache < 10_000.0, "apache = {apache}");
        assert!(derby > apache, "derby = {derby} vs apache = {apache}");
    }

    #[test]
    fn by_name_round_trips() {
        for p in Profile::all_server()
            .into_iter()
            .chain(Profile::all_compute())
        {
            let found = Profile::by_name(p.name).expect("by_name");
            assert_eq!(found.name, p.name);
        }
        assert!(Profile::by_name("nonexistent").is_none());
    }

    #[test]
    fn probability_fields_are_probabilities() {
        for p in Profile::all_server()
            .into_iter()
            .chain(Profile::all_compute())
        {
            for (label, v) in [
                ("user_mem_prob", p.user_mem_prob),
                ("user_write_frac", p.user_write_frac),
                ("user_shared_frac", p.user_shared_frac),
                ("user_shared_write_frac", p.user_shared_write_frac),
                ("user_branch_prob", p.user_branch_prob),
                ("user_branch_taken", p.user_branch_taken),
                ("os_mem_prob", p.os_mem_prob),
                ("os_write_frac", p.os_write_frac),
                ("os_branch_prob", p.os_branch_prob),
                ("os_branch_taken", p.os_branch_taken),
                ("length_jitter_prob", p.length_jitter_prob),
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: {label} = {v}", p.name);
            }
        }
    }

    #[test]
    fn display_mentions_name() {
        assert!(Profile::apache().to_string().contains("apache"));
    }
}
