//! Syscall catalog: identities, run-length models, and memory behaviour.
//!
//! The paper stresses that operating systems expose *hundreds* of distinct
//! entry points (Table I) and that manually instrumenting them is
//! infeasible — the motivation for the hardware predictor. Our synthetic
//! kernel models a representative subset of entry points with per-syscall
//! run-length formulas. Each syscall's service time is a deterministic
//! function of its identity and arguments (mirroring "the duration of the
//! read system call is a function of the number of bytes to be fetched",
//! §II), plus stochastic disturbances modelled elsewhere
//! ([`invocation`](crate::invocation)).

use core::fmt;

/// One row of the paper's Table I: distinct system calls per OS release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsSyscallCount {
    /// Operating system name and version.
    pub os: &'static str,
    /// Number of distinct system calls.
    pub syscalls: u32,
}

/// The paper's Table I verbatim: number of distinct system calls in
/// various operating systems.
pub const OS_SYSCALL_TABLE: &[OsSyscallCount] = &[
    OsSyscallCount {
        os: "Linux 2.6.30",
        syscalls: 344,
    },
    OsSyscallCount {
        os: "Linux 2.6.16",
        syscalls: 310,
    },
    OsSyscallCount {
        os: "Linux 2.4.29",
        syscalls: 259,
    },
    OsSyscallCount {
        os: "FreeBSD Current",
        syscalls: 513,
    },
    OsSyscallCount {
        os: "FreeBSD 5.3",
        syscalls: 444,
    },
    OsSyscallCount {
        os: "FreeBSD 2.2",
        syscalls: 254,
    },
    OsSyscallCount {
        os: "OpenSolaris",
        syscalls: 255,
    },
    OsSyscallCount {
        os: "Linux 2.2",
        syscalls: 190,
    },
    OsSyscallCount {
        os: "Linux 1.0",
        syscalls: 143,
    },
    OsSyscallCount {
        os: "Linux 0.01",
        syscalls: 67,
    },
    OsSyscallCount {
        os: "Windows Vista",
        syscalls: 360,
    },
    OsSyscallCount {
        os: "Windows XP",
        syscalls: 288,
    },
    OsSyscallCount {
        os: "Windows 2000",
        syscalls: 247,
    },
    OsSyscallCount {
        os: "Windows NT",
        syscalls: 211,
    },
];

/// Identity of a privileged entry point in the synthetic kernel.
///
/// Includes classic system calls plus the other privileged sequences the
/// paper counts as OS behaviour (§IV): page-fault handling, device
/// interrupt service routines, and SPARC register-window spill/fill traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variant names are the documentation
pub enum SyscallId {
    Read,
    Write,
    Readv,
    Writev,
    Open,
    Close,
    Stat,
    Fstat,
    Lseek,
    Fcntl,
    Ioctl,
    Poll,
    Select,
    Mmap,
    Munmap,
    Brk,
    Futex,
    SchedYield,
    Nanosleep,
    GetTimeOfDay,
    GetPid,
    Socket,
    Bind,
    Listen,
    Accept,
    Connect,
    Send,
    Recv,
    SendTo,
    RecvFrom,
    Fork,
    Execve,
    PageFault,
    TlbRefill,
    IrqNetwork,
    IrqDisk,
    IrqTimer,
    WindowSpill,
    WindowFill,
}

impl SyscallId {
    /// Every entry point, in a stable order.
    pub const ALL: &'static [SyscallId] = &[
        SyscallId::Read,
        SyscallId::Write,
        SyscallId::Readv,
        SyscallId::Writev,
        SyscallId::Open,
        SyscallId::Close,
        SyscallId::Stat,
        SyscallId::Fstat,
        SyscallId::Lseek,
        SyscallId::Fcntl,
        SyscallId::Ioctl,
        SyscallId::Poll,
        SyscallId::Select,
        SyscallId::Mmap,
        SyscallId::Munmap,
        SyscallId::Brk,
        SyscallId::Futex,
        SyscallId::SchedYield,
        SyscallId::Nanosleep,
        SyscallId::GetTimeOfDay,
        SyscallId::GetPid,
        SyscallId::Socket,
        SyscallId::Bind,
        SyscallId::Listen,
        SyscallId::Accept,
        SyscallId::Connect,
        SyscallId::Send,
        SyscallId::Recv,
        SyscallId::SendTo,
        SyscallId::RecvFrom,
        SyscallId::Fork,
        SyscallId::Execve,
        SyscallId::PageFault,
        SyscallId::TlbRefill,
        SyscallId::IrqNetwork,
        SyscallId::IrqDisk,
        SyscallId::IrqTimer,
        SyscallId::WindowSpill,
        SyscallId::WindowFill,
    ];

    /// A dense index suitable for table lookups.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&s| s == self)
            .expect("ALL is exhaustive")
    }

    /// The syscall-number value placed in `%g1` by the trap convention.
    /// Offset so numbers do not collide with small argument values.
    pub fn trap_number(self) -> u64 {
        0x100 + self.index() as u64
    }

    /// Inverse of [`trap_number`](Self::trap_number): recovers the entry
    /// point from a trap-convention routine number, or `None` when the
    /// number names no catalogued entry point.
    pub fn from_trap(trap: u64) -> Option<SyscallId> {
        trap.checked_sub(0x100)
            .and_then(|i| usize::try_from(i).ok())
            .and_then(|i| Self::ALL.get(i).copied())
    }

    /// Looks up the specification for this entry point.
    pub fn spec(self) -> &'static SyscallSpec {
        &CATALOG[self.index()]
    }
}

impl fmt::Display for SyscallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

/// Broad behavioural class of a privileged entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsClass {
    /// Ordinary system call invoked by the application.
    Syscall,
    /// Synchronous fault handled by the kernel (page fault, TLB refill).
    Fault,
    /// Asynchronous device interrupt service routine.
    Interrupt,
    /// SPARC register-window spill/fill trap (<25 instructions; §IV).
    SpillFill,
}

/// Static description of one privileged entry point.
///
/// `base_len + (arg1 * per_byte_milli) / 1000` gives the deterministic
/// service length in instructions for argument `arg1` (a byte count for
/// I/O calls, ignored by fixed-cost calls whose `per_byte_milli` is 0).
#[derive(Debug, Clone)]
pub struct SyscallSpec {
    /// Entry-point identity.
    pub id: SyscallId,
    /// Human-readable name.
    pub name: &'static str,
    /// Behavioural class.
    pub class: OsClass,
    /// Fixed component of the service length, in instructions.
    pub base_len: u64,
    /// Per-byte component, in milli-instructions per byte (so 300 means
    /// 0.3 instructions per byte — a 4 KB `read` costs ~1,229 on top of
    /// `base_len`).
    pub per_byte_milli: u64,
    /// Representative `(arg0, arg1)` contexts the workload draws from;
    /// `arg1` is the size argument fed to the length formula. Keeping the
    /// set small and discrete is what makes AState values recur — real
    /// applications likewise issue I/O in a handful of fixed sizes.
    pub arg_contexts: &'static [(u64, u64)],
    /// Probability the call returns early (e.g. `read` hitting EOF,
    /// §II), multiplying the service length by [`EARLY_RETURN_FACTOR`].
    pub early_return_prob: f64,
    /// Fraction of this handler's data accesses that touch globally
    /// shared kernel structures.
    pub kernel_data_frac: f64,
    /// Fraction of data accesses that touch the *invoking thread's*
    /// user-visible buffers (the copy-in/copy-out traffic that generates
    /// coherence when the handler runs on a remote core).
    pub user_shared_frac: f64,
    /// Fraction of the handler's shared-buffer accesses that are writes
    /// (I/O results being deposited into user memory).
    pub shared_write_frac: f64,
}

/// Length multiplier applied on an early return (EOF and friends).
pub const EARLY_RETURN_FACTOR: f64 = 0.35;

impl SyscallSpec {
    /// Deterministic service length (instructions) for the `(arg0, arg1)`
    /// context, before early-return and interrupt disturbances.
    pub fn service_len(&self, arg1: u64) -> u64 {
        self.base_len + self.per_byte_milli * arg1 / 1000
    }
}

const KB: u64 = 1024;

/// Shorthand constructor keeping the tables below readable.
#[allow(clippy::too_many_arguments)] // mirrors the SyscallSpec field order
const fn spec(
    id: SyscallId,
    name: &'static str,
    class: OsClass,
    base_len: u64,
    per_byte_milli: u64,
    arg_contexts: &'static [(u64, u64)],
    early_return_prob: f64,
    kernel_data_frac: f64,
    user_shared_frac: f64,
    shared_write_frac: f64,
) -> SyscallSpec {
    SyscallSpec {
        id,
        name,
        class,
        base_len,
        per_byte_milli,
        arg_contexts,
        early_return_prob,
        kernel_data_frac,
        user_shared_frac,
        shared_write_frac,
    }
}

// Argument-context tables. arg0 models a descriptor/address-ish value,
// arg1 the size in bytes where applicable. The discrete size ladders
// mirror how servers actually issue I/O (header-sized, page-sized, bulk).
static IO_SIZES: &[(u64, u64)] = &[
    (3, 512),
    (4, 4 * KB),
    (5, 8 * KB),
    (6, 16 * KB),
    (7, 64 * KB),
    (8, KB),
];
static SMALL_IO_SIZES: &[(u64, u64)] = &[(3, 128), (4, 512), (5, KB), (6, 2 * KB)];
static NET_SIZES: &[(u64, u64)] = &[(9, 256), (10, 1460), (11, 4 * KB), (12, 16 * KB)];
static FIXED: &[(u64, u64)] = &[(0, 0), (1, 0)];
static FD_ONLY: &[(u64, u64)] = &[(3, 0), (4, 0), (5, 0), (6, 0)];
static MAP_SIZES: &[(u64, u64)] = &[(0, 64 * KB), (0, 256 * KB), (0, 1024 * KB)];
static FUTEX_CTX: &[(u64, u64)] = &[(100, 0), (101, 0), (102, 1), (103, 1)];

/// The full entry-point catalog, indexed by [`SyscallId::index`].
///
/// Base lengths are loosely calibrated to measured Linux/OpenSolaris
/// kernel path lengths on in-order SPARC-class hardware: trivial calls
/// run ~100–200 instructions (`getpid` is the paper's §II example of a
/// trivially short call), descriptor operations run high hundreds,
/// filesystem/VM operations run thousands, and bulk I/O scales with the
/// byte count.
pub static CATALOG: &[SyscallSpec] = &[
    spec(
        SyscallId::Read,
        "read",
        OsClass::Syscall,
        850,
        300,
        IO_SIZES,
        0.015,
        0.35,
        0.30,
        0.85,
    ),
    spec(
        SyscallId::Write,
        "write",
        OsClass::Syscall,
        950,
        280,
        IO_SIZES,
        0.01,
        0.35,
        0.30,
        0.10,
    ),
    spec(
        SyscallId::Readv,
        "readv",
        OsClass::Syscall,
        1100,
        310,
        IO_SIZES,
        0.012,
        0.35,
        0.30,
        0.85,
    ),
    spec(
        SyscallId::Writev,
        "writev",
        OsClass::Syscall,
        1200,
        290,
        IO_SIZES,
        0.01,
        0.35,
        0.30,
        0.10,
    ),
    spec(
        SyscallId::Open,
        "open",
        OsClass::Syscall,
        2600,
        0,
        FD_ONLY,
        0.02,
        0.55,
        0.10,
        0.20,
    ),
    spec(
        SyscallId::Close,
        "close",
        OsClass::Syscall,
        620,
        0,
        FD_ONLY,
        0.0,
        0.50,
        0.05,
        0.10,
    ),
    spec(
        SyscallId::Stat,
        "stat",
        OsClass::Syscall,
        1450,
        0,
        FD_ONLY,
        0.02,
        0.55,
        0.15,
        0.60,
    ),
    spec(
        SyscallId::Fstat,
        "fstat",
        OsClass::Syscall,
        520,
        0,
        FD_ONLY,
        0.0,
        0.50,
        0.15,
        0.60,
    ),
    spec(
        SyscallId::Lseek,
        "lseek",
        OsClass::Syscall,
        280,
        0,
        FD_ONLY,
        0.0,
        0.45,
        0.05,
        0.10,
    ),
    spec(
        SyscallId::Fcntl,
        "fcntl",
        OsClass::Syscall,
        380,
        0,
        FD_ONLY,
        0.0,
        0.45,
        0.05,
        0.10,
    ),
    spec(
        SyscallId::Ioctl,
        "ioctl",
        OsClass::Syscall,
        900,
        0,
        FD_ONLY,
        0.01,
        0.50,
        0.15,
        0.40,
    ),
    spec(
        SyscallId::Poll,
        "poll",
        OsClass::Syscall,
        1500,
        0,
        FD_ONLY,
        0.02,
        0.55,
        0.15,
        0.50,
    ),
    spec(
        SyscallId::Select,
        "select",
        OsClass::Syscall,
        1850,
        0,
        FD_ONLY,
        0.02,
        0.55,
        0.15,
        0.50,
    ),
    spec(
        SyscallId::Mmap,
        "mmap",
        OsClass::Syscall,
        3100,
        8,
        MAP_SIZES,
        0.0,
        0.60,
        0.05,
        0.30,
    ),
    spec(
        SyscallId::Munmap,
        "munmap",
        OsClass::Syscall,
        2300,
        6,
        MAP_SIZES,
        0.0,
        0.60,
        0.02,
        0.10,
    ),
    spec(
        SyscallId::Brk,
        "brk",
        OsClass::Syscall,
        920,
        0,
        FIXED,
        0.0,
        0.60,
        0.02,
        0.10,
    ),
    spec(
        SyscallId::Futex,
        "futex",
        OsClass::Syscall,
        420,
        0,
        FUTEX_CTX,
        0.04,
        0.50,
        0.20,
        0.50,
    ),
    spec(
        SyscallId::SchedYield,
        "sched_yield",
        OsClass::Syscall,
        740,
        0,
        FIXED,
        0.0,
        0.60,
        0.0,
        0.0,
    ),
    spec(
        SyscallId::Nanosleep,
        "nanosleep",
        OsClass::Syscall,
        1100,
        0,
        FIXED,
        0.0,
        0.55,
        0.0,
        0.0,
    ),
    spec(
        SyscallId::GetTimeOfDay,
        "gettimeofday",
        OsClass::Syscall,
        210,
        0,
        FIXED,
        0.0,
        0.40,
        0.20,
        0.90,
    ),
    spec(
        SyscallId::GetPid,
        "getpid",
        OsClass::Syscall,
        130,
        0,
        FIXED,
        0.0,
        0.30,
        0.0,
        0.0,
    ),
    spec(
        SyscallId::Socket,
        "socket",
        OsClass::Syscall,
        1900,
        0,
        FIXED,
        0.0,
        0.55,
        0.05,
        0.20,
    ),
    spec(
        SyscallId::Bind,
        "bind",
        OsClass::Syscall,
        1200,
        0,
        FIXED,
        0.0,
        0.55,
        0.05,
        0.20,
    ),
    spec(
        SyscallId::Listen,
        "listen",
        OsClass::Syscall,
        800,
        0,
        FIXED,
        0.0,
        0.55,
        0.02,
        0.10,
    ),
    spec(
        SyscallId::Accept,
        "accept",
        OsClass::Syscall,
        3600,
        0,
        FD_ONLY,
        0.03,
        0.55,
        0.15,
        0.60,
    ),
    spec(
        SyscallId::Connect,
        "connect",
        OsClass::Syscall,
        3200,
        0,
        FD_ONLY,
        0.03,
        0.55,
        0.10,
        0.40,
    ),
    spec(
        SyscallId::Send,
        "send",
        OsClass::Syscall,
        1250,
        260,
        NET_SIZES,
        0.01,
        0.40,
        0.30,
        0.10,
    ),
    spec(
        SyscallId::Recv,
        "recv",
        OsClass::Syscall,
        1150,
        280,
        NET_SIZES,
        0.025,
        0.40,
        0.30,
        0.85,
    ),
    spec(
        SyscallId::SendTo,
        "sendto",
        OsClass::Syscall,
        1350,
        260,
        NET_SIZES,
        0.01,
        0.40,
        0.30,
        0.10,
    ),
    spec(
        SyscallId::RecvFrom,
        "recvfrom",
        OsClass::Syscall,
        1250,
        280,
        NET_SIZES,
        0.025,
        0.40,
        0.30,
        0.85,
    ),
    spec(
        SyscallId::Fork,
        "fork",
        OsClass::Syscall,
        18_000,
        0,
        FIXED,
        0.0,
        0.65,
        0.05,
        0.30,
    ),
    spec(
        SyscallId::Execve,
        "execve",
        OsClass::Syscall,
        45_000,
        0,
        FIXED,
        0.0,
        0.65,
        0.05,
        0.30,
    ),
    spec(
        SyscallId::PageFault,
        "page_fault",
        OsClass::Fault,
        1750,
        0,
        SMALL_IO_SIZES,
        0.0,
        0.60,
        0.10,
        0.50,
    ),
    spec(
        SyscallId::TlbRefill,
        "tlb_refill",
        OsClass::Fault,
        90,
        0,
        FD_ONLY,
        0.0,
        0.05,
        0.85,
        0.75,
    ),
    spec(
        SyscallId::IrqNetwork,
        "irq_network",
        OsClass::Interrupt,
        4200,
        0,
        FIXED,
        0.0,
        0.55,
        0.15,
        0.80,
    ),
    spec(
        SyscallId::IrqDisk,
        "irq_disk",
        OsClass::Interrupt,
        5200,
        0,
        FIXED,
        0.0,
        0.60,
        0.10,
        0.80,
    ),
    spec(
        SyscallId::IrqTimer,
        "irq_timer",
        OsClass::Interrupt,
        1600,
        0,
        FIXED,
        0.0,
        0.55,
        0.0,
        0.0,
    ),
    spec(
        SyscallId::WindowSpill,
        "window_spill",
        OsClass::SpillFill,
        22,
        0,
        FIXED,
        0.0,
        0.10,
        0.50,
        0.90,
    ),
    spec(
        SyscallId::WindowFill,
        "window_fill",
        OsClass::SpillFill,
        21,
        0,
        FIXED,
        0.0,
        0.10,
        0.50,
        0.10,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(OS_SYSCALL_TABLE.len(), 14);
        let linux_2630 = OS_SYSCALL_TABLE
            .iter()
            .find(|r| r.os == "Linux 2.6.30")
            .unwrap();
        assert_eq!(linux_2630.syscalls, 344);
        let freebsd = OS_SYSCALL_TABLE
            .iter()
            .find(|r| r.os == "FreeBSD Current")
            .unwrap();
        assert_eq!(freebsd.syscalls, 513);
        let nt = OS_SYSCALL_TABLE
            .iter()
            .find(|r| r.os == "Windows NT")
            .unwrap();
        assert_eq!(nt.syscalls, 211);
    }

    #[test]
    fn catalog_is_exhaustive_and_ordered() {
        assert_eq!(CATALOG.len(), SyscallId::ALL.len());
        for (i, s) in CATALOG.iter().enumerate() {
            assert_eq!(s.id.index(), i, "{} out of order", s.name);
            assert_eq!(s.id.spec().name, s.name);
        }
    }

    #[test]
    fn trap_round_trips_through_from_trap() {
        for &id in SyscallId::ALL {
            assert_eq!(SyscallId::from_trap(id.trap_number()), Some(id));
        }
        assert_eq!(SyscallId::from_trap(0), None);
        assert_eq!(SyscallId::from_trap(0xFF), None);
        assert_eq!(
            SyscallId::from_trap(0x100 + SyscallId::ALL.len() as u64),
            None
        );
    }

    #[test]
    fn trap_numbers_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &id in SyscallId::ALL {
            assert!(
                seen.insert(id.trap_number()),
                "duplicate trap number for {id}"
            );
        }
    }

    #[test]
    fn every_spec_has_contexts_and_sane_fractions() {
        for s in CATALOG {
            assert!(!s.arg_contexts.is_empty(), "{} has no contexts", s.name);
            assert!((0.0..=1.0).contains(&s.early_return_prob));
            assert!((0.0..=1.0).contains(&s.kernel_data_frac));
            assert!((0.0..=1.0).contains(&s.user_shared_frac));
            assert!((0.0..=1.0).contains(&s.shared_write_frac));
            assert!(
                s.kernel_data_frac + s.user_shared_frac <= 1.0,
                "{}: access fractions exceed 1",
                s.name
            );
            assert!(s.base_len > 0, "{}: zero base length", s.name);
        }
    }

    #[test]
    fn read_length_scales_with_bytes() {
        let read = SyscallId::Read.spec();
        let small = read.service_len(512);
        let large = read.service_len(64 * 1024);
        assert!(small < large);
        assert_eq!(small, 850 + 300 * 512 / 1000);
        // A 64 KB read runs ~20K instructions — a clearly "long" call.
        assert!(large > 10_000);
    }

    #[test]
    fn getpid_is_trivially_short() {
        // §II instruments getpid as the trivial-call example.
        assert!(SyscallId::GetPid.spec().service_len(0) < 200);
    }

    #[test]
    fn spill_fill_are_under_25_instructions() {
        // §IV: spill/fill are exclusively <25 instruction invocations.
        assert!(SyscallId::WindowSpill.spec().service_len(0) < 25);
        assert!(SyscallId::WindowFill.spec().service_len(0) < 25);
        assert_eq!(SyscallId::WindowSpill.spec().class, OsClass::SpillFill);
    }

    #[test]
    fn display_uses_catalog_name() {
        assert_eq!(SyscallId::Read.to_string(), "read");
        assert_eq!(SyscallId::IrqDisk.to_string(), "irq_disk");
    }
}
