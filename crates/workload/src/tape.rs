//! Shared workload tapes: generate each thread's draw stream once,
//! replay it across many co-resident simulations.
//!
//! A thread's segment/instruction stream depends only on the profile,
//! the phase schedule, the thread's index, and the master seed — never
//! on the off-loading policy, the topology, or the memory system,
//! because every policy path executes each drawn segment to exactly its
//! drawn length. Two simulations that agree on those four inputs
//! therefore consume *identical* streams, and a sweep grid (the same
//! workload under thirty policy × latency points) regenerates the same
//! stream once per point.
//!
//! A [`WorkloadTape`] hoists that generation out of the per-point loop:
//! it owns one master [`ThreadWorkload`] per thread — constructed with
//! the exact seed-splitting sequence the simulator uses — and
//! materialises segments plus their [`InstrSpec`]s into contiguous
//! per-thread arrays on demand. Each lane of a lane-parallel sweep then
//! reads through its own [`TapeCursor`], so K lanes pay the (dominant)
//! generation cost once instead of K times, and replay is a cache-
//! friendly linear scan instead of a chain of RNG and sampler draws.
//!
//! Replay is bit-identical by construction: the tape's masters perform
//! the same calls, in the same per-thread order, as a live simulation
//! would (one `next_segment`, then that segment's instructions, then
//! the next segment).

use std::cell::RefCell;
use std::rc::Rc;

use osoffload_sim::Rng64;

use crate::generator::{InstrSpec, MemRef, Segment, ThreadWorkload};
use crate::profile::Profile;

const META_HAS_MEM: u8 = 1 << 0;
const META_WRITE: u8 = 1 << 1;
const META_HAS_BRANCH: u8 = 1 << 2;
const META_TAKEN: u8 = 1 << 3;

/// On-tape encoding of one [`InstrSpec`]: 17 bytes instead of 32.
///
/// Replay streams tens of megabytes per lane, so the tape stores each
/// instruction packed — the two `Option`s collapse into flag bits and
/// the padding disappears — and the hot loop unpacks with a couple of
/// selects. That roughly halves the bytes pulled through the cache per
/// replayed instruction, which is where a lane's time goes once
/// generation is amortised.
#[derive(Clone, Copy)]
#[repr(C, packed)]
pub struct TapedInstr {
    pc: u64,
    addr: u64,
    meta: u8,
}

impl TapedInstr {
    #[inline]
    fn pack(spec: &InstrSpec) -> Self {
        let mut meta = 0u8;
        let mut addr = 0u64;
        if let Some(m) = spec.mem {
            meta |= META_HAS_MEM;
            if m.write {
                meta |= META_WRITE;
            }
            addr = m.addr;
        }
        if let Some(taken) = spec.branch {
            meta |= META_HAS_BRANCH;
            if taken {
                meta |= META_TAKEN;
            }
        }
        TapedInstr {
            pc: spec.pc,
            addr,
            meta,
        }
    }

    /// Decodes back to the exact [`InstrSpec`] that was packed.
    #[inline]
    pub fn unpack(&self) -> InstrSpec {
        let meta = self.meta;
        InstrSpec {
            pc: self.pc,
            mem: if meta & META_HAS_MEM != 0 {
                Some(MemRef {
                    addr: self.addr,
                    write: meta & META_WRITE != 0,
                })
            } else {
                None
            },
            branch: if meta & META_HAS_BRANCH != 0 {
                Some(meta & META_TAKEN != 0)
            } else {
                None
            },
        }
    }
}

/// One materialised segment: the scheduling header plus the index of
/// its first instruction in the thread's flat spec array.
struct TapeSeg {
    seg: Segment,
    first: usize,
}

/// One thread's master generator and its materialised stream.
struct ThreadTape {
    master: ThreadWorkload,
    segs: Vec<TapeSeg>,
    specs: Vec<TapedInstr>,
}

impl ThreadTape {
    /// Generates the next segment and all of its instructions.
    fn push_segment(&mut self) {
        let seg = self.master.next_segment();
        let first = self.specs.len();
        match &seg {
            Segment::User { len } => {
                for _ in 0..*len {
                    let spec = self.master.user_instr();
                    self.specs.push(TapedInstr::pack(&spec));
                }
            }
            Segment::Os(inv) => {
                for j in 0..inv.actual_len {
                    let spec = self.master.os_instr(inv, j);
                    self.specs.push(TapedInstr::pack(&spec));
                }
            }
        }
        self.segs.push(TapeSeg { seg, first });
    }
}

/// A lazily materialised, shareable recording of every thread's draw
/// stream for one (profile, phases, thread-count, seed) shape.
pub struct WorkloadTape {
    threads: Vec<ThreadTape>,
}

impl WorkloadTape {
    /// Builds the tape's masters with the simulator's exact construction
    /// sequence: one seed split per thread, in thread order, from a
    /// master RNG seeded with `seed`.
    pub fn new(
        profile: &Profile,
        phases: &[(u64, Profile)],
        thread_count: usize,
        seed: u64,
    ) -> Self {
        let mut master = Rng64::seed_from(seed);
        let threads = (0..thread_count)
            .map(|i| ThreadTape {
                master: if phases.is_empty() {
                    ThreadWorkload::new(profile.clone(), i, master.split().next_u64())
                } else {
                    ThreadWorkload::with_phases(
                        profile.clone(),
                        phases.to_vec(),
                        i,
                        master.split().next_u64(),
                    )
                },
                segs: Vec::new(),
                specs: Vec::new(),
            })
            .collect();
        WorkloadTape { threads }
    }

    /// Wraps the tape for sharing across lanes.
    pub fn into_shared(self) -> SharedTape {
        Rc::new(RefCell::new(self))
    }

    /// Number of threads the tape records.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The materialised spec depth of thread `t`.
    pub fn spec_len(&self, t: usize) -> usize {
        self.threads[t].specs.len()
    }

    /// Materialises thread `t` until at least `min_specs` instruction
    /// specs exist (whole segments at a time, so the final segment may
    /// overshoot). Called before an allocation-audited region so every
    /// segment a lane can legally request already exists and cursor
    /// reads never grow the arrays.
    pub fn extend_to(&mut self, t: usize, min_specs: usize) {
        let tape = &mut self.threads[t];
        if tape.specs.capacity() < min_specs {
            // One up-front allocation instead of doubling through tens
            // of megabytes; the slack absorbs the final segment's
            // overshoot so the growth rarely reallocates again.
            let target = min_specs + 131_072;
            tape.specs.reserve(target - tape.specs.len());
        }
        while tape.specs.len() < min_specs {
            tape.push_segment();
        }
    }

    /// The `idx`-th segment of thread `t` (materialising it if needed)
    /// and the flat index of its first instruction.
    fn segment(&mut self, t: usize, idx: usize) -> (Segment, usize) {
        let tape = &mut self.threads[t];
        while tape.segs.len() <= idx {
            tape.push_segment();
        }
        let s = &tape.segs[idx];
        (s.seg.clone(), s.first)
    }

    /// The contiguous specs of one materialised segment of thread `t`
    /// (`first..end` as reported by a cursor). The hot loop borrows the
    /// tape once per segment and walks this slice with plain indexed
    /// loads — no per-instruction shared-state access.
    #[inline]
    pub fn specs(&self, t: usize, first: usize, end: usize) -> &[TapedInstr] {
        &self.threads[t].specs[first..end]
    }

    /// The instruction spec at flat index `at` of thread `t`. The
    /// caller (a [`TapeCursor`]) only asks for positions inside a
    /// segment it has already fetched, so the spec always exists.
    #[inline]
    fn spec(&self, t: usize, at: usize) -> InstrSpec {
        self.threads[t].specs[at].unpack()
    }
}

/// A tape shared by the lanes of one pack.
pub type SharedTape = Rc<RefCell<WorkloadTape>>;

/// One lane's read position into one thread's stream.
///
/// Presents the same three-call surface as a live [`ThreadWorkload`]
/// (`next_segment`, then that segment's instructions by index), backed
/// by the shared tape.
pub struct TapeCursor {
    tape: SharedTape,
    thread: usize,
    /// Index of the next segment to fetch.
    next_seg: usize,
    /// Flat spec index of the current segment's first instruction.
    cur_first: usize,
    /// Flat spec index one past the current segment's last instruction.
    cur_end: usize,
}

impl TapeCursor {
    /// A cursor at the start of thread `thread`'s stream.
    pub fn new(tape: SharedTape, thread: usize) -> Self {
        TapeCursor {
            tape,
            thread,
            next_seg: 0,
            cur_first: 0,
            cur_end: 0,
        }
    }

    /// The next segment of the stream — bit-identical to the segment a
    /// live generator in the same position would draw.
    pub fn next_segment(&mut self) -> Segment {
        let (seg, first) = self.tape.borrow_mut().segment(self.thread, self.next_seg);
        self.next_seg += 1;
        self.cur_first = first;
        self.cur_end = first
            + match &seg {
                Segment::User { len } => *len as usize,
                Segment::Os(inv) => inv.actual_len as usize,
            };
        seg
    }

    /// Instruction `j` of the current segment (per-call tape access;
    /// the hot loop uses [`span`](Self::span) + [`WorkloadTape::specs`]
    /// to read the whole segment through one borrow instead).
    #[inline]
    pub fn instr(&self, j: u64) -> InstrSpec {
        self.tape
            .borrow()
            .spec(self.thread, self.cur_first + j as usize)
    }

    /// The shared tape this cursor reads.
    pub fn tape(&self) -> &SharedTape {
        &self.tape
    }

    /// `(thread, first, end)` of the current segment — the arguments
    /// [`WorkloadTape::specs`] wants for the zero-copy slice read.
    pub fn span(&self) -> (usize, usize, usize) {
        (self.thread, self.cur_first, self.cur_end)
    }

    /// Flat spec index one past the current segment — the cursor's
    /// consumption depth, used to size pre-extension targets.
    pub fn depth(&self) -> usize {
        self.cur_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replaying a tape must reproduce the live generator's stream
    /// exactly, for every thread, including across lazy-extension
    /// boundaries and interleaved multi-cursor reads.
    #[test]
    fn replay_is_bit_identical_to_live_generation() {
        let profile = Profile::apache();
        let seed = 0xF1605u64;
        let threads = 2usize;

        // Live reference streams, constructed the simulator's way.
        let mut master = Rng64::seed_from(seed);
        let mut live: Vec<ThreadWorkload> = (0..threads)
            .map(|i| ThreadWorkload::new(profile.clone(), i, master.split().next_u64()))
            .collect();

        let tape = WorkloadTape::new(&profile, &[], threads, seed).into_shared();
        let mut cursors: Vec<TapeCursor> = (0..threads)
            .map(|t| TapeCursor::new(tape.clone(), t))
            .collect();

        for _ in 0..200 {
            for t in 0..threads {
                let live_seg = live[t].next_segment();
                let tape_seg = cursors[t].next_segment();
                assert_eq!(live_seg, tape_seg, "thread {t}: segment header diverged");
                match &live_seg {
                    Segment::User { len } => {
                        for j in 0..*len {
                            assert_eq!(live[t].user_instr(), cursors[t].instr(j));
                        }
                    }
                    Segment::Os(inv) => {
                        for j in 0..inv.actual_len {
                            assert_eq!(live[t].os_instr(inv, j), cursors[t].instr(j));
                        }
                    }
                }
            }
        }
    }

    /// A second cursor over the same tape replays from the start and
    /// sees the same stream (the sharing that pays for the tape).
    #[test]
    fn two_cursors_share_one_generation() {
        let profile = Profile::specjbb();
        let tape = WorkloadTape::new(&profile, &[], 1, 42).into_shared();
        let mut a = TapeCursor::new(tape.clone(), 0);
        let first: Vec<Segment> = (0..50).map(|_| a.next_segment()).collect();
        let mut b = TapeCursor::new(tape.clone(), 0);
        let second: Vec<Segment> = (0..50).map(|_| b.next_segment()).collect();
        assert_eq!(first, second);
    }

    /// `extend_to` materialises whole segments past the requested depth
    /// so an audited replay region never grows the arrays.
    #[test]
    fn extend_to_covers_requested_depth() {
        let profile = Profile::derby();
        let tape = WorkloadTape::new(&profile, &[], 1, 7);
        let shared = tape.into_shared();
        shared.borrow_mut().extend_to(0, 10_000);
        assert!(shared.borrow().spec_len(0) >= 10_000);
    }
}
