//! Synthetic workload models for the `osoffload` CMP simulator.
//!
//! The paper evaluates OS off-loading under Apache, SPECjbb2005, Derby,
//! and six compute-bound HPC benchmarks (§II). This crate models those
//! workloads statistically — instruction mixes, working sets, privileged
//! invocation mixes, argument distributions, and the disturbances that
//! make run-length prediction interesting — so that the decision
//! machinery under test sees the same *observable* behaviour the real
//! applications produce. See `DESIGN.md` for the substitution argument.
//!
//! * [`catalog`] — privileged entry points (plus the paper's Table I);
//! * [`address_space`] — user/kernel/shared region layout and locality;
//! * [`invocation`] — one privileged invocation with AState registers,
//!   deterministic service length, and stochastic disturbances;
//! * [`profile`] — the nine benchmark profiles;
//! * [`generator`] — the deterministic segment/instruction stream.
//!
//! # Examples
//!
//! ```
//! use osoffload_workload::{Profile, ThreadWorkload, Segment};
//!
//! let mut stream = ThreadWorkload::new(Profile::apache(), 0, 1);
//! let mut os_instructions = 0;
//! for _ in 0..100 {
//!     if let Segment::Os(inv) = stream.next_segment() {
//!         os_instructions += inv.actual_len;
//!     }
//! }
//! assert!(os_instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_space;
pub mod catalog;
pub mod generator;
pub mod invocation;
pub mod profile;
pub mod tape;
pub mod validation;

#[cfg(test)]
mod proptests;

pub use address_space::{AddressSpace, Footprints, Region};
pub use catalog::{OsClass, OsSyscallCount, SyscallId, SyscallSpec, CATALOG, OS_SYSCALL_TABLE};
pub use generator::{InstrSpec, MemRef, Segment, ThreadWorkload};
pub use invocation::OsInvocation;
pub use profile::{Profile, ProfileError, ProfileKind};
pub use tape::{SharedTape, TapeCursor, TapedInstr, WorkloadTape};
pub use validation::{validate, ProfileValidation};
