//! Deterministic cycle-attribution profiler.
//!
//! When [`SystemConfig::profiling`](crate::SystemConfig) is on, the
//! simulation attributes every cycle of the measured region to a
//! *(syscall, phase)* pair as it retires segments: user execution,
//! decision overhead, the two migration legs, queue wait, cold-start
//! warm-up, OS-core service, local execution, and resource-adaptation
//! throttling. The accounting reads timing values the engine has
//! already computed — nothing extra is simulated — so profiling is
//! purely observational: the [`SimReport`](crate::SimReport) is
//! bit-identical with the profiler on or off, the same contract the
//! telemetry layer makes.
//!
//! Cumulative per-phase totals are additionally sampled on the
//! simulation's 64-epoch observation clock, giving a deterministic
//! time series of where cycles were going as the run progressed.
//!
//! Two export shapes cover the analysis workflows:
//!
//! * [`CycleProfile::to_collapsed`] — collapsed-stack text
//!   (`syscall;phase cycles` per line), directly consumable by
//!   `flamegraph.pl` / `inferno` / speedscope;
//! * [`CycleProfile::top_table`] — a deterministic top-N attribution
//!   table for terminals and docs.

/// Number of attribution phases (array dimension of the accounting).
pub const PHASE_COUNT: usize = 9;

/// One attribution phase of an invocation's (or burst's) lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// User-mode burst execution on a user core.
    UserExec,
    /// Decision/instrumentation overhead charged on trap entry.
    Decision,
    /// Privileged work executed locally on the user core.
    LocalExec,
    /// Privileged work executed locally under resource-adaptation
    /// throttling (§VI-B topologies only).
    Throttled,
    /// Outbound migration leg (user core → OS core).
    MigrationOut,
    /// Waiting for a free OS-core context after arrival.
    QueueWait,
    /// Cold-start warm-up charged when the chosen OS core has not
    /// served this AState recently.
    ColdPenalty,
    /// Privileged service on the OS core.
    OsService,
    /// Return migration leg (OS core → user core).
    MigrationBack,
}

impl Phase {
    /// Every phase, in canonical (collapsed-stack) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::UserExec,
        Phase::Decision,
        Phase::LocalExec,
        Phase::Throttled,
        Phase::MigrationOut,
        Phase::QueueWait,
        Phase::ColdPenalty,
        Phase::OsService,
        Phase::MigrationBack,
    ];

    /// Stable frame/column label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::UserExec => "user-exec",
            Phase::Decision => "decision",
            Phase::LocalExec => "local-exec",
            Phase::Throttled => "throttled",
            Phase::MigrationOut => "migration-out",
            Phase::QueueWait => "queue-wait",
            Phase::ColdPenalty => "cold-penalty",
            Phase::OsService => "os-service",
            Phase::MigrationBack => "migration-back",
        }
    }

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|p| *p == self)
            .expect("phase is in ALL")
    }
}

impl core::fmt::Display for Phase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-key accounting row: cycles and event counts per phase.
#[derive(Debug, Clone)]
struct Row {
    name: &'static str,
    cycles: [u64; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
}

/// Cumulative per-phase totals sampled at one observation-clock
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEpoch {
    /// Zero-based observation-epoch index.
    pub epoch: u64,
    /// Instructions retired when the sample was taken.
    pub instructions: u64,
    /// Simulated cycle when the sample was taken.
    pub cycles: u64,
    /// Cumulative attributed cycles per phase, in [`Phase::ALL`] order.
    pub attributed: [u64; PHASE_COUNT],
}

/// The in-run accumulator the simulation feeds. Lives behind an
/// `Option` on the engine, so a disabled profiler costs one branch per
/// segment.
#[derive(Debug, Clone, Default)]
pub(crate) struct CycleProfiler {
    rows: Vec<Row>,
    epochs: Vec<ProfileEpoch>,
}

impl CycleProfiler {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Attributes `cycles` to `(name, phase)` and counts one event.
    /// Keys are interned syscall names (plus the synthetic `"user"`),
    /// so the row set stays small and lookups are a short linear scan.
    pub(crate) fn record(&mut self, name: &'static str, phase: Phase, cycles: u64) {
        let i = phase.index();
        if let Some(row) = self.rows.iter_mut().find(|r| r.name == name) {
            row.cycles[i] += cycles;
            row.counts[i] += 1;
            return;
        }
        let mut row = Row {
            name,
            cycles: [0; PHASE_COUNT],
            counts: [0; PHASE_COUNT],
        };
        row.cycles[i] = cycles;
        row.counts[i] = 1;
        self.rows.push(row);
    }

    /// Samples the cumulative per-phase totals at an observation-clock
    /// boundary.
    pub(crate) fn epoch_sample(&mut self, epoch: u64, instructions: u64, cycles: u64) {
        let mut attributed = [0u64; PHASE_COUNT];
        for row in &self.rows {
            for (acc, c) in attributed.iter_mut().zip(row.cycles.iter()) {
                *acc += c;
            }
        }
        self.epochs.push(ProfileEpoch {
            epoch,
            instructions,
            cycles,
            attributed,
        });
    }

    /// Freezes the accumulator into the exported artifact (rows sorted
    /// by key for byte-stable output).
    pub(crate) fn finish(mut self) -> CycleProfile {
        self.rows.sort_by_key(|r| r.name);
        CycleProfile {
            enabled: true,
            rows: self.rows,
            epochs: self.epochs,
        }
    }
}

/// One exported attribution entry: a *(syscall, phase)* cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Syscall name, or `"user"` for user-mode bursts.
    pub name: &'static str,
    /// Attribution phase.
    pub phase: Phase,
    /// Total cycles attributed to this cell.
    pub cycles: u64,
    /// Number of events that contributed.
    pub count: u64,
}

/// The finished cycle-attribution profile of one run.
///
/// Returned by
/// [`Simulation::run_with_profile`](crate::Simulation::run_with_profile)
/// and [`Simulation::run_full_observed`](crate::Simulation::run_full_observed);
/// empty (with `enabled == false`) when the configuration did not ask
/// for profiling.
#[derive(Debug, Clone, Default)]
pub struct CycleProfile {
    /// Whether the run profiled at all.
    pub enabled: bool,
    rows: Vec<Row>,
    epochs: Vec<ProfileEpoch>,
}

impl CycleProfile {
    /// Every non-empty *(syscall, phase)* cell, sorted by syscall name
    /// then phase order (deterministic, byte-stable).
    pub fn entries(&self) -> Vec<ProfileEntry> {
        let mut out = Vec::new();
        for row in &self.rows {
            for (i, phase) in Phase::ALL.iter().enumerate() {
                if row.counts[i] > 0 {
                    out.push(ProfileEntry {
                        name: row.name,
                        phase: *phase,
                        cycles: row.cycles[i],
                        count: row.counts[i],
                    });
                }
            }
        }
        out
    }

    /// Total cycles attributed to `phase` across all keys.
    pub fn total(&self, phase: Phase) -> u64 {
        let i = phase.index();
        self.rows.iter().map(|r| r.cycles[i]).sum()
    }

    /// Number of events recorded under `phase` across all keys.
    pub fn count(&self, phase: Phase) -> u64 {
        let i = phase.index();
        self.rows.iter().map(|r| r.counts[i]).sum()
    }

    /// Sum of every attributed cycle over all phases.
    pub fn attributed_total(&self) -> u64 {
        Phase::ALL.iter().map(|p| self.total(*p)).sum()
    }

    /// Observation-clock samples of the cumulative per-phase totals,
    /// oldest first.
    pub fn epochs(&self) -> &[ProfileEpoch] {
        &self.epochs
    }

    /// Renders the collapsed-stack (folded) format flamegraph tooling
    /// consumes: one `syscall;phase cycles` line per non-empty cell,
    /// zero-cycle cells skipped, sorted by syscall then phase.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            if e.cycles > 0 {
                out.push_str(e.name);
                out.push(';');
                out.push_str(e.phase.label());
                out.push(' ');
                out.push_str(&e.cycles.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders a deterministic top-`n` attribution table (by cycles,
    /// ties broken by syscall then phase so output is byte-stable).
    pub fn top_table(&self, n: usize) -> String {
        let mut entries = self.entries();
        entries.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.name.cmp(b.name))
                .then(a.phase.index().cmp(&b.phase.index()))
        });
        let total = self.attributed_total().max(1);
        let mut out = String::from("cycles            share  events            key\n");
        for e in entries.into_iter().take(n) {
            out.push_str(&format!(
                "{:<16}  {:>5.1}%  {:<16}  {};{}\n",
                e.cycles,
                e.cycles as f64 * 100.0 / total as f64,
                e.count,
                e.name,
                e.phase.label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CycleProfile {
        let mut p = CycleProfiler::new();
        p.record("user", Phase::UserExec, 500);
        p.record("read", Phase::Decision, 4);
        p.record("read", Phase::OsService, 300);
        p.record("read", Phase::OsService, 100);
        p.record("brk", Phase::Decision, 4);
        p.record("brk", Phase::LocalExec, 50);
        p.epoch_sample(0, 1_000, 2_000);
        p.finish()
    }

    #[test]
    fn totals_and_counts_accumulate() {
        let p = sample();
        assert!(p.enabled);
        assert_eq!(p.total(Phase::OsService), 400);
        assert_eq!(p.count(Phase::OsService), 2);
        assert_eq!(p.total(Phase::Decision), 8);
        assert_eq!(p.count(Phase::Decision), 2);
        assert_eq!(p.attributed_total(), 500 + 8 + 400 + 50);
    }

    #[test]
    fn collapsed_stack_is_sorted_and_parseable() {
        let c = sample().to_collapsed();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(
            lines,
            vec![
                "brk;decision 4",
                "brk;local-exec 50",
                "read;decision 4",
                "read;os-service 400",
                "user;user-exec 500",
            ]
        );
        for l in lines {
            let (frames, count) = l.rsplit_once(' ').unwrap();
            assert_eq!(frames.split(';').count(), 2);
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn top_table_ranks_by_cycles() {
        let t = sample().top_table(2);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3, "{t}");
        assert!(lines[1].contains("user;user-exec"), "{t}");
        assert!(lines[2].contains("read;os-service"), "{t}");
    }

    #[test]
    fn epoch_samples_are_cumulative_snapshots() {
        let p = sample();
        assert_eq!(p.epochs().len(), 1);
        let e = &p.epochs()[0];
        assert_eq!(e.epoch, 0);
        assert_eq!(e.attributed.iter().sum::<u64>(), p.attributed_total());
    }

    #[test]
    fn disabled_profile_is_empty() {
        let p = CycleProfile::default();
        assert!(!p.enabled);
        assert!(p.entries().is_empty());
        assert!(p.to_collapsed().is_empty());
        assert_eq!(p.attributed_total(), 0);
    }

    #[test]
    fn phase_labels_round_trip_through_all() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.label().is_empty());
            assert_eq!(p.to_string(), p.label());
        }
    }
}
