//! The assembled CMP simulation.
//!
//! [`Simulation`] connects every substrate: workload streams drive
//! per-thread execution; instructions walk the core model (TLB, branch
//! predictor) and the memory hierarchy; privileged invocations consult
//! the configured decision policy; off-loaded invocations migrate to an
//! OS core picked by the [`OsCorePool`]'s dispatch policy; and the
//! optional §III-B tuner adjusts the threshold at epoch boundaries using
//! L2 hit-rate feedback.
//!
//! ## Timing model
//!
//! Each software thread owns a local cycle clock. The engine always
//! advances the thread with the smallest clock, one *segment* (user burst
//! or whole privileged invocation) at a time. Threads sharing a user core
//! serialise on the core's `free_at` time — this is the coarse-grained
//! multithreading the paper assumes when it maps two threads per core so
//! that "workloads that might stall on I/O operations … continue making
//! progress" (§II): while one thread's invocation is off-loaded to the OS
//! core, its sibling uses the user core.
//!
//! Every instruction costs one base cycle plus any TLB-refill, cache-miss
//! and branch-misprediction penalties; L1 hits are fully pipelined
//! (zero *added* cycles), so a perfectly cache-resident thread retires
//! one instruction per cycle, like the paper's in-order UltraSPARC cores.

use crate::config::{PolicyKind, SystemConfig};
use crate::metrics::{BinaryPoint, PredictorReport, QueueReport, SimReport};
use crate::migration::OffloadMechanism;
use crate::profile::{CycleProfile, CycleProfiler, Phase};
use crate::topology::OsCorePool;
use crate::trace::InvocationTrace;
use osoffload_core::{
    AState, BinaryAccuracyTracker, OffloadPolicy, OsEntry, PredictorStats, ThresholdTuner,
};
use osoffload_cpu::{ArchState, CoreParams, CoreState};
use osoffload_mem::{Access, Address, CoreId, MemSnapshot, MemorySystem};
use osoffload_obs::{Event, EventKind, MetricId, MetricsRegistry, RunTelemetry, Telemetry, Track};
use osoffload_sim::{
    alloc_audit, CancelToken, Cancelled, Counter, Cycle, EpochClock, EpochEvent, Instret, Rng64,
};
use osoffload_workload::{
    InstrSpec, OsInvocation, Segment, SharedTape, TapeCursor, TapedInstr, ThreadWorkload,
};

/// Where a thread's draw stream comes from: a live generator (the
/// scalar path) or a cursor into a shared [`WorkloadTape`]
/// (the lane path, where K co-resident simulations replay one
/// generation). Both produce bit-identical streams; see
/// [`osoffload_workload::tape`].
///
/// [`WorkloadTape`]: osoffload_workload::WorkloadTape
// Boxing the live generator would put a pointer chase on every draw in
// the scalar hot loop; the enum lives in a per-thread Vec sized at
// construction, so the size skew costs nothing.
#[allow(clippy::large_enum_variant)]
enum DrawSource {
    Live(ThreadWorkload),
    Tape(TapeCursor),
}

impl DrawSource {
    #[inline]
    fn next_segment(&mut self) -> Segment {
        match self {
            DrawSource::Live(wl) => wl.next_segment(),
            DrawSource::Tape(c) => c.next_segment(),
        }
    }

    /// Instruction `j` of the current segment of `source`.
    #[inline]
    fn instr(&mut self, source: InstrSource, j: u64) -> InstrSpec {
        match self {
            DrawSource::Live(wl) => match source {
                InstrSource::User => wl.user_instr(),
                InstrSource::Os(inv) => wl.os_instr(inv, j),
            },
            DrawSource::Tape(c) => c.instr(j),
        }
    }

    /// For a tape source, the current segment's location — the shared
    /// tape plus the `(thread, first, end)` span — so the hot loop can
    /// read the whole segment through one borrow as a contiguous
    /// slice. `None` for live sources.
    fn tape_span(&self) -> Option<(SharedTape, (usize, usize, usize))> {
        match self {
            DrawSource::Live(_) => None,
            DrawSource::Tape(c) => Some((c.tape().clone(), c.span())),
        }
    }

    /// Tape consumption depth (0 for live sources).
    fn depth(&self) -> usize {
        match self {
            DrawSource::Live(_) => 0,
            DrawSource::Tape(c) => c.depth(),
        }
    }
}

struct ThreadCtx {
    src: DrawSource,
    arch: ArchState,
    clock: Cycle,
    user_core: usize,
}

/// Where a batched segment draws its instruction stream from.
#[derive(Clone, Copy)]
enum InstrSource<'a> {
    /// User-mode burst.
    User,
    /// Body of a privileged invocation.
    Os(&'a OsInvocation),
}

/// Column handles into the telemetry metrics registry.
#[derive(Clone, Copy)]
struct MetricIds {
    offloads: MetricId,
    locals: MetricId,
    overhead: MetricId,
    queue_requests: MetricId,
    queue_stalled: MetricId,
    os_busy: MetricId,
    os_share: MetricId,
    l2_hit_rate: MetricId,
    queue_mean_delay: MetricId,
    queue_p95_delay: MetricId,
    threshold: MetricId,
}

struct ObsMetrics {
    reg: MetricsRegistry,
    ids: MetricIds,
    /// Per-OS-core busy-cycle counters (PR 6 topology stats), indexed
    /// by pool position.
    core_busy: Vec<MetricId>,
    /// Per-OS-core utilisation gauges, indexed by pool position.
    core_util: Vec<MetricId>,
    /// Dispatches in flight at the sample instant.
    queue_depth: MetricId,
}

/// One configured simulation run.
///
/// # Examples
///
/// ```
/// use osoffload_system::{Simulation, SystemConfig, PolicyKind};
/// use osoffload_workload::Profile;
///
/// let cfg = SystemConfig::builder()
///     .profile(Profile::blackscholes())
///     .policy(PolicyKind::HardwarePredictor { threshold: 1_000 })
///     .migration_latency(100)
///     .instructions(50_000)
///     .seed(7)
///     .build();
/// let report = Simulation::new(cfg).run();
/// assert!(report.throughput() > 0.0);
/// ```
pub struct Simulation {
    cfg: SystemConfig,
    mem: MemorySystem,
    cores: Vec<CoreState>,
    core_free: Vec<Cycle>,
    /// OS cores in this run's topology (0 for baseline and
    /// resource-adaptation runs). OS core `i` of the pool occupies
    /// physical core `cfg.user_cores + i`.
    os_cores: usize,
    threads: Vec<ThreadCtx>,
    policies: Vec<Box<dyn OffloadPolicy>>,
    pool: OsCorePool,
    tracker: BinaryAccuracyTracker,
    tuner: Option<ThresholdTuner>,
    epoch: Option<EpochClock>,
    epoch_snapshot: MemSnapshot,
    trace: InvocationTrace,
    telemetry: Telemetry,
    metrics: Option<ObsMetrics>,
    profiler: Option<CycleProfiler>,
    obs_clock: Option<EpochClock>,
    obs_snapshot: MemSnapshot,
    obs_epochs: u64,
    /// Cycle the observed (measured) region began at; utilisation
    /// gauges divide busy cycles by the window elapsed since it.
    obs_start: Cycle,
    offloads: Counter,
    locals: Counter,
    overhead_cycles: Counter,
    throttled_cycles: Counter,
    cyc_fetch: Counter,
    cyc_data: Counter,
    cyc_tlb: Counter,
    cyc_branch: Counter,
    retired_total: Instret,
    retired_priv: Instret,
    l1_latency: u64,
    cancel: Option<CancelToken>,
    /// Route segments through the retained per-instruction stepper
    /// instead of the batched one (bit-identity testing only).
    #[cfg(feature = "reference-stepper")]
    reference_stepper: bool,
}

impl Simulation {
    /// Builds a cold simulation from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`];
    /// use [`try_new`](Self::try_new) to get the violation as a typed
    /// error instead.
    pub fn new(cfg: SystemConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a cold simulation, rejecting a degenerate configuration
    /// with a typed [`ConfigError`](crate::ConfigError) instead of
    /// panicking deep inside a subsystem constructor.
    pub fn try_new(cfg: SystemConfig) -> Result<Self, crate::ConfigError> {
        cfg.validate()?;
        Ok(Self::build_validated(cfg))
    }

    fn build_validated(cfg: SystemConfig) -> Self {
        Self::build_with_source(cfg, None)
    }

    /// Builds a validated simulation whose threads replay `tape`
    /// instead of generating live. The tape must have been built for
    /// this configuration's (profile, phases, thread-count, seed)
    /// shape; [`LaneStepper`](crate::lanes::LaneStepper) guarantees
    /// that by keying tapes on exactly those fields.
    pub(crate) fn build_on_tape(cfg: SystemConfig, tape: SharedTape) -> Self {
        Self::build_with_source(cfg, Some(tape))
    }

    fn build_with_source(cfg: SystemConfig, tape: Option<SharedTape>) -> Self {
        let mut mem_cfg = cfg.mem_config();
        mem_cfg.seed ^= cfg.seed;
        let l1_latency = mem_cfg.l1_latency;
        let mem = MemorySystem::new(mem_cfg);

        let total_cores = cfg.total_cores();
        let cores: Vec<CoreState> = (0..total_cores)
            .map(|_| CoreState::new(CoreParams::paper_default()))
            .collect();
        let os_cores = if cfg.policy.is_baseline() || cfg.resource_adaptation.is_some() {
            0
        } else {
            cfg.os_cores
        };

        let mut master = Rng64::seed_from(cfg.seed);
        let threads = (0..cfg.thread_count())
            .map(|i| ThreadCtx {
                src: if let Some(tape) = &tape {
                    DrawSource::Tape(TapeCursor::new(tape.clone(), i))
                } else if cfg.phases.is_empty() {
                    DrawSource::Live(ThreadWorkload::new(
                        cfg.profile.clone(),
                        i,
                        master.split().next_u64(),
                    ))
                } else {
                    DrawSource::Live(ThreadWorkload::with_phases(
                        cfg.profile.clone(),
                        cfg.phases.clone(),
                        i,
                        master.split().next_u64(),
                    ))
                },
                arch: ArchState::new(),
                clock: Cycle::ZERO,
                user_core: i / cfg.profile.threads_per_core,
            })
            .collect();

        let policies = (0..cfg.user_cores)
            .map(|_| cfg.policy.build(&cfg.profile, cfg.migration))
            .collect();

        Simulation {
            mem,
            cores,
            core_free: vec![Cycle::ZERO; total_cores],
            os_cores,
            threads,
            policies,
            pool: OsCorePool::new(
                cfg.os_cores.max(1),
                cfg.os_core_contexts,
                cfg.dispatch,
                cfg.os_cold_penalty,
            ),
            trace: InvocationTrace::new(cfg.trace_capacity),
            tracker: BinaryAccuracyTracker::paper_grid(),
            tuner: cfg.tuner.clone().map(ThresholdTuner::new),
            epoch: None,
            epoch_snapshot: MemSnapshot::default(),
            telemetry: Telemetry::off(),
            metrics: None,
            profiler: None,
            obs_clock: None,
            obs_snapshot: MemSnapshot::default(),
            obs_epochs: 0,
            obs_start: Cycle::ZERO,
            offloads: Counter::new(),
            locals: Counter::new(),
            overhead_cycles: Counter::new(),
            throttled_cycles: Counter::new(),
            cyc_fetch: Counter::new(),
            cyc_data: Counter::new(),
            cyc_tlb: Counter::new(),
            cyc_branch: Counter::new(),
            retired_total: Instret::ZERO,
            retired_priv: Instret::ZERO,
            l1_latency,
            cancel: None,
            #[cfg(feature = "reference-stepper")]
            reference_stepper: false,
            cfg,
        }
    }

    /// Installs a cancellation token the run polls at its segment
    /// accounting boundaries (builder-style; call before `run`).
    ///
    /// When the token is raised mid-run the simulation unwinds with a
    /// [`Cancelled`] panic payload — the experiment runner catches it
    /// and records the point as timed out. Without a token the poll is
    /// a single branch on a `None`, so watchdog-disabled runs stay
    /// bit-identical and allocation-free.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Runs warm-up plus the measured region and produces the report.
    pub fn run(mut self) -> SimReport {
        let measured_start = self.run_core();
        self.build_report(measured_start)
    }

    /// Runs the simulation through the retained per-instruction reference
    /// stepper instead of the batched one. Exists solely so the
    /// bit-identity suite can prove the batched stepper changes nothing.
    #[cfg(feature = "reference-stepper")]
    pub fn run_reference(mut self) -> SimReport {
        self.reference_stepper = true;
        let measured_start = self.run_core();
        self.build_report(measured_start)
    }

    /// The shared warm-up → reset → measure sequence behind every run
    /// flavour. Returns the cycle the measured region started at.
    fn run_core(&mut self) -> Cycle {
        if self.cfg.warmup > 0 {
            self.execute(Instret::new(self.cfg.warmup));
        }
        let measured_start = self.begin_measured();
        alloc_audit::region_enter();
        self.execute(Instret::new(self.cfg.instructions));
        alloc_audit::region_exit();
        measured_start
    }

    /// The warm-up → measured transition: snapshots the warm-up
    /// privileged fraction, resets statistics, rebuilds the trace,
    /// arms the tuner and observation, and returns the cycle the
    /// measured region starts at. All allocating setup happens here,
    /// *before* the caller enters the allocation-audited region — the
    /// lane stepper relies on that split to run one audited region
    /// across many co-resident simulations.
    pub(crate) fn begin_measured(&mut self) -> Cycle {
        let warmup_priv_frac = if self.retired_total > Instret::ZERO {
            self.retired_priv.as_f64() / self.retired_total.as_f64()
        } else {
            0.0
        };
        self.reset_statistics();
        self.trace = InvocationTrace::new(self.cfg.trace_capacity);
        self.start_tuner(warmup_priv_frac);
        self.start_observation();
        self.max_clock()
    }

    /// Arms observation (telemetry and/or the profiler) for the
    /// measured region: warm-up never records, so events, samples,
    /// profiles, and overhead all cover measurement only.
    fn start_observation(&mut self) {
        self.telemetry = Telemetry::from_mode(self.cfg.telemetry, self.cfg.telemetry_capacity);
        self.obs_epochs = 0;
        self.obs_start = self.max_clock();
        self.profiler = self.cfg.profiling.then(CycleProfiler::new);
        if !self.telemetry.is_enabled() && self.profiler.is_none() {
            self.obs_clock = None;
            self.metrics = None;
            return;
        }
        // Sample on an independent deterministic clock (~64 samples per
        // run) so metric series exist with or without the tuner. The
        // profiler shares this clock for its cumulative snapshots;
        // boundary samples only *read* engine state, so arming the
        // clock for a profiling-only run perturbs nothing.
        let interval = (self.cfg.instructions / 64).max(1);
        self.obs_clock = Some(EpochClock::new(Instret::new(interval)));
        self.obs_snapshot = self.mem.snapshot();
        if !self.telemetry.is_enabled() {
            self.metrics = None;
            return;
        }
        let mut reg = MetricsRegistry::new();
        let ids = MetricIds {
            offloads: reg.register_counter("offloads"),
            locals: reg.register_counter("local_invocations"),
            overhead: reg.register_counter("decision_overhead_cycles"),
            queue_requests: reg.register_counter("queue_requests"),
            queue_stalled: reg.register_counter("queue_stalled"),
            os_busy: reg.register_counter("os_core_busy_cycles"),
            os_share: reg.register_gauge("os_share"),
            l2_hit_rate: reg.register_gauge("l2_hit_rate"),
            queue_mean_delay: reg.register_gauge("queue_mean_delay"),
            queue_p95_delay: reg.register_gauge("queue_p95_delay"),
            threshold: reg.register_gauge("threshold"),
        };
        // PR 6's topology stats as epoch-sampled series: per-OS-core
        // busy/utilisation plus the dispatch queue depth, so they show
        // up in the Chrome-trace counter tracks and the metrics CSV.
        let core_busy = (0..self.os_cores)
            .map(|i| reg.register_counter(&format!("os_core{i}_busy_cycles")))
            .collect();
        let core_util = (0..self.os_cores)
            .map(|i| reg.register_gauge(&format!("os_core{i}_utilisation")))
            .collect();
        let queue_depth = reg.register_gauge("dispatch_queue_depth");
        self.metrics = Some(ObsMetrics {
            reg,
            ids,
            core_busy,
            core_util,
            queue_depth,
        });
    }

    fn max_clock(&self) -> Cycle {
        self.threads
            .iter()
            .map(|t| t.clock)
            .fold(Cycle::ZERO, Cycle::max)
    }

    fn reset_statistics(&mut self) {
        self.mem.reset_stats();
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.pool.reset_stats();
        for p in &mut self.policies {
            p.reset_stats();
        }
        self.tracker = BinaryAccuracyTracker::paper_grid();
        self.offloads.take();
        self.locals.take();
        self.overhead_cycles.take();
        self.throttled_cycles.take();
        self.cyc_fetch.take();
        self.cyc_data.take();
        self.cyc_tlb.take();
        self.cyc_branch.take();
        self.retired_total = Instret::ZERO;
        self.retired_priv = Instret::ZERO;
    }

    fn start_tuner(&mut self, priv_fraction: f64) {
        let Some(tuner) = self.tuner.as_mut() else {
            return;
        };
        let directive = tuner.initialize(priv_fraction);
        for p in &mut self.policies {
            p.set_threshold(directive.threshold);
        }
        self.epoch = Some(EpochClock::new(directive.epoch_len));
        self.epoch_snapshot = self.mem.snapshot();
    }

    fn execute(&mut self, target: Instret) {
        let start = self.retired_total;
        while self.retired_total - start < target {
            self.step_segment();
        }
    }

    /// Advances the lowest-clock thread by exactly one segment (a user
    /// burst or a whole privileged invocation) — the quantum the lane
    /// stepper interleaves across co-resident simulations.
    pub(crate) fn step_segment(&mut self) {
        let t = self.next_thread();
        match self.threads[t].src.next_segment() {
            Segment::User { len } => self.run_user_burst(t, len),
            Segment::Os(inv) => self.run_invocation(t, inv),
        }
    }

    /// Instructions retired since the last statistics reset.
    pub(crate) fn retired(&self) -> Instret {
        self.retired_total
    }

    /// Thread `t`'s tape consumption depth (the spec index one past
    /// its cursor's current segment; 0 for live sources). Used by the
    /// lane stepper to size the pre-extension that keeps the measured
    /// region allocation-free.
    pub(crate) fn tape_depth(&self, t: usize) -> usize {
        self.threads[t].src.depth()
    }

    /// Finalises a lane: builds the report for a measured region that
    /// started at `measured_start` (as returned by
    /// [`begin_measured`](Self::begin_measured)).
    pub(crate) fn finish(self, measured_start: Cycle) -> SimReport {
        self.build_report(measured_start)
    }

    fn next_thread(&self) -> usize {
        self.threads
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (t.clock, *i))
            .map(|(i, _)| i)
            .expect("at least one thread")
    }

    /// Executes `len` instructions of `source` for thread `t` on
    /// `core_idx`, returning the elapsed cycles in the issuing clock
    /// domain.
    ///
    /// This is the batched stepper: per-instruction penalty cycles
    /// accumulate in locals and commit to the shared counters once per
    /// segment, so the inner loop touches only the TLB/cache/branch
    /// structures each instruction actually exercises. The sequence of
    /// workload draws and structure updates is exactly that of stepping
    /// one instruction at a time (the retained reference stepper), which
    /// the bit-identity suite verifies.
    ///
    /// `scale_milli` stretches each instruction's cost by `/1000` with
    /// per-instruction floor division — heterogeneous OS cores and
    /// resource-adaptation throttling both scale this way, and the floor
    /// must stay per-instruction (a sum of floors is not the floor of the
    /// sum).
    fn run_batch(
        &mut self,
        t: usize,
        core_idx: usize,
        len: u64,
        source: InstrSource,
        scale_milli: u64,
    ) -> Cycle {
        #[cfg(feature = "reference-stepper")]
        if self.reference_stepper {
            return self.run_batch_reference(t, core_idx, len, source, scale_milli);
        }
        let cid = CoreId::new(core_idx);
        let l1_latency = self.l1_latency;
        let mut elapsed = 0u64;
        let (mut acc_tlb, mut acc_fetch, mut acc_data, mut acc_branch) = (0u64, 0u64, 0u64, 0u64);
        // On the lane path the whole segment is already materialised in
        // the shared tape: borrow it once and walk the contiguous spec
        // slice, instead of paying a shared-state access per
        // instruction. Live sources draw per instruction as before.
        let tape_span = self.threads[t].src.tape_span();
        let guard = tape_span.as_ref().map(|(tape, _)| tape.borrow());
        let feed: Option<&[TapedInstr]> = match (&guard, &tape_span) {
            (Some(g), Some((_, (th, first, end)))) => Some(g.specs(*th, *first, *end)),
            _ => None,
        };
        for j in 0..len {
            let spec = match feed {
                Some(specs) => specs[j as usize].unpack(),
                None => self.threads[t].src.instr(source, j),
            };
            let mut cost = 1u64;
            let tlb_i = self.cores[core_idx].tlb_mut().translate(spec.pc).as_u64();
            let fetch = self.mem.access(cid, Access::fetch(Address::new(spec.pc)));
            let fetch_extra = fetch.latency.as_u64() - l1_latency;
            cost += tlb_i + fetch_extra;
            acc_tlb += tlb_i;
            acc_fetch += fetch_extra;
            if let Some(m) = spec.mem {
                let tlb_d = self.cores[core_idx].tlb_mut().translate(m.addr).as_u64();
                let access = if m.write {
                    Access::write(Address::new(m.addr))
                } else {
                    Access::read(Address::new(m.addr))
                };
                let outcome = self.mem.access(cid, access);
                let data_extra = outcome.latency.as_u64() - l1_latency;
                cost += tlb_d + data_extra;
                acc_tlb += tlb_d;
                acc_data += data_extra;
            }
            if let Some(taken) = spec.branch {
                let bp = self.cores[core_idx]
                    .branch_mut()
                    .execute(spec.pc, taken)
                    .as_u64();
                cost += bp;
                acc_branch += bp;
            }
            elapsed += if scale_milli == 1_000 {
                cost
            } else {
                cost * scale_milli / 1_000
            };
        }
        self.cyc_tlb.add(acc_tlb);
        self.cyc_fetch.add(acc_fetch);
        self.cyc_data.add(acc_data);
        self.cyc_branch.add(acc_branch);
        Cycle::new(elapsed)
    }

    /// The pre-batching stepper: one instruction per call, counters
    /// committed immediately. Retained behind the `reference-stepper`
    /// feature as the oracle the bit-identity suite compares against.
    #[cfg(feature = "reference-stepper")]
    fn run_batch_reference(
        &mut self,
        t: usize,
        core_idx: usize,
        len: u64,
        source: InstrSource,
        scale_milli: u64,
    ) -> Cycle {
        let mut elapsed = 0u64;
        for j in 0..len {
            let spec = self.threads[t].src.instr(source, j);
            let cost = self.exec_instr(core_idx, &spec);
            elapsed += if scale_milli == 1_000 {
                cost
            } else {
                cost * scale_milli / 1_000
            };
        }
        Cycle::new(elapsed)
    }

    /// Cost of one dynamic instruction on `core_idx`, in cycles.
    #[cfg(feature = "reference-stepper")]
    fn exec_instr(&mut self, core_idx: usize, spec: &InstrSpec) -> u64 {
        let cid = CoreId::new(core_idx);
        let mut cost = 1u64;
        let tlb_i = self.cores[core_idx].tlb_mut().translate(spec.pc).as_u64();
        let fetch = self.mem.access(cid, Access::fetch(Address::new(spec.pc)));
        let fetch_extra = fetch.latency.as_u64() - self.l1_latency;
        cost += tlb_i + fetch_extra;
        self.cyc_tlb.add(tlb_i);
        self.cyc_fetch.add(fetch_extra);
        if let Some(m) = spec.mem {
            let tlb_d = self.cores[core_idx].tlb_mut().translate(m.addr).as_u64();
            let access = if m.write {
                Access::write(Address::new(m.addr))
            } else {
                Access::read(Address::new(m.addr))
            };
            let outcome = self.mem.access(cid, access);
            let data_extra = outcome.latency.as_u64() - self.l1_latency;
            cost += tlb_d + data_extra;
            self.cyc_tlb.add(tlb_d);
            self.cyc_data.add(data_extra);
        }
        if let Some(taken) = spec.branch {
            let bp = self.cores[core_idx]
                .branch_mut()
                .execute(spec.pc, taken)
                .as_u64();
            cost += bp;
            self.cyc_branch.add(bp);
        }
        cost
    }

    fn run_user_burst(&mut self, t: usize, len: u64) {
        let core_idx = self.threads[t].user_core;
        let start = self.threads[t].clock.max(self.core_free[core_idx]);
        let now = start + self.run_batch(t, core_idx, len, InstrSource::User, 1_000);
        self.cores[core_idx].retire_user(len);
        self.cores[core_idx].add_busy(now - start);
        self.core_free[core_idx] = now;
        self.threads[t].clock = now;
        if let Some(p) = self.profiler.as_mut() {
            p.record("user", Phase::UserExec, (now - start).as_u64());
        }
        self.telemetry.emit_with(|| Event {
            ts: start.as_u64(),
            dur: (now - start).as_u64(),
            track: Track::Thread(t),
            kind: EventKind::UserBurst { len },
        });
        self.account(len, false);
    }

    fn run_invocation(&mut self, t: usize, inv: OsInvocation) {
        let core_idx = self.threads[t].user_core;
        let len = inv.actual_len;

        // Trap entry: install the invocation's registers and switch mode.
        {
            let th = &mut self.threads[t];
            th.arch.set_global(1, inv.regs[0]);
            th.arch.set_input(0, inv.regs[1]);
            th.arch.set_input(1, inv.regs[2]);
            th.arch.enter_privileged();
        }
        let entry = OsEntry {
            astate: AState::from_arch(&self.threads[t].arch),
            routine: inv.syscall.trap_number(),
        };

        let policy = &mut self.policies[core_idx];
        policy.hint_actual(len);
        let decision = policy.decide(entry);
        if let Some(p) = decision.prediction {
            self.tracker.record(p.length, len);
        }
        self.overhead_cycles.add(decision.overhead_cycles);

        let entry_start = self.threads[t].clock.max(self.core_free[core_idx]);
        let mut now = entry_start + decision.overhead_cycles;
        let mut traced_queue_delay = 0u64;
        let sys_name = inv.syscall.spec().name;
        if let Some(p) = self.profiler.as_mut() {
            p.record(sys_name, Phase::Decision, decision.overhead_cycles);
        }

        if decision.offload && self.cfg.resource_adaptation.is_some() {
            // Li & John resource adaptation (§VI-B): the invocation runs
            // locally while the core throttles — trading cycles for
            // power, with no migration and no second cache.
            let slowdown = self.cfg.resource_adaptation.expect("checked");
            self.offloads.incr();
            let throttle_start = now;
            now += self.run_batch(t, core_idx, len, InstrSource::Os(&inv), slowdown);
            self.throttled_cycles.add((now - throttle_start).as_u64());
            if let Some(p) = self.profiler.as_mut() {
                p.record(sys_name, Phase::Throttled, (now - throttle_start).as_u64());
            }
            self.cores[core_idx].retire_privileged(len);
            self.cores[core_idx].add_busy(now - entry_start);
            self.core_free[core_idx] = now;
        } else if decision.offload && self.os_cores > 0 {
            self.offloads.incr();
            self.cores[core_idx].add_busy(now - entry_start);
            match self.cfg.mechanism {
                OffloadMechanism::ThreadMigration => {
                    // Off-loading migrates the *thread*: its architected
                    // state moves to the OS core and back (§II,
                    // "interrupting program control flow on the user
                    // processor and writing architected register state to
                    // memory"). The user core cannot run other work
                    // during the round trip at these microsecond
                    // timescales, so it stays reserved until the thread
                    // returns.
                }
                OffloadMechanism::RemoteCall => {
                    // RPC-style off-load (§II's untaken design point):
                    // only a request message leaves; the user core is
                    // free for the sibling thread while the OS core
                    // works.
                    self.core_free[core_idx] = now;
                }
            }

            let arrival = now + self.cfg.migration.one_way();
            let d = self.pool.dispatch(arrival, core_idx, entry.astate.as_u64());
            // OS core `d.core` of the pool lives at this physical index.
            let os_idx = self.cfg.user_cores + d.core;
            traced_queue_delay = (d.start - arrival).as_u64();
            let os_scale = self.cfg.os_core_slowdown_milli;
            let os_now = d.start
                + d.warm_up
                + self.run_batch(t, os_idx, len, InstrSource::Os(&inv), os_scale);
            self.pool.release(d.token, os_now);
            self.pool.add_busy(d.core, os_now - d.start);
            self.cores[os_idx].retire_privileged(len);
            self.cores[os_idx].add_busy(os_now - d.start);
            if let Some(p) = self.profiler.as_mut() {
                p.record(sys_name, Phase::MigrationOut, (arrival - now).as_u64());
                p.record(sys_name, Phase::QueueWait, traced_queue_delay);
                p.record(sys_name, Phase::ColdPenalty, d.warm_up.as_u64());
                p.record(
                    sys_name,
                    Phase::OsService,
                    (os_now - d.start - d.warm_up).as_u64(),
                );
                p.record(
                    sys_name,
                    Phase::MigrationBack,
                    self.cfg.migration.one_way().as_u64(),
                );
            }
            self.telemetry.emit_with(|| Event {
                ts: now.as_u64(),
                dur: (arrival - now).as_u64(),
                track: Track::Thread(t),
                kind: EventKind::Migration { outbound: true },
            });
            if traced_queue_delay > 0 {
                self.telemetry.emit_with(|| Event {
                    ts: arrival.as_u64(),
                    dur: traced_queue_delay,
                    track: Track::Thread(t),
                    kind: EventKind::QueueWait,
                });
            }
            self.telemetry.emit_with(|| Event {
                ts: d.start.as_u64(),
                dur: (os_now - d.start).as_u64(),
                track: Track::Core(os_idx),
                kind: EventKind::OsService {
                    name: inv.syscall.spec().name,
                    len,
                },
            });
            self.telemetry.emit_with(|| Event {
                ts: os_now.as_u64(),
                dur: self.cfg.migration.one_way().as_u64(),
                track: Track::Thread(t),
                kind: EventKind::Migration { outbound: false },
            });
            now = os_now + self.cfg.migration.one_way();
            if self.cfg.mechanism == OffloadMechanism::ThreadMigration {
                self.core_free[core_idx] = now;
            } else {
                // The response interrupts whichever thread holds the
                // user core; the returning thread resumes once the core
                // frees (handled by the next segment's max()).
            }
        } else {
            self.locals.incr();
            let local_start = now;
            now += self.run_batch(t, core_idx, len, InstrSource::Os(&inv), 1_000);
            if let Some(p) = self.profiler.as_mut() {
                p.record(sys_name, Phase::LocalExec, (now - local_start).as_u64());
            }
            self.cores[core_idx].retire_privileged(len);
            self.cores[core_idx].add_busy(now - entry_start);
            self.core_free[core_idx] = now;
        }

        // One invocation event feeds both consumers: the per-invocation
        // trace ring and the telemetry sink.
        if self.trace.is_enabled() || self.telemetry.is_enabled() {
            let event = Event {
                ts: entry_start.as_u64(),
                dur: (now - entry_start).as_u64(),
                track: Track::Thread(t),
                kind: EventKind::Invocation {
                    name: inv.syscall.spec().name,
                    trap: inv.syscall.trap_number(),
                    astate: entry.astate.as_u64(),
                    predicted: decision.prediction.map(|p| p.length),
                    offloaded: decision.offload,
                    actual_len: len,
                    queue_delay: traced_queue_delay,
                },
            };
            self.trace.consume(&event);
            self.telemetry.emit_with(|| event);
        }
        self.threads[t].clock = now;
        self.policies[core_idx].complete(entry, &decision, len);
        self.threads[t].arch.exit_privileged();
        self.account(len, true);
    }

    fn account(&mut self, n: u64, is_priv: bool) {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                std::panic::panic_any(Cancelled);
            }
        }
        self.retired_total += n;
        if is_priv {
            self.retired_priv += n;
        }
        self.tuner_epoch(n);
        self.observe_epoch(n);
    }

    /// Epoch-driven threshold tuning (§III-B).
    fn tuner_epoch(&mut self, n: u64) {
        let mut decision = None;
        {
            let Some(epoch) = self.epoch.as_mut() else {
                return;
            };
            if let EpochEvent::Boundary { count, .. } = epoch.advance(Instret::new(n)) {
                // A whole segment (possibly one long privileged invocation)
                // was advanced at once, so several epochs may have completed.
                // The L2 hit rate measured over the spanned interval is the
                // best per-epoch sample available for each of them; feed the
                // tuner once per boundary so it never under-samples.
                let snap = self.mem.snapshot();
                let rate = snap.l2_hit_rate_since(&self.epoch_snapshot);
                self.epoch_snapshot = snap;
                let tuner = self.tuner.as_mut().expect("epoch implies tuner");
                let mut directive = tuner.on_epoch_end(rate);
                for _ in 1..count {
                    directive = tuner.on_epoch_end(rate);
                }
                epoch.set_epoch_len(directive.epoch_len);
                let prev = self.policies.first().and_then(|p| p.threshold());
                for p in &mut self.policies {
                    p.set_threshold(directive.threshold);
                }
                decision = Some((directive, prev));
            }
        }
        if let Some((directive, prev)) = decision {
            if self.telemetry.is_enabled() {
                let ts = self.max_clock().as_u64();
                self.telemetry.emit_with(|| Event {
                    ts,
                    dur: 0,
                    track: Track::Control,
                    kind: EventKind::TunerDecision {
                        threshold: directive.threshold,
                        epoch_len: directive.epoch_len.as_u64(),
                        adopted: prev != Some(directive.threshold),
                    },
                });
            }
        }
    }

    /// The telemetry sampling clock: independent of the tuner's epoch so
    /// metric series exist for every policy.
    fn observe_epoch(&mut self, n: u64) {
        let Some(clock) = self.obs_clock.as_mut() else {
            return;
        };
        let EpochEvent::Boundary { first, count } = clock.advance(Instret::new(n)) else {
            return;
        };
        // A long segment can span several epochs; one sample covers them
        // all, indexed by the last epoch it completes.
        self.obs_sample(first + count - 1);
    }

    /// Takes one epoch-boundary sample: snapshots the accumulators the
    /// simulator already keeps (nothing is incremented on the hot path)
    /// and emits the boundary instant.
    fn obs_sample(&mut self, index: u64) {
        let now = self.max_clock().as_u64();
        let snap = self.mem.snapshot();
        let rate = snap.l2_hit_rate_since(&self.obs_snapshot);
        self.obs_snapshot = snap;
        self.obs_epochs += 1;
        self.telemetry.emit_with(|| Event {
            ts: now,
            dur: 0,
            track: Track::Control,
            kind: EventKind::Epoch {
                index,
                l2_hit_rate: rate,
            },
        });
        let threshold = self
            .policies
            .first()
            .and_then(|p| p.threshold())
            .unwrap_or(0) as f64;
        let os_share = if self.retired_total > Instret::ZERO {
            self.retired_priv.as_f64() / self.retired_total.as_f64()
        } else {
            0.0
        };
        let queue_mean = self.pool.queue_delay().mean();
        let queue_p95 = self.pool.queue_delay_hist().quantile(95.0) as f64;
        let instructions = self.retired_total.as_u64();
        if let Some(obs) = self.metrics.as_mut() {
            let ids = obs.ids;
            obs.reg.set(ids.offloads, self.offloads.get() as f64);
            obs.reg.set(ids.locals, self.locals.get() as f64);
            obs.reg.set(ids.overhead, self.overhead_cycles.get() as f64);
            obs.reg.set(ids.queue_requests, self.pool.requests() as f64);
            obs.reg.set(ids.queue_stalled, self.pool.stalled() as f64);
            obs.reg.set(ids.os_busy, self.pool.busy().as_f64());
            obs.reg.set(ids.os_share, os_share);
            obs.reg.set(ids.l2_hit_rate, rate);
            obs.reg.set(ids.queue_mean_delay, queue_mean);
            obs.reg.set(ids.queue_p95_delay, queue_p95);
            obs.reg.set(ids.threshold, threshold);
            let window = now.saturating_sub(self.obs_start.as_u64());
            for i in 0..self.os_cores {
                let busy = self.pool.core_busy(i).as_f64();
                obs.reg.set(obs.core_busy[i], busy);
                let util = if window == 0 {
                    0.0
                } else {
                    (busy / window as f64).min(1.0)
                };
                obs.reg.set(obs.core_util[i], util);
            }
            obs.reg.set(obs.queue_depth, self.pool.in_flight() as f64);
            obs.reg.commit_sample(index, instructions, now);
        }
        if let Some(p) = self.profiler.as_mut() {
            p.epoch_sample(index, instructions, now);
        }
    }

    fn merged_predictor_stats(&self) -> Option<PredictorStats> {
        let mut merged: Option<PredictorStats> = None;
        for p in &self.policies {
            if let Some(s) = p.predictor_stats() {
                match merged.as_mut() {
                    Some(m) => {
                        m.exact.merge(&s.exact);
                        m.within_close.merge(&s.within_close);
                        m.underestimates.merge(&s.underestimates);
                        m.local_source.merge(&s.local_source);
                    }
                    None => merged = Some(s),
                }
            }
        }
        merged
    }

    fn build_report(&self, measured_start: Cycle) -> SimReport {
        let cycles = (self.max_clock() - measured_start).as_u64().max(1);
        let instructions = self.retired_total.as_u64();

        let mut l1d = (0u64, 0u64);
        let mut l1i = (0u64, 0u64);
        let mut l2u = (0u64, 0u64);
        let (mut l1d_total, mut l1i_total, mut l2_total) = (0u64, 0u64, 0u64);
        for i in 0..self.cores.len() {
            let cid = CoreId::new(i);
            let d = self.mem.l1d_stats(cid);
            l1d_total += d.hits.get() + d.misses.get();
            let f = self.mem.l1i_stats(cid);
            l1i_total += f.hits.get() + f.misses.get();
            let l2 = self.mem.l2_stats(cid);
            l2_total += l2.hits.get() + l2.misses.get();
        }
        for i in 0..self.cfg.user_cores {
            let cid = CoreId::new(i);
            let d = self.mem.l1d_stats(cid);
            l1d.0 += d.hits.get();
            l1d.1 += d.hits.get() + d.misses.get();
            let ins = self.mem.l1i_stats(cid);
            l1i.0 += ins.hits.get();
            l1i.1 += ins.hits.get() + ins.misses.get();
            let l2 = self.mem.l2_stats(cid);
            l2u.0 += l2.hits.get();
            l2u.1 += l2.hits.get() + l2.misses.get();
        }
        let rate = |(h, t): (u64, u64)| if t == 0 { 0.0 } else { h as f64 / t as f64 };
        let user_branch_accuracy = {
            let (mut hits, mut total) = (0u64, 0u64);
            for core in self.cores.iter().take(self.cfg.user_cores) {
                let p = &core.branch().stats().predictions;
                hits += p.hits();
                total += p.total();
            }
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        let l2_os_hit_rate = if self.os_cores == 0 {
            0.0
        } else {
            (0..self.os_cores)
                .map(|i| {
                    self.mem
                        .l2_stats(CoreId::new(self.cfg.user_cores + i))
                        .hit_rate()
                })
                .sum::<f64>()
                / self.os_cores as f64
        };

        let predictor = self.merged_predictor_stats().map(|s| PredictorReport {
            exact: s.exact.rate(),
            within_5pct: s.within_close.rate(),
            underestimates: s.underestimates.rate(),
            local_fraction: s.local_source.rate(),
        });

        SimReport {
            profile: self.cfg.profile.name.to_string(),
            policy: self.cfg.policy.label().to_string(),
            threshold: match self.cfg.policy {
                PolicyKind::HardwarePredictor { threshold }
                | PolicyKind::HardwarePredictorDirectMapped { threshold }
                | PolicyKind::HardwarePredictorSized { threshold, .. }
                | PolicyKind::HardwarePredictorDmSized { threshold, .. }
                | PolicyKind::HardwarePredictorSetAssoc { threshold, .. }
                | PolicyKind::HardwarePredictorGlobalOnly { threshold }
                | PolicyKind::HardwarePredictorLastValue { threshold }
                | PolicyKind::DynamicInstrumentation { threshold, .. }
                | PolicyKind::Oracle { threshold } => Some(threshold),
                PolicyKind::AlwaysOffload => Some(0),
                _ => None,
            },
            final_threshold: self.policies.first().and_then(|p| p.threshold()),
            migration_one_way: self.cfg.migration.one_way().as_u64(),
            user_cores: self.cfg.user_cores,
            os_cores: self.os_cores,
            dispatch: self.cfg.dispatch.label().to_string(),
            threads: self.threads.len(),
            instructions,
            cycles,
            throughput: instructions as f64 / cycles as f64,
            os_share: if instructions == 0 {
                0.0
            } else {
                self.retired_priv.as_f64() / instructions as f64
            },
            offloads: self.offloads.get(),
            local_invocations: self.locals.get(),
            decision_overhead_cycles: self.overhead_cycles.get(),
            l1d_hit_rate: rate(l1d),
            l1i_hit_rate: rate(l1i),
            user_branch_accuracy,
            l2_user_hit_rate: rate(l2u),
            l2_os_hit_rate,
            l2_mean_hit_rate: self.mem.mean_l2_hit_rate(),
            c2c_transfers: self.mem.interconnect().c2c_transfers(),
            invalidation_rounds: self.mem.interconnect().invalidation_rounds(),
            l1d_accesses: l1d_total,
            l1i_accesses: l1i_total,
            l2_accesses: l2_total,
            dram_accesses: self.mem.dram().accesses(),
            throttled_cycles: self.throttled_cycles.get(),
            // Thread clocks are skewed at the measurement boundary, so a
            // heavily saturated OS core can accrue slightly more busy
            // time than the max-clock window; clamp to the definition's
            // domain.
            os_core_busy_frac: (self.pool.busy().as_f64() / cycles as f64).min(1.0),
            os_core_busy_cycles: (0..self.os_cores)
                .map(|i| self.pool.core_busy(i).as_u64())
                .collect(),
            os_core_utilisation: (0..self.os_cores)
                .map(|i| (self.pool.core_busy(i).as_f64() / cycles as f64).min(1.0))
                .collect(),
            user_cores_busy_frac: {
                let busy: f64 = (0..self.cfg.user_cores)
                    .map(|i| self.cores[i].busy().as_f64())
                    .sum();
                (busy / (cycles as f64 * self.cfg.user_cores as f64)).min(1.0)
            },
            queue: QueueReport {
                requests: self.pool.requests(),
                stalled: self.pool.stalled(),
                mean_delay: self.pool.queue_delay().mean(),
                p50_delay: self.pool.queue_delay_hist().quantile(50.0),
                p95_delay: self.pool.queue_delay_hist().quantile(95.0),
                p99_delay: self.pool.queue_delay_hist().quantile(99.0),
            },
            cycle_breakdown: crate::metrics::CycleBreakdown {
                base: instructions,
                fetch: self.cyc_fetch.get(),
                data: self.cyc_data.get(),
                tlb: self.cyc_tlb.get(),
                branch: self.cyc_branch.get(),
                migration: self
                    .offloads
                    .get()
                    .saturating_mul(2)
                    .saturating_mul(self.cfg.migration.one_way().as_u64()),
                queue_wait: self.pool.queue_delay().sum() as u64,
                decision: self.overhead_cycles.get(),
            },
            binary_accuracy: self
                .tracker
                .iter()
                .map(|(threshold, accuracy)| BinaryPoint {
                    threshold,
                    accuracy,
                })
                .collect(),
            predictor,
            tuner_events: self.tuner.as_ref().map_or(0, |t| t.history().len()),
        }
    }

    /// Runs to completion and returns both the report and the
    /// per-invocation trace (enable recording with
    /// [`SystemConfigBuilder::trace`](crate::config::SystemConfigBuilder::trace)).
    pub fn run_traced(mut self) -> (SimReport, InvocationTrace) {
        let measured_start = self.run_core();
        let report = self.build_report(measured_start);
        (report, self.trace)
    }

    /// The tuner's decision log, when the tuner is enabled.
    pub fn tuner_history(&self) -> Option<&[osoffload_core::TunerEvent]> {
        self.tuner.as_ref().map(|t| t.history())
    }

    /// Runs to completion and returns both the report and the tuner log.
    pub fn run_with_tuner_trace(mut self) -> (SimReport, Vec<osoffload_core::TunerEvent>) {
        let measured_start = self.run_core();
        let report = self.build_report(measured_start);
        let trace = self
            .tuner
            .as_ref()
            .map(|t| t.history().to_vec())
            .unwrap_or_default();
        (report, trace)
    }

    /// Runs to completion and returns the report plus the recorded
    /// telemetry (enable with
    /// [`SystemConfigBuilder::telemetry`](crate::config::SystemConfigBuilder::telemetry)).
    ///
    /// Telemetry is purely observational: the report is identical to the
    /// one [`run`](Self::run) produces for the same configuration and
    /// seed, whatever the telemetry mode.
    pub fn run_with_telemetry(self) -> (SimReport, RunTelemetry) {
        let (report, telemetry, _) = self.run_full_observed();
        (report, telemetry)
    }

    /// Runs to completion and returns the report plus the
    /// cycle-attribution profile (enable with
    /// [`SystemConfigBuilder::profiling`](crate::config::SystemConfigBuilder::profiling)).
    ///
    /// Profiling shares telemetry's observational contract: the report
    /// is identical to [`run`](Self::run)'s for the same configuration
    /// and seed, profiler on or off.
    pub fn run_with_profile(self) -> (SimReport, CycleProfile) {
        let (report, _, profile) = self.run_full_observed();
        (report, profile)
    }

    /// Runs to completion and returns every observation artifact at
    /// once: the report, the recorded telemetry, and the
    /// cycle-attribution profile. The single run method behind
    /// [`run_with_telemetry`](Self::run_with_telemetry) and
    /// [`run_with_profile`](Self::run_with_profile); use it directly
    /// when both layers are enabled so one simulation pays for both.
    pub fn run_full_observed(mut self) -> (SimReport, RunTelemetry, CycleProfile) {
        let measured_start = self.run_core();
        let report = self.build_report(measured_start);
        let mode = self.telemetry.mode();
        let events_seen = self.telemetry.seen();
        let events_dropped = self.telemetry.dropped();
        let events = self.telemetry.take_events();
        let metrics = self.metrics.take().map(|m| m.reg).unwrap_or_default();
        let profile = self
            .profiler
            .take()
            .map(CycleProfiler::finish)
            .unwrap_or_default();
        (
            report,
            RunTelemetry {
                events,
                events_seen,
                events_dropped,
                metrics,
                mode,
            },
            profile,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osoffload_core::TunerConfig;
    use osoffload_workload::Profile;

    fn small(policy: PolicyKind, latency: u64) -> SystemConfig {
        SystemConfig::builder()
            .profile(Profile::apache())
            .policy(policy)
            .migration_latency(latency)
            .instructions(60_000)
            .warmup(20_000)
            .seed(42)
            .build()
    }

    #[test]
    fn baseline_run_produces_sane_report() {
        let r = Simulation::new(small(PolicyKind::Baseline, 0)).run();
        // Tiny runs are cache-cold; the bound only guards against
        // degenerate timing, not steady-state IPC.
        assert!(
            r.throughput > 0.02 && r.throughput < 1.0,
            "tput = {}",
            r.throughput
        );
        assert_eq!(r.offloads, 0);
        assert!(r.local_invocations > 0);
        assert!(
            r.os_share > 0.2,
            "apache should be OS-heavy: {}",
            r.os_share
        );
        assert_eq!(r.os_core_busy_frac, 0.0);
        assert!(r.instructions >= 60_000);
    }

    #[test]
    fn hardware_predictor_offloads_some_invocations() {
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 100);
        // The predictor needs a few visits per AState before its close
        // rate is meaningful; steady-state accuracy is asserted by the
        // longer integration tests.
        cfg.instructions = 500_000;
        cfg.warmup = 300_000;
        let r = Simulation::new(cfg).run();
        assert!(r.offloads > 0, "no offloads happened");
        assert!(r.local_invocations > 0, "everything offloaded");
        assert!(r.os_core_busy_frac > 0.0);
        assert!(r.queue.requests == r.offloads);
        let p = r.predictor.expect("HI reports predictor stats");
        assert!(
            p.within_5pct > 0.4,
            "predictor close rate = {}",
            p.within_5pct
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = Simulation::new(small(
            PolicyKind::HardwarePredictor { threshold: 1_000 },
            1_000,
        ))
        .run();
        let b = Simulation::new(small(
            PolicyKind::HardwarePredictor { threshold: 1_000 },
            1_000,
        ))
        .run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small(PolicyKind::Baseline, 0);
        cfg.seed = 1;
        let a = Simulation::new(cfg.clone()).run();
        cfg.seed = 2;
        let b = Simulation::new(cfg).run();
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn always_offload_offloads_everything() {
        let r = Simulation::new(small(PolicyKind::AlwaysOffload, 100)).run();
        assert_eq!(r.local_invocations, 0);
        assert!(r.offloads > 0);
    }

    #[test]
    fn high_threshold_offloads_nothing() {
        let r = Simulation::new(small(
            PolicyKind::HardwarePredictor {
                threshold: u64::MAX,
            },
            100,
        ))
        .run();
        assert_eq!(r.offloads, 0);
    }

    #[test]
    fn di_overhead_exceeds_hi_overhead() {
        let hi =
            Simulation::new(small(PolicyKind::HardwarePredictor { threshold: 500 }, 100)).run();
        let di = Simulation::new(small(
            PolicyKind::DynamicInstrumentation {
                threshold: 500,
                cost: 120,
            },
            100,
        ))
        .run();
        assert!(
            di.decision_overhead_cycles > hi.decision_overhead_cycles * 20,
            "DI overhead {} vs HI {}",
            di.decision_overhead_cycles,
            hi.decision_overhead_cycles
        );
    }

    #[test]
    fn tuner_runs_and_logs_events() {
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 1_000 }, 100);
        cfg.tuner = Some(TunerConfig::scaled_down(2_000)); // 12.5K-insn samples
        let (report, trace) = Simulation::new(cfg).run_with_tuner_trace();
        assert!(report.tuner_events > 0, "tuner never fired");
        assert!(!trace.is_empty());
        assert!(report.final_threshold.is_some());
    }

    #[test]
    fn os_core_utilization_falls_with_threshold() {
        let low = Simulation::new(small(
            PolicyKind::HardwarePredictor { threshold: 100 },
            1_000,
        ))
        .run();
        let high = Simulation::new(small(
            PolicyKind::HardwarePredictor { threshold: 10_000 },
            1_000,
        ))
        .run();
        assert!(
            low.os_core_busy_frac > high.os_core_busy_frac,
            "low-N busy {} vs high-N busy {}",
            low.os_core_busy_frac,
            high.os_core_busy_frac
        );
    }

    #[test]
    fn binary_accuracy_grid_is_reported() {
        let r = Simulation::new(small(PolicyKind::HardwarePredictor { threshold: 500 }, 100)).run();
        assert_eq!(r.binary_accuracy.len(), 5);
        for p in &r.binary_accuracy {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }

    #[test]
    fn remote_call_mechanism_frees_the_user_core() {
        use crate::migration::OffloadMechanism;
        let mk = |mech| {
            let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 100 }, 1_000);
            cfg.instructions = 200_000;
            cfg.warmup = 100_000;
            cfg.mechanism = mech;
            Simulation::new(cfg).run()
        };
        let migration = mk(OffloadMechanism::ThreadMigration);
        let rpc = mk(OffloadMechanism::RemoteCall);
        // With two threads per core, freeing the user core during remote
        // execution lets the sibling overlap: RPC must be faster.
        assert!(
            rpc.throughput > migration.throughput,
            "rpc {:.4} vs migration {:.4}",
            rpc.throughput,
            migration.throughput
        );
    }

    #[test]
    fn telemetry_does_not_perturb_the_report() {
        use osoffload_obs::TelemetryMode;
        let run = |mode: TelemetryMode| {
            let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
            cfg.telemetry = mode;
            Simulation::new(cfg).run_with_telemetry().0
        };
        let off = run(TelemetryMode::Off);
        let noop = run(TelemetryMode::Noop);
        let full = run(TelemetryMode::Full);
        assert_eq!(off, noop, "no-op sink changed the simulation");
        assert_eq!(off, full, "full tracing changed the simulation");
        // And against the plain runner too.
        let plain = Simulation::new(small(
            PolicyKind::HardwarePredictor { threshold: 500 },
            1_000,
        ))
        .run();
        assert_eq!(off, plain);
    }

    #[test]
    fn full_telemetry_captures_spans_and_metrics() {
        use osoffload_obs::{EventKind, TelemetryMode};
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        cfg.telemetry = TelemetryMode::Full;
        cfg.tuner = Some(osoffload_core::TunerConfig::scaled_down(2_000));
        let (report, telemetry) = Simulation::new(cfg).run_with_telemetry();
        assert_eq!(telemetry.mode, TelemetryMode::Full);
        assert!(telemetry.events_seen > 0);
        let count =
            |f: fn(&EventKind) -> bool| telemetry.events.iter().filter(|e| f(&e.kind)).count();
        assert!(count(|k| matches!(k, EventKind::Invocation { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::UserBurst { .. })) > 0);
        assert!(count(|k| matches!(k, EventKind::Epoch { .. })) > 0);
        if report.offloads > 0 {
            assert!(count(|k| matches!(k, EventKind::Migration { .. })) > 0);
            assert!(count(|k| matches!(k, EventKind::OsService { .. })) > 0);
        }
        // Deterministic epoch sampling: long segments may merge epochs,
        // but a healthy run still yields dozens of rows in epoch order.
        let samples = telemetry.metrics.samples();
        assert!(samples.len() >= 16, "only {} samples", samples.len());
        assert!(samples.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        assert!(samples.windows(2).all(|w| w[0].epoch < w[1].epoch));
        // 11 scalar series plus the per-OS-core busy/utilisation pairs
        // and the dispatch queue depth (one OS core here).
        assert_eq!(telemetry.metrics.metrics().len(), 14);
        let names: Vec<&str> = telemetry
            .metrics
            .metrics()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"os_core0_busy_cycles"), "{names:?}");
        assert!(names.contains(&"os_core0_utilisation"), "{names:?}");
        assert!(names.contains(&"dispatch_queue_depth"), "{names:?}");
        let trace = telemetry.chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"C\""), "counter series missing");
    }

    #[test]
    fn profiling_does_not_perturb_the_report() {
        use osoffload_obs::TelemetryMode;
        let plain = Simulation::new(small(
            PolicyKind::HardwarePredictor { threshold: 500 },
            1_000,
        ))
        .run();
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        cfg.profiling = true;
        let (profiled, profile) = Simulation::new(cfg.clone()).run_with_profile();
        assert_eq!(plain, profiled, "profiling changed the simulation");
        assert!(profile.enabled);
        // Both observation layers on at once must also be a no-op.
        cfg.telemetry = TelemetryMode::Full;
        let (both, telemetry, profile2) = Simulation::new(cfg).run_full_observed();
        assert_eq!(plain, both, "profiling + telemetry changed the simulation");
        assert!(telemetry.events_seen > 0);
        assert_eq!(profile.to_collapsed(), profile2.to_collapsed());
    }

    #[test]
    fn profile_reconciles_with_the_cycle_breakdown() {
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        cfg.instructions = 200_000;
        cfg.warmup = 100_000;
        cfg.profiling = true;
        let (r, p) = Simulation::new(cfg).run_with_profile();
        assert!(r.offloads > 0 && r.local_invocations > 0);
        assert_eq!(p.total(Phase::Decision), r.cycle_breakdown.decision);
        assert_eq!(
            p.total(Phase::MigrationOut) + p.total(Phase::MigrationBack),
            r.cycle_breakdown.migration
        );
        assert_eq!(p.total(Phase::QueueWait), r.cycle_breakdown.queue_wait);
        assert_eq!(
            p.count(Phase::Decision),
            r.offloads + r.local_invocations,
            "every invocation is attributed exactly once"
        );
        assert_eq!(p.total(Phase::Throttled), r.throttled_cycles);
        assert!(p.total(Phase::UserExec) > 0);
        // Exports are non-empty and byte-stable across identical runs.
        let collapsed = p.to_collapsed();
        assert!(collapsed.contains(";os-service "), "{collapsed}");
        assert!(collapsed.contains("user;user-exec "), "{collapsed}");
        assert!(!p.top_table(5).is_empty());
        assert!(!p.epochs().is_empty());
    }

    #[test]
    fn profiling_a_run_without_telemetry_keeps_metrics_empty() {
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        cfg.profiling = true;
        let (_, telemetry, profile) = Simulation::new(cfg).run_full_observed();
        assert!(telemetry.metrics.metrics().is_empty());
        assert!(telemetry.events.is_empty());
        assert!(profile.enabled);
        assert!(profile.attributed_total() > 0);
    }

    #[test]
    fn trace_ring_consumes_the_unified_event_stream() {
        use osoffload_obs::TelemetryMode;
        let mut cfg = small(PolicyKind::HardwarePredictor { threshold: 500 }, 1_000);
        cfg.trace_capacity = 1 << 14;
        cfg.telemetry = TelemetryMode::Full;
        cfg.telemetry_capacity = 1 << 20;
        let (report, trace) = Simulation::new(cfg.clone()).run_traced();
        let (report2, telemetry) = Simulation::new(cfg).run_with_telemetry();
        assert_eq!(report, report2);
        let invocation_events = telemetry
            .events
            .iter()
            .filter(|e| matches!(e.kind, osoffload_obs::EventKind::Invocation { .. }))
            .count();
        assert_eq!(
            trace.len() as u64 + trace.dropped(),
            invocation_events as u64,
            "trace ring and event stream disagree on invocation count"
        );
    }

    #[test]
    fn multi_user_core_topology_runs() {
        let cfg = SystemConfig::builder()
            .profile(Profile::specjbb())
            .policy(PolicyKind::HardwarePredictor { threshold: 100 })
            .migration_latency(1_000)
            .user_cores(2)
            .instructions(80_000)
            .warmup(20_000)
            .seed(3)
            .build();
        let r = Simulation::new(cfg).run();
        assert_eq!(r.user_cores, 2);
        assert_eq!(r.threads, 4);
        assert!(r.queue.requests > 0);
    }

    #[test]
    fn multi_os_core_topology_spreads_load() {
        use crate::topology::DispatchPolicy;
        let cfg = SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold: 100 })
            .migration_latency(1_000)
            .user_cores(4)
            .os_cores(2)
            .dispatch(DispatchPolicy::LeastLoaded)
            .instructions(200_000)
            .warmup(50_000)
            .seed(11)
            .build();
        let r = Simulation::new(cfg).run();
        assert_eq!(r.os_cores, 2);
        assert_eq!(r.dispatch, "least-loaded");
        assert_eq!(r.os_core_busy_cycles.len(), 2);
        assert_eq!(r.os_core_utilisation.len(), 2);
        assert!(r.offloads > 0);
        // Least-loaded under contention must use both cores.
        assert!(
            r.os_core_busy_cycles.iter().all(|&b| b > 0),
            "busy = {:?}",
            r.os_core_busy_cycles
        );
        let total: u64 = r.os_core_busy_cycles.iter().sum();
        let frac = (total as f64 / r.cycles as f64).min(1.0);
        assert_eq!(r.os_core_busy_frac, frac, "per-core busy must sum to total");
        for (&cycles, &util) in r.os_core_busy_cycles.iter().zip(&r.os_core_utilisation) {
            assert_eq!(util, (cycles as f64 / r.cycles as f64).min(1.0));
        }
    }

    #[test]
    fn every_dispatch_policy_runs_and_is_deterministic() {
        use crate::topology::DispatchPolicy;
        for policy in DispatchPolicy::ALL {
            let mk = || {
                SystemConfig::builder()
                    .profile(Profile::specjbb())
                    .policy(PolicyKind::HardwarePredictor { threshold: 100 })
                    .migration_latency(1_000)
                    .user_cores(4)
                    .os_cores(2)
                    .dispatch(policy)
                    .os_cold_penalty(500)
                    .instructions(120_000)
                    .warmup(40_000)
                    .seed(5)
                    .build()
            };
            let a = Simulation::new(mk()).run();
            let b = Simulation::new(mk()).run();
            assert_eq!(a, b, "{policy}: same seed, same report");
            assert_eq!(a.dispatch, policy.label());
            assert!(a.offloads > 0, "{policy}: nothing off-loaded");
            assert_eq!(a.queue.requests, a.offloads);
        }
    }

    #[test]
    fn baseline_reports_no_os_cores() {
        let r = Simulation::new(small(PolicyKind::Baseline, 0)).run();
        assert_eq!(r.os_cores, 0);
        assert!(r.os_core_busy_cycles.is_empty());
        assert!(r.os_core_utilisation.is_empty());
    }

    #[test]
    fn single_os_core_report_is_consistent_with_the_legacy_shape() {
        let r = Simulation::new(small(PolicyKind::HardwarePredictor { threshold: 500 }, 100)).run();
        assert_eq!(r.os_cores, 1);
        assert_eq!(r.os_core_busy_cycles.len(), 1);
        assert_eq!(
            r.os_core_busy_frac,
            (r.os_core_busy_cycles[0] as f64 / r.cycles as f64).min(1.0)
        );
    }
}
