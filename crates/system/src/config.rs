//! System-level configuration: topology, policy selection, migration
//! latency, and run lengths.

use crate::migration::{MigrationModel, OffloadMechanism};
use crate::topology::{DispatchPolicy, Topology};
use core::fmt;
use osoffload_core::{
    AlwaysOffload, CamPredictor, DirectMappedPredictor, DynamicInstrumentation, HardwarePredictor,
    NeverOffload, OffloadPolicy, OraclePolicy, RoutineId, StaticInstrumentation, TunerConfig,
};
use osoffload_mem::MemConfig;
use osoffload_obs::TelemetryMode;
use osoffload_workload::Profile;
use std::collections::HashMap;

/// Which decision policy drives off-loading (see
/// [`osoffload_core::policy`] for the mechanisms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No off-loading: the single-core baseline every figure normalises
    /// against.
    Baseline,
    /// Off-load every privileged invocation (ablation; ≈ `N = 0`).
    AlwaysOffload,
    /// **HI** with the 200-entry CAM predictor and a static threshold.
    HardwarePredictor {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
    },
    /// **HI** with the 1,500-entry direct-mapped predictor.
    HardwarePredictorDirectMapped {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
    },
    /// **HI** with a custom-capacity CAM (predictor-sizing ablations).
    HardwarePredictorSized {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
        /// CAM entry count.
        entries: usize,
    },
    /// **HI** with a custom-capacity direct-mapped table.
    HardwarePredictorDmSized {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
        /// Table entry count.
        entries: usize,
    },
    /// **HI** over a set-associative partial-tag predictor (the
    /// realistic hardware midpoint between the paper's CAM and RAM).
    HardwarePredictorSetAssoc {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
        /// Number of sets.
        sets: usize,
        /// Associativity.
        ways: usize,
    },
    /// **HI** over the global-only ablation predictor (no per-AState
    /// table).
    HardwarePredictorGlobalOnly {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
    },
    /// **HI** over the infinite last-value ablation predictor (no
    /// confidence filter, no fallback).
    HardwarePredictorLastValue {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
    },
    /// **DI**: software instrumentation of every OS entry point.
    DynamicInstrumentation {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
        /// Per-entry instrumentation cost in cycles.
        cost: u64,
    },
    /// **SI**: off-line profiling + static instrumentation of long
    /// routines only.
    StaticInstrumentation {
        /// Fixed stub cost of instrumented routines, in cycles.
        stub_cost: u64,
    },
    /// Oracle decisions on the true run length (ablation).
    Oracle {
        /// Off-load threshold `N` in instructions.
        threshold: u64,
    },
}

impl PolicyKind {
    /// Whether this run models the no-off-loading baseline (single-core
    /// topology, no OS core).
    pub fn is_baseline(&self) -> bool {
        matches!(self, PolicyKind::Baseline)
    }

    /// Short figure label.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Baseline => "baseline",
            PolicyKind::AlwaysOffload => "always",
            PolicyKind::HardwarePredictor { .. } => "HI",
            PolicyKind::HardwarePredictorDirectMapped { .. } => "HI-dm",
            PolicyKind::HardwarePredictorSized { .. } => "HI-sized",
            PolicyKind::HardwarePredictorDmSized { .. } => "HI-dm-sized",
            PolicyKind::HardwarePredictorSetAssoc { .. } => "HI-sa",
            PolicyKind::HardwarePredictorGlobalOnly { .. } => "HI-global-only",
            PolicyKind::HardwarePredictorLastValue { .. } => "HI-last-value",
            PolicyKind::DynamicInstrumentation { .. } => "DI",
            PolicyKind::StaticInstrumentation { .. } => "SI",
            PolicyKind::Oracle { .. } => "oracle",
        }
    }

    /// The off-line profile SI consumes: `routine → mean service length`
    /// over the workload's invocation mix (this plays the role of the
    /// paper's "off-line profiling" step).
    ///
    /// Only ordinary **system calls** appear: static instrumentation
    /// patches syscall entry points, and cannot intercept page faults,
    /// TLB refills, or asynchronous device interrupts — prior work
    /// "examined only system calls, or a subset of them" (§IV), which is
    /// one of the structural advantages of the hardware scheme.
    pub fn offline_profile(profile: &Profile) -> HashMap<RoutineId, f64> {
        profile
            .syscall_mix
            .iter()
            .filter(|&&(id, _)| id.spec().class == osoffload_workload::OsClass::Syscall)
            .map(|&(id, _)| {
                let contexts = profile.io_contexts(id);
                let spec = id.spec();
                let mean = contexts
                    .iter()
                    .map(|&(_, arg1)| spec.service_len(arg1) as f64)
                    .sum::<f64>()
                    / contexts.len() as f64;
                (id.trap_number(), mean)
            })
            .collect()
    }

    /// Instantiates the policy for one user core.
    pub fn build(&self, profile: &Profile, migration: MigrationModel) -> Box<dyn OffloadPolicy> {
        match *self {
            PolicyKind::Baseline => Box::new(NeverOffload),
            PolicyKind::AlwaysOffload => Box::new(AlwaysOffload),
            PolicyKind::HardwarePredictor { threshold } => Box::new(HardwarePredictor::new(
                CamPredictor::paper_default(),
                threshold,
            )),
            PolicyKind::HardwarePredictorDirectMapped { threshold } => Box::new(
                HardwarePredictor::new(DirectMappedPredictor::paper_default(), threshold),
            ),
            PolicyKind::HardwarePredictorSized { threshold, entries } => Box::new(
                HardwarePredictor::new(CamPredictor::new(entries), threshold),
            ),
            PolicyKind::HardwarePredictorDmSized { threshold, entries } => Box::new(
                HardwarePredictor::new(DirectMappedPredictor::new(entries), threshold),
            ),
            PolicyKind::HardwarePredictorSetAssoc {
                threshold,
                sets,
                ways,
            } => Box::new(HardwarePredictor::new(
                osoffload_core::SetAssocPredictor::new(sets, ways),
                threshold,
            )),
            PolicyKind::HardwarePredictorGlobalOnly { threshold } => Box::new(
                HardwarePredictor::new(osoffload_core::GlobalOnlyPredictor::new(), threshold),
            ),
            PolicyKind::HardwarePredictorLastValue { threshold } => Box::new(
                HardwarePredictor::new(osoffload_core::LastValuePredictor::new(), threshold),
            ),
            PolicyKind::DynamicInstrumentation { threshold, cost } => Box::new(
                DynamicInstrumentation::new(CamPredictor::paper_default(), threshold, cost),
            ),
            PolicyKind::StaticInstrumentation { stub_cost } => {
                let offline = Self::offline_profile(profile);
                Box::new(StaticInstrumentation::from_profile(
                    &offline,
                    migration.one_way().as_u64(),
                    stub_cost,
                ))
            }
            PolicyKind::Oracle { threshold } => Box::new(OraclePolicy::new(threshold)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::HardwarePredictor { threshold }
            | PolicyKind::HardwarePredictorDirectMapped { threshold }
            | PolicyKind::Oracle { threshold } => {
                write!(f, "{} (N={})", self.label(), threshold)
            }
            PolicyKind::DynamicInstrumentation { threshold, cost } => {
                write!(f, "DI (N={threshold}, {cost} cyc)")
            }
            PolicyKind::HardwarePredictorGlobalOnly { threshold }
            | PolicyKind::HardwarePredictorLastValue { threshold } => {
                write!(f, "{} (N={})", self.label(), threshold)
            }
            _ => write!(f, "{}", self.label()),
        }
    }
}

/// Why a [`SystemConfig`] cannot be simulated.
///
/// Every variant corresponds to a degenerate geometry that would
/// otherwise surface as a panic deep inside the simulation (an empty
/// candidate grid asserts in `ThresholdTuner::new`, a zero epoch in
/// `EpochClock::new`, an oversized topology in
/// `MemConfig::paper_baseline`, …). [`SystemConfig::validate`] and
/// [`SystemConfigBuilder::try_build`] report them up front as typed
/// errors instead, which is what lets the fuzzer treat "config rejected"
/// and "simulation panicked" as different outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// No workload profile was supplied to the builder.
    MissingProfile,
    /// The base profile or a phase profile fails its own validation.
    Profile {
        /// Which profile: `"profile"` or `"phase i"`.
        context: String,
        /// The underlying violation.
        error: osoffload_workload::ProfileError,
    },
    /// `user_cores` is zero.
    NoUserCores,
    /// `instructions` is zero: there is no measured region.
    NoInstructions,
    /// `os_core_slowdown_milli` is zero (an infinitely fast OS core).
    ZeroOsCoreSlowdown,
    /// `os_core_contexts` is zero.
    NoOsCoreContexts,
    /// `os_cores` is zero: off-loading needs somewhere to off-load to.
    NoOsCores,
    /// `resource_adaptation` is `Some(0)` (an infinitely fast throttled
    /// mode).
    ZeroAdaptationSlowdown,
    /// The one-way migration latency is so large that a round trip would
    /// overflow 64-bit cycle accounting.
    MigrationOverflow {
        /// The offending one-way latency, cycles.
        one_way: u64,
    },
    /// The topology exceeds the memory model's 64-core ceiling.
    TooManyCores {
        /// Total cores the topology needs (user cores + OS core).
        total: usize,
    },
    /// A sized predictor policy was given zero entries / sets / ways.
    ZeroPredictorCapacity,
    /// The tuner's candidate grid is empty.
    TunerEmptyCandidates,
    /// The tuner's candidate grid is not strictly ascending.
    TunerUnsortedCandidates,
    /// A tuner epoch length is zero (`EpochClock` requires positive
    /// epochs).
    TunerZeroEpoch {
        /// Which field: `"sample_epoch"`, `"stable_base"`, or
        /// `"stable_cap"`.
        field: &'static str,
    },
    /// The memory override provisions fewer cores than the topology
    /// needs.
    MemTooFewCores {
        /// Cores in the override.
        cores: usize,
        /// Cores the topology needs.
        need: usize,
    },
    /// The memory override's core count is outside `1..=64`.
    MemBadCoreCount {
        /// Cores in the override.
        cores: usize,
    },
    /// The memory override's L2 hit latency is below its L1 hit latency
    /// (the hierarchy model charges the L1 probe as part of every
    /// access).
    MemLatencyInversion {
        /// L1 hit latency, cycles.
        l1: u64,
        /// L2 hit latency, cycles.
        l2: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingProfile => write!(f, "SystemConfig: profile is required"),
            ConfigError::Profile { context, error } => {
                write!(f, "SystemConfig: {context} is invalid: {error}")
            }
            ConfigError::NoUserCores => write!(f, "SystemConfig: need at least one user core"),
            ConfigError::NoInstructions => write!(f, "SystemConfig: need a measured region"),
            ConfigError::ZeroOsCoreSlowdown => {
                write!(f, "SystemConfig: slowdown must be positive")
            }
            ConfigError::NoOsCoreContexts => {
                write!(f, "SystemConfig: need at least one OS-core context")
            }
            ConfigError::NoOsCores => {
                write!(f, "SystemConfig: need at least one OS core")
            }
            ConfigError::ZeroAdaptationSlowdown => {
                write!(f, "SystemConfig: adaptation slowdown must be positive")
            }
            ConfigError::MigrationOverflow { one_way } => {
                write!(
                    f,
                    "SystemConfig: migration latency {one_way} cycles overflows cycle accounting"
                )
            }
            ConfigError::TooManyCores { total } => {
                write!(
                    f,
                    "SystemConfig: topology needs {total} cores, the memory model supports at most 64"
                )
            }
            ConfigError::ZeroPredictorCapacity => {
                write!(f, "SystemConfig: predictor must have at least one entry")
            }
            ConfigError::TunerEmptyCandidates => {
                write!(f, "SystemConfig: tuner candidate grid is empty")
            }
            ConfigError::TunerUnsortedCandidates => {
                write!(
                    f,
                    "SystemConfig: tuner candidates must be strictly ascending"
                )
            }
            ConfigError::TunerZeroEpoch { field } => {
                write!(f, "SystemConfig: tuner {field} must be positive")
            }
            ConfigError::MemTooFewCores { cores, need } => {
                write!(
                    f,
                    "SystemConfig: memory override provisions {cores} cores but the topology needs {need}"
                )
            }
            ConfigError::MemBadCoreCount { cores } => {
                write!(
                    f,
                    "SystemConfig: memory override has {cores} cores, supported range is 1..=64"
                )
            }
            ConfigError::MemLatencyInversion { l1, l2 } => {
                write!(
                    f,
                    "SystemConfig: memory override L2 latency {l2} is below L1 latency {l1}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Profile { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Workload model.
    pub profile: Profile,
    /// Program phases: `(start_instruction, profile)` switches applied to
    /// every thread's stream (the §III-B phase-change scenario). Empty =
    /// single-phase.
    pub phases: Vec<(u64, Profile)>,
    /// Decision policy.
    pub policy: PolicyKind,
    /// Migration latency model.
    pub migration: MigrationModel,
    /// How off-loaded work reaches the OS core (§II).
    pub mechanism: OffloadMechanism,
    /// Per-instruction slowdown of the OS core in milli-units (1,000 =
    /// homogeneous; 1,667 ≈ a 0.6× frequency efficiency core à la Mogul
    /// et al. \[17\]). Only affects instructions executed on the OS core.
    pub os_core_slowdown_milli: u64,
    /// SMT hardware contexts on the OS core (1 = the paper's non-SMT
    /// core; more contexts serve that many off-loads concurrently).
    pub os_core_contexts: usize,
    /// Number of OS cores serving off-loaded work (default 1 = the
    /// paper's topology; the §V-C extension provisions up to 8).
    pub os_cores: usize,
    /// How off-loaded invocations are spread over the OS cores (only
    /// observable when `os_cores > 1` or `os_cold_penalty > 0`).
    pub dispatch: DispatchPolicy,
    /// Extra service cycles when the chosen OS core has not served the
    /// request's AState recently (0 = warmth model off; see
    /// [`topology`](crate::topology)).
    pub os_cold_penalty: u64,
    /// Li & John-style resource adaptation (§VI-B): instead of migrating,
    /// invocations the policy selects run *locally* with this
    /// per-instruction slowdown (milli-units) while the core throttles to
    /// a low-power mode. No OS core exists in this topology. `None`
    /// disables adaptation (normal off-loading).
    pub resource_adaptation: Option<u64>,
    /// Number of user cores (§V-C scales this against one OS core).
    pub user_cores: usize,
    /// Instructions to retire in the measured region of interest.
    pub instructions: u64,
    /// Warm-up instructions before measurement (caches stay warm,
    /// statistics reset; paper: 50 M).
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// Dynamic-threshold estimation (§III-B); `None` keeps the policy's
    /// static threshold.
    pub tuner: Option<TunerConfig>,
    /// Memory-system override (e.g. the §V-B half-size-L2 comparison);
    /// `None` uses the Table II baseline for the run's core count.
    pub mem_override: Option<MemConfig>,
    /// Per-invocation trace capacity (0 = tracing off). See
    /// [`trace`](crate::trace).
    pub trace_capacity: usize,
    /// Structured-telemetry mode (spans, epoch-sampled metrics, Chrome
    /// traces). [`TelemetryMode::Off`] costs nothing on the hot path.
    pub telemetry: TelemetryMode,
    /// Event-ring capacity when telemetry is [`TelemetryMode::Full`].
    pub telemetry_capacity: usize,
    /// Cycle-attribution profiler (per-syscall × per-phase accounting,
    /// sampled on the observation clock). Purely observational: the
    /// report is bit-identical either way, and `false` costs nothing on
    /// the hot path — the same contract as telemetry.
    pub profiling: bool,
}

impl SystemConfig {
    /// Starts a builder with the mandatory profile.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Total core count of this topology (user cores plus the OS cores
    /// when off-loading is enabled; resource adaptation reconfigures the
    /// existing cores instead of adding any).
    pub fn total_cores(&self) -> usize {
        if self.policy.is_baseline() || self.resource_adaptation.is_some() {
            self.user_cores
        } else {
            self.user_cores + self.os_cores
        }
    }

    /// The run's core-count geometry as a [`Topology`] (OS cores are 0
    /// for baseline and resource-adaptation runs, which provision none).
    pub fn topology(&self) -> Topology {
        let os_cores = if self.policy.is_baseline() || self.resource_adaptation.is_some() {
            0
        } else {
            self.os_cores
        };
        Topology {
            user_cores: self.user_cores,
            os_cores,
            contexts_per_core: self.os_core_contexts,
        }
    }

    /// Number of software threads in the run.
    pub fn thread_count(&self) -> usize {
        self.user_cores * self.profile.threads_per_core
    }

    /// The memory configuration this run uses.
    pub fn mem_config(&self) -> MemConfig {
        self.mem_override
            .clone()
            .unwrap_or_else(|| MemConfig::paper_baseline(self.total_cores()))
    }

    /// Checks every constructive precondition of the simulation,
    /// returning the first violation found.
    ///
    /// A config that validates will not panic while *building* the
    /// simulation (topology, caches, policies, tuner, workload streams).
    /// `Simulation::new` calls this and reports the violation at the
    /// surface instead of asserting somewhere deep in a subsystem.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.user_cores == 0 {
            return Err(ConfigError::NoUserCores);
        }
        if self.instructions == 0 {
            return Err(ConfigError::NoInstructions);
        }
        if self.os_core_slowdown_milli == 0 {
            return Err(ConfigError::ZeroOsCoreSlowdown);
        }
        if self.os_core_contexts == 0 {
            return Err(ConfigError::NoOsCoreContexts);
        }
        if self.os_cores == 0 {
            return Err(ConfigError::NoOsCores);
        }
        if self.resource_adaptation == Some(0) {
            return Err(ConfigError::ZeroAdaptationSlowdown);
        }
        let one_way = self.migration.one_way().as_u64();
        if one_way.checked_mul(2).is_none() {
            return Err(ConfigError::MigrationOverflow { one_way });
        }
        let total = self.total_cores();
        if total > 64 {
            return Err(ConfigError::TooManyCores { total });
        }
        self.profile
            .validate()
            .map_err(|error| ConfigError::Profile {
                context: "profile".into(),
                error,
            })?;
        for (i, (_, profile)) in self.phases.iter().enumerate() {
            profile.validate().map_err(|error| ConfigError::Profile {
                context: format!("phase {i}"),
                error,
            })?;
        }
        match self.policy {
            PolicyKind::HardwarePredictorSized { entries, .. }
            | PolicyKind::HardwarePredictorDmSized { entries, .. }
                if entries == 0 =>
            {
                return Err(ConfigError::ZeroPredictorCapacity);
            }
            PolicyKind::HardwarePredictorSetAssoc { sets, ways, .. } if sets == 0 || ways == 0 => {
                return Err(ConfigError::ZeroPredictorCapacity);
            }
            _ => {}
        }
        if let Some(tuner) = &self.tuner {
            if tuner.candidates.is_empty() {
                return Err(ConfigError::TunerEmptyCandidates);
            }
            if !tuner.candidates.windows(2).all(|w| w[0] < w[1]) {
                return Err(ConfigError::TunerUnsortedCandidates);
            }
            for (field, len) in [
                ("sample_epoch", tuner.sample_epoch),
                ("stable_base", tuner.stable_base),
                ("stable_cap", tuner.stable_cap),
            ] {
                if len.as_u64() == 0 {
                    return Err(ConfigError::TunerZeroEpoch { field });
                }
            }
        }
        if let Some(mem) = &self.mem_override {
            if !(1..=64).contains(&mem.cores) {
                return Err(ConfigError::MemBadCoreCount { cores: mem.cores });
            }
            if mem.cores < total {
                return Err(ConfigError::MemTooFewCores {
                    cores: mem.cores,
                    need: total,
                });
            }
            if mem.l2_latency < mem.l1_latency {
                return Err(ConfigError::MemLatencyInversion {
                    l1: mem.l1_latency,
                    l2: mem.l2_latency,
                });
            }
        }
        Ok(())
    }
}

/// Builder for [`SystemConfig`] (most fields have paper defaults).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    profile: Option<Profile>,
    phases: Vec<(u64, Profile)>,
    policy: PolicyKind,
    migration: MigrationModel,
    mechanism: OffloadMechanism,
    os_core_slowdown_milli: u64,
    os_core_contexts: usize,
    os_cores: usize,
    dispatch: DispatchPolicy,
    os_cold_penalty: u64,
    resource_adaptation: Option<u64>,
    user_cores: usize,
    instructions: u64,
    warmup: Option<u64>,
    seed: u64,
    tuner: Option<TunerConfig>,
    mem_override: Option<MemConfig>,
    trace_capacity: usize,
    telemetry: TelemetryMode,
    telemetry_capacity: usize,
    profiling: bool,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            profile: None,
            phases: Vec::new(),
            policy: PolicyKind::Baseline,
            migration: MigrationModel::conservative(),
            mechanism: OffloadMechanism::ThreadMigration,
            os_core_slowdown_milli: 1_000,
            os_core_contexts: 1,
            os_cores: 1,
            dispatch: DispatchPolicy::LeastLoaded,
            os_cold_penalty: 0,
            resource_adaptation: None,
            user_cores: 1,
            instructions: 1_000_000,
            warmup: None,
            seed: 0xD15C_0C0A,
            tuner: None,
            mem_override: None,
            trace_capacity: 0,
            telemetry: TelemetryMode::Off,
            telemetry_capacity: 1 << 16,
            profiling: false,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the workload profile (required).
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Adds a program phase: from `at` generated instructions on, every
    /// thread's stream follows `profile` (the §III-B phase-change
    /// scenario).
    pub fn phase(mut self, at: u64, profile: Profile) -> Self {
        self.phases.push((at, profile));
        self
    }

    /// Sets the decision policy (default: baseline).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the one-way migration latency in cycles.
    pub fn migration_latency(mut self, cycles: u64) -> Self {
        self.migration = MigrationModel::new(cycles);
        self
    }

    /// Selects the off-load transport (default: thread migration).
    pub fn mechanism(mut self, mechanism: OffloadMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Slows the OS core by `milli`/1,000 per instruction, modelling a
    /// heterogeneous low-power OS core (default 1,000 = homogeneous).
    ///
    /// # Panics
    ///
    /// Panics if `milli` is zero (the OS core cannot be infinitely fast).
    pub fn os_core_slowdown_milli(mut self, milli: u64) -> Self {
        assert!(milli > 0, "SystemConfig: slowdown must be positive");
        self.os_core_slowdown_milli = milli;
        self
    }

    /// Provisions `n` SMT contexts on the OS core (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn os_core_contexts(mut self, n: usize) -> Self {
        assert!(n > 0, "SystemConfig: need at least one OS-core context");
        self.os_core_contexts = n;
        self
    }

    /// Provisions `n` OS cores (default 1 = the paper's topology).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn os_cores(mut self, n: usize) -> Self {
        assert!(n > 0, "SystemConfig: need at least one OS core");
        self.os_cores = n;
        self
    }

    /// Selects how off-loaded invocations are spread over the OS cores
    /// (default [`DispatchPolicy::LeastLoaded`], which reproduces the
    /// single-queue behaviour exactly when `os_cores` is 1).
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch = policy;
        self
    }

    /// Charges `cycles` of extra service when the dispatched-to OS core
    /// has not served the request's AState recently (default 0 = warmth
    /// model off).
    pub fn os_cold_penalty(mut self, cycles: u64) -> Self {
        self.os_cold_penalty = cycles;
        self
    }

    /// Enables Li & John-style resource adaptation: selected invocations
    /// run locally under a `milli`/1,000 per-instruction slowdown while
    /// the core throttles, and no OS core exists.
    ///
    /// # Panics
    ///
    /// Panics if `milli` is zero.
    pub fn resource_adaptation(mut self, milli: u64) -> Self {
        assert!(
            milli > 0,
            "SystemConfig: adaptation slowdown must be positive"
        );
        self.resource_adaptation = Some(milli);
        self
    }

    /// Sets the number of user cores (default 1).
    pub fn user_cores(mut self, n: usize) -> Self {
        self.user_cores = n;
        self
    }

    /// Sets the measured instruction count (default 1 M).
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Sets the warm-up instruction count (default: 25% of the measured
    /// region).
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = Some(n);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the §III-B dynamic threshold estimator.
    pub fn tuner(mut self, cfg: TunerConfig) -> Self {
        self.tuner = Some(cfg);
        self
    }

    /// Overrides the memory system (e.g. half-size L2s).
    pub fn mem_override(mut self, mem: MemConfig) -> Self {
        self.mem_override = Some(mem);
        self
    }

    /// Retains the newest `capacity` per-invocation trace records (0 =
    /// off; see [`trace`](crate::trace)).
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Selects the structured-telemetry mode (default
    /// [`TelemetryMode::Off`]; see [`osoffload_obs`]).
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Retains the newest `capacity` telemetry events when the mode is
    /// [`TelemetryMode::Full`] (default 65,536).
    pub fn telemetry_capacity(mut self, capacity: usize) -> Self {
        self.telemetry_capacity = capacity;
        self
    }

    /// Enables the cycle-attribution profiler (default off; see
    /// [`profile`](crate::profile)).
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if no profile was supplied, or if `user_cores` or
    /// `instructions` is zero. Use [`try_build`](Self::try_build) to get
    /// a typed error instead.
    pub fn build(mut self) -> SystemConfig {
        let profile = self
            .profile
            .take()
            .expect("SystemConfig: profile is required");
        assert!(
            self.user_cores >= 1,
            "SystemConfig: need at least one user core"
        );
        assert!(
            self.instructions > 0,
            "SystemConfig: need a measured region"
        );
        self.finish(profile)
    }

    /// Finalises the configuration, running the full
    /// [`SystemConfig::validate`] check and returning the first
    /// violation as a typed [`ConfigError`] instead of panicking.
    pub fn try_build(self) -> Result<SystemConfig, ConfigError> {
        let Some(profile) = self.profile.clone() else {
            return Err(ConfigError::MissingProfile);
        };
        let cfg = self.finish(profile);
        cfg.validate()?;
        Ok(cfg)
    }

    fn finish(self, profile: Profile) -> SystemConfig {
        let warmup = self.warmup.unwrap_or(self.instructions / 4);
        SystemConfig {
            profile,
            phases: self.phases,
            policy: self.policy,
            migration: self.migration,
            mechanism: self.mechanism,
            os_core_slowdown_milli: self.os_core_slowdown_milli,
            os_core_contexts: self.os_core_contexts,
            os_cores: self.os_cores,
            dispatch: self.dispatch,
            os_cold_penalty: self.os_cold_penalty,
            resource_adaptation: self.resource_adaptation,
            user_cores: self.user_cores,
            instructions: self.instructions,
            warmup,
            seed: self.seed,
            tuner: self.tuner,
            mem_override: self.mem_override,
            trace_capacity: self.trace_capacity,
            telemetry: self.telemetry,
            telemetry_capacity: self.telemetry_capacity,
            profiling: self.profiling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let cfg = SystemConfig::builder().profile(Profile::apache()).build();
        assert!(cfg.policy.is_baseline());
        assert_eq!(cfg.user_cores, 1);
        assert_eq!(cfg.total_cores(), 1);
        assert_eq!(cfg.thread_count(), 2, "apache maps 2 threads per core");
        assert_eq!(cfg.warmup, cfg.instructions / 4);
        assert_eq!(cfg.migration.one_way().as_u64(), 5_000);
    }

    #[test]
    fn offload_topologies_gain_an_os_core() {
        let cfg = SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .user_cores(2)
            .build();
        assert_eq!(cfg.total_cores(), 3);
        assert_eq!(cfg.mem_config().cores, 3);
    }

    #[test]
    fn multi_os_core_topologies_add_every_os_core() {
        let cfg = SystemConfig::builder()
            .profile(Profile::apache())
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .user_cores(8)
            .os_cores(4)
            .dispatch(DispatchPolicy::RoundRobin)
            .os_cold_penalty(500)
            .build();
        assert_eq!(cfg.total_cores(), 12);
        assert_eq!(cfg.mem_config().cores, 12);
        assert_eq!(cfg.validate(), Ok(()));
        let topo = cfg.topology();
        assert_eq!(topo.user_cores, 8);
        assert_eq!(topo.os_cores, 4);
        assert_eq!(topo.contexts_per_core, 1);
        // Baseline runs provision no OS cores regardless of the knob.
        let base = SystemConfig::builder()
            .profile(Profile::apache())
            .os_cores(4)
            .build();
        assert_eq!(base.total_cores(), 1);
        assert_eq!(base.topology().os_cores, 0);
    }

    #[test]
    #[should_panic(expected = "profile is required")]
    fn missing_profile_panics() {
        SystemConfig::builder().build();
    }

    #[test]
    fn try_build_reports_missing_profile() {
        assert_eq!(
            SystemConfig::builder().try_build().err(),
            Some(ConfigError::MissingProfile)
        );
    }

    #[test]
    fn validate_accepts_every_catalog_profile() {
        for profile in Profile::all_server()
            .into_iter()
            .chain(Profile::all_compute())
        {
            let cfg = SystemConfig::builder()
                .profile(profile)
                .policy(PolicyKind::HardwarePredictor { threshold: 500 })
                .tuner(TunerConfig::paper_default())
                .build();
            assert_eq!(cfg.validate(), Ok(()), "{}", cfg.profile.name);
        }
    }

    #[test]
    fn validate_rejects_degenerate_geometries() {
        let base = || SystemConfig::builder().profile(Profile::apache());

        let mut cfg = base().build();
        cfg.user_cores = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoUserCores));

        let mut cfg = base().build();
        cfg.instructions = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoInstructions));

        let mut cfg = base().build();
        cfg.os_core_slowdown_milli = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroOsCoreSlowdown));

        let mut cfg = base().build();
        cfg.os_core_contexts = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoOsCoreContexts));

        let mut cfg = base().build();
        cfg.os_cores = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoOsCores));

        let mut cfg = base().build();
        cfg.resource_adaptation = Some(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroAdaptationSlowdown));

        let mut cfg = base().build();
        cfg.migration = MigrationModel::new(u64::MAX / 2 + 1);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::MigrationOverflow {
                one_way: u64::MAX / 2 + 1
            })
        );
        // The largest representable round trip is still accepted.
        let mut cfg = base().build();
        cfg.migration = MigrationModel::new(u64::MAX / 2);
        assert_eq!(cfg.validate(), Ok(()));

        let mut cfg = base()
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .build();
        cfg.user_cores = 64; // + OS core = 65
        assert_eq!(cfg.validate(), Err(ConfigError::TooManyCores { total: 65 }));

        let cfg = base()
            .policy(PolicyKind::HardwarePredictorSized {
                threshold: 500,
                entries: 0,
            })
            .build();
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroPredictorCapacity));

        let mut cfg = base().tuner(TunerConfig::paper_default()).build();
        cfg.tuner.as_mut().unwrap().candidates.clear();
        assert_eq!(cfg.validate(), Err(ConfigError::TunerEmptyCandidates));

        let mut cfg = base().tuner(TunerConfig::paper_default()).build();
        cfg.tuner.as_mut().unwrap().candidates = vec![500, 500];
        assert_eq!(cfg.validate(), Err(ConfigError::TunerUnsortedCandidates));

        let mut cfg = base().tuner(TunerConfig::paper_default()).build();
        cfg.tuner.as_mut().unwrap().sample_epoch = osoffload_sim::Instret::new(0);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TunerZeroEpoch {
                field: "sample_epoch"
            })
        );

        let cfg = base()
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .user_cores(2)
            .mem_override(MemConfig::paper_baseline(2)) // needs 3
            .build();
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::MemTooFewCores { cores: 2, need: 3 })
        );

        let mut mem = MemConfig::paper_baseline(1);
        mem.l2_latency = 0;
        let cfg = base().mem_override(mem).build();
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::MemLatencyInversion { l1: 1, l2: 0 })
        );

        let mut cfg = base().build();
        cfg.profile.syscall_mix.clear();
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::Profile { context, error })
                if context == "profile"
                    && error == osoffload_workload::ProfileError::EmptySyscallMix
        ));
    }

    #[test]
    fn config_error_display_keeps_builder_panic_messages() {
        // The builder's assert messages are load-bearing for
        // `should_panic(expected = ...)` tests across the workspace;
        // the typed errors must render the same phrases.
        assert_eq!(
            ConfigError::MissingProfile.to_string(),
            "SystemConfig: profile is required"
        );
        assert_eq!(
            ConfigError::NoUserCores.to_string(),
            "SystemConfig: need at least one user core"
        );
        assert_eq!(
            ConfigError::NoInstructions.to_string(),
            "SystemConfig: need a measured region"
        );
        assert_eq!(
            ConfigError::ZeroOsCoreSlowdown.to_string(),
            "SystemConfig: slowdown must be positive"
        );
        assert_eq!(
            ConfigError::NoOsCoreContexts.to_string(),
            "SystemConfig: need at least one OS-core context"
        );
        assert_eq!(
            ConfigError::ZeroAdaptationSlowdown.to_string(),
            "SystemConfig: adaptation slowdown must be positive"
        );
        assert_eq!(
            ConfigError::NoOsCores.to_string(),
            "SystemConfig: need at least one OS core"
        );
        assert_eq!(
            ConfigError::MigrationOverflow { one_way: 7 }.to_string(),
            "SystemConfig: migration latency 7 cycles overflows cycle accounting"
        );
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::Baseline.label(), "baseline");
        assert_eq!(PolicyKind::HardwarePredictor { threshold: 5 }.label(), "HI");
        assert_eq!(
            PolicyKind::DynamicInstrumentation {
                threshold: 5,
                cost: 100
            }
            .label(),
            "DI"
        );
        assert_eq!(
            PolicyKind::StaticInstrumentation { stub_cost: 25 }.label(),
            "SI"
        );
        assert!(!PolicyKind::Oracle { threshold: 9 }.to_string().is_empty());
    }

    #[test]
    fn offline_profile_covers_syscalls_only() {
        let profile = Profile::derby();
        let offline = PolicyKind::offline_profile(&profile);
        let syscalls = profile
            .syscall_mix
            .iter()
            .filter(|&&(id, _)| id.spec().class == osoffload_workload::OsClass::Syscall)
            .count();
        assert_eq!(offline.len(), syscalls);
        assert!(
            offline.len() < profile.syscall_mix.len(),
            "faults/IRQs excluded"
        );
        assert!(offline.values().all(|&v| v > 0.0));
    }

    #[test]
    fn si_instruments_fewer_routines_at_higher_latency() {
        let profile = Profile::apache();
        let count = |latency: u64| {
            let policy = PolicyKind::StaticInstrumentation { stub_cost: 25 }
                .build(&profile, MigrationModel::new(latency));
            // Count via a probe: decide() offloads only instrumented routines.
            let mut policy = policy;
            profile
                .syscall_mix
                .iter()
                .filter(|&&(id, _)| {
                    policy
                        .decide(osoffload_core::OsEntry {
                            astate: osoffload_core::AState::from(1u64),
                            routine: id.trap_number(),
                        })
                        .offload
                })
                .count()
        };
        assert!(count(100) > count(5_000));
    }

    #[test]
    fn policy_build_smoke_all_variants() {
        let profile = Profile::specjbb();
        let m = MigrationModel::aggressive();
        for kind in [
            PolicyKind::Baseline,
            PolicyKind::AlwaysOffload,
            PolicyKind::HardwarePredictor { threshold: 100 },
            PolicyKind::HardwarePredictorDirectMapped { threshold: 100 },
            PolicyKind::DynamicInstrumentation {
                threshold: 100,
                cost: 120,
            },
            PolicyKind::StaticInstrumentation { stub_cost: 25 },
            PolicyKind::Oracle { threshold: 100 },
        ] {
            let p = kind.build(&profile, m);
            assert!(!p.name().is_empty());
        }
    }
}
